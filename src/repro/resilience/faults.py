"""Deterministic, seeded fault injection for the simulated GPU.

The paper's evaluation treats failure as a first-class outcome — Table
III's ``O.O.M`` cells are real allocation failures — and EMOGI makes the
same point that out-of-memory traversal must *degrade*, not crash.  This
module is the supply side of that story: a :class:`FaultPlan` schedules
typed faults against the engine's device touchpoints, and a
:class:`FaultInjector` fires them deterministically so any failure is
replayable from its seed.

Injection points (wired by :class:`~repro.core.session.EngineSession`
when constructed with an injector):

* ``alloc`` — :meth:`repro.gpu.memory.DeviceMemory.alloc` consults the
  injector before admitting an allocation; an ``alloc_oom`` fault raises
  :class:`~repro.errors.DeviceOutOfMemoryError` regardless of capacity.
* ``transfer`` — :func:`repro.gpu.transfer.h2d_copy` /
  :func:`~repro.gpu.transfer.d2h_copy` consult it per copy; a
  ``transfer_fault`` raises :class:`~repro.errors.TransferError`
  (transient — a retry succeeds once the scheduled fault is consumed).
* ``um_migration`` — :class:`repro.gpu.um.UnifiedMemoryManager` consults
  it after each migration batch; a ``um_stall`` fault adds its ``param``
  milliseconds of stall to the batch (graceful, results unaffected), or
  raises :class:`~repro.errors.MigrationStallError` when the stall
  exceeds :data:`STALL_WATCHDOG_MS` (the driver watchdog fires).
* ``kernel_launch`` — the session consults it before each traversal
  kernel; a ``bitflip`` fault flips one bit of the device labels array
  and raises :class:`~repro.errors.DataCorruptionError` (detected-ECC
  semantics: the corruption never reaches the caller as a wrong answer).
* ``memo_lookup`` — a ``memo_invalidate`` fault flushes the session's
  frontier memo (results must be bit-identical with or without it).
* ``direct_access`` — :func:`repro.gpu.transfer.direct_access_read`
  consults it per iteration under the ``direct_access`` placement; a
  ``direct_access_fault`` raises :class:`~repro.errors.TransferError`
  before any time or bytes are recorded (a failed bus read, transient —
  retryable like an explicit copy).

Every fired fault is appended to :attr:`FaultInjector.fired`, which the
resilience layer copies into its :class:`~repro.resilience.session.
RunOutcome` so an operator can see exactly what a degraded query survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigError,
    DataCorruptionError,
    DeviceOutOfMemoryError,
    MigrationStallError,
    TransferError,
)

#: Fault kinds a plan may schedule, keyed by the event stream they ride.
FAULT_KINDS = (
    "alloc_oom",            # alloc events
    "transfer_fault",       # h2d/d2h copy events
    "um_stall",             # UM migration-batch events
    "bitflip",              # traversal kernel launches
    "memo_invalidate",      # frontier-memo lookups
    "direct_access_fault",  # direct-access PCIe sector reads
)

#: A ``um_stall`` whose ``param`` (milliseconds) reaches this threshold is
#: treated as hung: the driver watchdog raises ``MigrationStallError``
#: instead of just stretching the migration batch.
STALL_WATCHDOG_MS = 1000.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire on events ``[at, at + count)`` of ``kind``.

    Event indices are 0-based and counted per kind over the injector's
    whole lifetime (across retries and degradation rungs), which is what
    makes a plan deterministic: the N-th allocation request always means
    the N-th allocation request, whoever issues it.
    """

    kind: str
    at: int
    count: int = 1
    #: Kind-specific knob: stall milliseconds for ``um_stall`` (values
    #: >= :data:`STALL_WATCHDOG_MS` escalate to a watchdog error); unused
    #: elsewhere.
    param: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.at < 0 or self.count < 1:
            raise ConfigError(
                f"fault schedule must have at >= 0 and count >= 1, "
                f"got at={self.at} count={self.count}"
            )

    def covers(self, event_index: int) -> bool:
        return self.at <= event_index < self.at + self.count


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-replayable schedule of typed faults."""

    specs: tuple[FaultSpec, ...] = ()
    #: Seed for the injector's own randomness (bit positions of flips).
    seed: int = 0

    @classmethod
    def random(
        cls, rng: np.random.Generator | int, *, max_faults: int = 3
    ) -> "FaultPlan":
        """Draw a random plan: up to ``max_faults`` specs over all kinds.

        Early event indices are favoured so small fuzz cases (a handful of
        allocations and a dozen kernel launches) actually hit their
        faults; ``count`` occasionally spans several events so retries
        get exhausted and the degradation ladder is exercised.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        specs = []
        for _ in range(int(rng.integers(0, max_faults + 1))):
            kind = FAULT_KINDS[int(rng.integers(len(FAULT_KINDS)))]
            param = 0.0
            if kind == "um_stall":
                param = float(
                    rng.choice([5.0, 50.0, STALL_WATCHDOG_MS * 2])
                )
            specs.append(FaultSpec(
                kind=kind,
                at=int(rng.integers(0, 8)),
                count=int(rng.choice([1, 1, 2, 4, 16])),
                param=param,
            ))
        return cls(specs=tuple(specs), seed=int(rng.integers(2**31)))

    def describe(self) -> str:
        if not self.specs:
            return f"FaultPlan(seed={self.seed}, no faults)"
        parts = [
            f"{s.kind}@{s.at}" + (f"x{s.count}" if s.count > 1 else "")
            + (f"({s.param:g})" if s.param else "")
            for s in self.specs
        ]
        return f"FaultPlan(seed={self.seed}, {', '.join(parts)})"


class FaultInjector:
    """Counts events per kind and fires the plan's faults on schedule.

    One injector serves one :class:`~repro.resilience.session.
    ResilientSession` (or one :class:`~repro.core.session.EngineSession`
    in tests): its counters persist across query retries and degradation
    rungs, so a consumed transient fault stays consumed — which is what
    makes retry-after-fault converge.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._counts = {kind: 0 for kind in FAULT_KINDS}
        self._rng = np.random.default_rng(plan.seed)
        #: Human-readable record of every fault fired, in firing order.
        self.fired: list[str] = []

    # ------------------------------------------------------------------

    def _next(self, kind: str) -> FaultSpec | None:
        """Advance the event counter for ``kind``; return the spec that
        covers this event, if any."""
        index = self._counts[kind]
        self._counts[kind] = index + 1
        for spec in self.plan.specs:
            if spec.kind == kind and spec.covers(index):
                return spec
        return None

    def _record(self, kind: str, detail: str) -> None:
        self.fired.append(f"{kind}: {detail}")

    @property
    def events(self) -> dict[str, int]:
        """Events observed so far per kind (for tests and reports)."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Hook entry points (called from the wired components)
    # ------------------------------------------------------------------

    def on_alloc(
        self, name: str, nbytes: int, in_use: int, capacity: int
    ) -> None:
        """DeviceMemory.alloc hook: may raise an injected OOM."""
        if self._next("alloc_oom") is not None:
            self._record("alloc_oom", f"{name} ({nbytes} B)")
            raise DeviceOutOfMemoryError(nbytes, in_use, capacity)

    def on_transfer(self, direction: str, nbytes: float) -> None:
        """h2d/d2h copy hook: may raise an injected transient failure."""
        if self._next("transfer_fault") is not None:
            self._record("transfer_fault", f"{direction} ({int(nbytes)} B)")
            raise TransferError(
                f"injected {direction} failure after {int(nbytes)} B"
            )

    def on_um_migration(self, bytes_moved: int) -> float:
        """UM migration hook: returns stall ms to add to the batch, or
        raises when the stall trips the driver watchdog."""
        spec = self._next("um_stall")
        if spec is None:
            return 0.0
        if spec.param >= STALL_WATCHDOG_MS:
            self._record("um_stall", f"watchdog ({bytes_moved} B)")
            raise MigrationStallError(
                f"injected migration stall past watchdog "
                f"({spec.param:g} ms, {bytes_moved} B in flight)"
            )
        self._record("um_stall", f"{spec.param:g} ms ({bytes_moved} B)")
        return float(spec.param)

    def on_kernel_launch(self, labels: np.ndarray) -> None:
        """Kernel-launch hook: a bitflip corrupts one label bit and is
        immediately detected (ECC), aborting the query."""
        if self._next("bitflip") is None:
            return
        if labels.size == 0:
            return
        vertex = int(self._rng.integers(labels.size))
        bit = int(self._rng.integers(8 * labels.itemsize))
        flat = labels.reshape(-1)
        raw = flat[vertex : vertex + 1].view(np.uint8).copy()
        raw[bit // 8] ^= np.uint8(1 << (bit % 8))
        flat[vertex : vertex + 1] = raw.view(flat.dtype)
        self._record("bitflip", f"vertex {vertex} bit {bit}")
        raise DataCorruptionError(
            f"ECC: detected bit flip in labels[{vertex}] (bit {bit})"
        )

    def on_direct_access(self, nbytes: int) -> None:
        """Direct-access read hook: may raise an injected transient bus
        failure (the ``direct_access`` placement's fault surface)."""
        if self._next("direct_access_fault") is not None:
            self._record("direct_access_fault", f"{int(nbytes)} B")
            raise TransferError(
                f"injected direct-access read failure ({int(nbytes)} B)"
            )

    def on_memo_lookup(self, session) -> None:
        """Frontier-memo hook: an injected invalidation flushes the memo
        (a pure perf event — results must not change)."""
        if self._next("memo_invalidate") is not None:
            self._record(
                "memo_invalidate", f"{session.memo_entries} entries dropped"
            )
            session.invalidate_memo()

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self.plan.describe()}, "
            f"{len(self.fired)} fired)"
        )
