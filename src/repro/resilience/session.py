"""Hardened serving wrapper: retry, budgets and graceful degradation.

:class:`ResilientSession` wraps :class:`~repro.core.session.EngineSession`
with the failure semantics a serving deployment needs (the ROADMAP's
north star), built on the paper's own observation that memory placement
is a *ladder*, not a binary: Table III's baselines die with ``O.O.M``
where EtaGraph's UM oversubscription survives, and EMOGI pushes the same
idea one rung further (sector-granular direct access, then zero-copy,
when even UM thrashes).  The ladder here:

    device-resident -> UM prefetch -> UM oversubscribed (on-demand)
        -> direct access -> zero-copy -> CPU reference oracle

A query enters at the rung matching its configured
:class:`~repro.core.config.MemoryMode` and only ever moves *down*:

* **transient faults** (:class:`~repro.errors.TransferError`,
  :class:`~repro.errors.MigrationStallError`) and detected corruption
  (:class:`~repro.errors.DataCorruptionError`) are retried on the same
  rung with exponential backoff, then demote when retries are exhausted;
* **out-of-memory** (:class:`~repro.errors.DeviceOutOfMemoryError`)
  demotes immediately — and a *genuine* capacity OOM (requested bytes
  really exceed free capacity) marks the rung dead for the session, so
  later queries skip straight past it;
* the **CPU oracle** rung cannot fault: it runs the exact serial
  reference on the host, so a degraded-but-correct answer is always
  available (labels are bit-identical to the GPU result by the
  differential subsystem's guarantee).

Every query returns a :class:`RunOutcome` recording each attempt, every
injected fault observed, the final placement and whether the answer was
served degraded.  With no fault plan installed the wrapper adds nothing:
results (labels *and* simulated timings) are bit-identical to the same
queries on a bare ``EngineSession``.

All backoff time is *simulated* (recorded, never slept), consistent with
the rest of the repo's clock; only :attr:`RetryPolicy.deadline_ms` reads
the host wall clock, because it bounds real serving latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.algorithms.base import TraversalProblem, get_problem
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.engine import TraversalResult
from repro.core.session import EngineSession
from repro.core.stats import TraversalStats
from repro.errors import (
    ConfigError,
    ConvergenceError,
    DataCorruptionError,
    DeadlineExceededError,
    DeviceOutOfMemoryError,
    SessionClosedError,
    TransientDeviceError,
)
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.profiler import Profiler
from repro.gpu.timeline import Timeline
from repro.graph.compressed import CompressedCSRGraph
from repro.graph.csr import CSRGraph
from repro.resilience.faults import FaultInjector, FaultPlan

#: The degradation ladder, best placement first.  ``um_oversubscribed``
#: is UM with on-demand migration — the mode whose paging survives
#: working sets beyond device capacity (the paper's uk-2006 case).
LADDER: tuple[str, ...] = (
    "device", "um_prefetch", "um_oversubscribed", "direct_access",
    "zero_copy", "cpu_oracle",
)

_RUNG_MODES: dict[str, MemoryMode] = {
    "device": MemoryMode.DEVICE,
    "um_prefetch": MemoryMode.UM_PREFETCH,
    "um_oversubscribed": MemoryMode.UM_ON_DEMAND,
    "direct_access": MemoryMode.DIRECT_ACCESS,
    "zero_copy": MemoryMode.ZERO_COPY,
}

_MODE_RUNGS: dict[MemoryMode, str] = {
    MemoryMode.DEVICE: "device",
    MemoryMode.UM_PREFETCH: "um_prefetch",
    MemoryMode.UM_ON_DEMAND: "um_oversubscribed",
    MemoryMode.DIRECT_ACCESS: "direct_access",
    MemoryMode.ZERO_COPY: "zero_copy",
}


@dataclass(frozen=True)
class RetryPolicy:
    """Per-query failure-handling budget of a :class:`ResilientSession`."""

    #: Retries per rung for transient faults / detected corruption (the
    #: first try is not a retry: a rung gets ``1 + max_retries`` tries).
    max_retries: int = 2
    #: Simulated backoff before retry r: ``backoff_base_ms * 2**(r-1)``.
    backoff_base_ms: float = 1.0
    #: Seeded-deterministic backoff jitter: each retry's backoff is
    #: stretched by a factor drawn uniformly from ``[1, 1 + jitter]``
    #: out of the session's own seeded stream (``jitter_seed``), so
    #: lanes sharing a fault plan stop retrying in lockstep (the classic
    #: synchronized retry storm).  0.0 (the default) draws nothing and
    #: keeps the exact pre-jitter schedule — the resilience identity
    #: gate runs against this configuration.
    jitter: float = 0.0
    #: Host wall-clock budget per query (None = unbounded).  Checked
    #: between attempts; tripping it raises ``DeadlineExceededError``.
    deadline_ms: float | None = None
    #: Per-query iteration budget (None = the config's own
    #: ``max_iterations``).  Exhausting it raises
    #: ``DeadlineExceededError`` instead of ``ConvergenceError``.
    max_iterations: int | None = None
    #: Whether the ladder's last rung (exact host traversal) is allowed.
    allow_cpu_fallback: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_ms < 0:
            raise ConfigError("backoff_base_ms must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ConfigError("deadline_ms must be >= 0")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")


@dataclass(frozen=True)
class Attempt:
    """One try of one query on one rung."""

    rung: str
    #: 1-based try number within the rung.
    try_number: int
    #: ``None`` on success, else ``"ErrorType: message"``.
    error: str | None
    #: Simulated backoff charged before the *next* try on this rung.
    backoff_ms: float = 0.0


@dataclass
class RunOutcome:
    """Everything that happened while serving one query."""

    result: TraversalResult
    attempts: list[Attempt] = field(default_factory=list)
    #: Injector faults observed during this query, in firing order.
    faults_seen: list[str] = field(default_factory=list)
    #: Ladder rung that produced the result.
    final_placement: str = ""
    #: Rung the session's configuration asked for.
    requested_placement: str = ""
    #: True when the answer came from a lower rung than configured.
    degraded: bool = False
    #: Total simulated backoff charged across retries (ms).
    backoff_ms: float = 0.0

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    @property
    def trace(self):
        """The stitched :class:`repro.observability.Trace` of this serve
        (``None`` unless the session ran with telemetry)."""
        return self.result.trace if self.result is not None else None

    @property
    def labels(self) -> np.ndarray:
        return self.result.labels

    def __repr__(self) -> str:
        return (
            f"RunOutcome({self.final_placement}, "
            f"{self.num_attempts} attempts, "
            f"{len(self.faults_seen)} faults, "
            f"{'degraded' if self.degraded else 'nominal'})"
        )


class ResilientSession:
    """An :class:`~repro.core.session.EngineSession` that degrades
    instead of dying.

    Use exactly like an engine session — plus every query also reports
    *how* it was served::

        with ResilientSession(graph) as rs:
            outcome = rs.run("bfs", 0)
            outcome.labels            # bit-exact labels
            outcome.final_placement   # e.g. "um_prefetch"
            outcome.degraded          # False on the happy path

    ``fault_plan`` installs a deterministic
    :class:`~repro.resilience.faults.FaultPlan` (chaos testing); without
    one, results are bit-identical to a bare ``EngineSession``.
    """

    def __init__(
        self,
        csr: "CSRGraph | CompressedCSRGraph",
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
        *,
        fault_plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        jitter_seed: int = 0,
    ):
        #: The topology as handed in — possibly a
        #: :class:`~repro.graph.compressed.CompressedCSRGraph`; every rung
        #: session places *this*, so degradation never silently swaps the
        #: encoding out from under the caller.
        self.topology = csr
        #: Dense view for the CPU-oracle floor (and host-side checks).
        self.csr = (
            csr.decode() if isinstance(csr, CompressedCSRGraph) else csr
        )
        self.config = config or EtaGraphConfig()
        self.device = device
        self.policy = policy or RetryPolicy()
        self.injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        #: Seed of this session's backoff-jitter stream (pool lanes pass
        #: their lane index, desynchronizing shared fault plans).  The
        #: stream is only ever drawn from when ``policy.jitter > 0``, so
        #: jitter-off schedules are byte-identical to pre-jitter ones.
        self.jitter_seed = jitter_seed
        self._jitter_rng = np.random.default_rng((0x6A11E6, jitter_seed))
        #: Optional externally-owned :class:`repro.observability.Tracer`.
        #: When set (or when ``config.telemetry`` is true), every
        #: :meth:`run` records ``serve``/``attempt``/``backoff`` spans
        #: and stitches each attempt's engine trace onto one timeline;
        #: the full trace hangs off ``outcome.result.trace``.  Purely
        #: observational: results and simulated timings are unchanged.
        self.tracer = None
        #: Rungs proven to genuinely exceed device capacity this session;
        #: later queries skip them instead of re-failing the allocation.
        self.dead_rungs: set[str] = set()
        #: Completed queries (same meaning as ``EngineSession.queries_served``).
        self.queries_served = 0
        self._sessions: dict[str, EngineSession] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()
        self._closed = True

    def __enter__(self) -> "ResilientSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"{self.queries_served} queries, "
            f"rungs={sorted(self._sessions)}"
        )
        return f"ResilientSession({self.csr!r}, {state})"

    # ------------------------------------------------------------------
    # Ladder bookkeeping
    # ------------------------------------------------------------------

    @property
    def entry_rung(self) -> str:
        return _MODE_RUNGS[self.config.memory_mode]

    def _rung_config(self, rung: str) -> EtaGraphConfig:
        # Iteration budgets are applied per query (session.query's
        # max_iterations override), not baked into the rung config, so
        # one resident session can serve requests with different budgets.
        if rung == self.entry_rung:
            # The entry rung runs the caller's configuration untouched —
            # this is what makes the no-fault path bit-identical.
            return self.config
        return replace(self.config, memory_mode=_RUNG_MODES[rung])

    def _session_for(self, rung: str) -> EngineSession:
        session = self._sessions.get(rung)
        if session is None:
            session = EngineSession(
                self.topology, self._rung_config(rung), self.device,
                injector=self.injector,
            )
            self._sessions[rung] = session
        return session

    def _discard(self, rung: str) -> None:
        """Close and drop a rung's session (its placement state may be
        partial after an aborted allocation)."""
        session = self._sessions.pop(rung, None)
        if session is not None:
            session.close()

    def _ladder_from(self, start: str, policy: RetryPolicy) -> list[str]:
        rungs = list(LADDER[LADDER.index(start):])
        if not policy.allow_cpu_fallback:
            rungs.remove("cpu_oracle")
        return [r for r in rungs if r not in self.dead_rungs]

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def run(
        self,
        problem: TraversalProblem | str,
        source: int,
        *,
        target: int | None = None,
        policy: RetryPolicy | None = None,
    ) -> RunOutcome:
        """Serve one query through the retry/degradation machinery.

        Returns a :class:`RunOutcome`; raises only typed
        :class:`~repro.errors.ReproError` subclasses — a deadline or an
        unservable ladder surfaces as an error, never as a wrong answer.

        ``policy`` overrides the session's :class:`RetryPolicy` for this
        call only (the serving layer's per-request deadline/iteration
        budgets); resident rung sessions are reused either way.
        """
        if self._closed:
            raise SessionClosedError("resilient session is closed")
        if isinstance(problem, str):
            problem = get_problem(problem)
        policy = policy or self.policy

        started = time.monotonic()
        outcome = RunOutcome(
            result=None,  # type: ignore[arg-type] — set before returning
            requested_placement=self.entry_rung,
        )
        fired_before = len(self.injector.fired) if self.injector else 0
        last_error: Exception | None = None

        # Telemetry: an attached tracer wins; else config.telemetry makes
        # one per serve.  Attempts are stitched onto one timeline — each
        # attempt's engine spans record at ``base_ms = cur``, and ``cur``
        # advances past whatever the attempt (plus simulated backoff)
        # consumed.  Resilience spans live at base 0, absolute time.
        tr = self.tracer
        if tr is None and self.config.telemetry:
            from repro.observability.spans import Tracer

            tr = Tracer()
        serve_span = None
        cur = 0.0
        if tr is not None:
            tr.base_ms = 0.0
            cur = tr.max_end_ms
            serve_span = tr.start(
                "serve", "resilience", cur,
                problem=problem.name, source=source,
                entry_rung=self.entry_rung,
            )

        rungs = self._ladder_from(self.entry_rung, policy)
        if not rungs:
            raise DeviceOutOfMemoryError(0, 0, self.device.memory_capacity)
        try:
            for rung in rungs:
                tries = 1 + policy.max_retries
                for try_number in range(1, tries + 1):
                    self._check_deadline(started, policy)
                    a_span = None
                    if tr is not None:
                        tr.base_ms = cur
                        a_span = tr.start(
                            "attempt", "resilience", 0.0,
                            rung=rung, try_number=try_number,
                        )
                    try:
                        result = self._attempt(
                            rung, problem, source, target, tr,
                            max_iterations=policy.max_iterations,
                        )
                    except DeviceOutOfMemoryError as exc:
                        # OOM is not retryable at this placement: demote.
                        # A genuine capacity failure also retires the
                        # rung for the whole session.
                        if tr is not None:
                            cur = self._close_attempt(tr, a_span, exc)
                        outcome.attempts.append(Attempt(
                            rung=rung, try_number=try_number,
                            error=f"{type(exc).__name__}: {exc}",
                        ))
                        last_error = exc
                        self._discard(rung)
                        if rung != "cpu_oracle" and \
                                exc.requested + exc.in_use > exc.capacity:
                            self.dead_rungs.add(rung)
                        break
                    except (TransientDeviceError, DataCorruptionError) as exc:
                        if tr is not None:
                            cur = self._close_attempt(tr, a_span, exc)
                        backoff = 0.0
                        if try_number <= policy.max_retries:
                            backoff = self._backoff_ms(policy, try_number)
                            outcome.backoff_ms += backoff
                            if tr is not None and backoff > 0:
                                tr.emit("backoff", "resilience", backoff,
                                        t_ms=cur, rung=rung,
                                        try_number=try_number)
                                cur += backoff
                        outcome.attempts.append(Attempt(
                            rung=rung, try_number=try_number,
                            error=f"{type(exc).__name__}: {exc}",
                            backoff_ms=backoff,
                        ))
                        last_error = exc
                        continue  # retry this rung (or fall off to demote)
                    except ConvergenceError as exc:
                        if tr is not None:
                            self._close_attempt(tr, a_span, exc)
                        if policy.max_iterations is not None:
                            raise DeadlineExceededError(
                                f"query exceeded its iteration budget of "
                                f"{policy.max_iterations}"
                            ) from exc
                        raise
                    if tr is not None:
                        cur = self._close_attempt(tr, a_span, None)
                    outcome.attempts.append(Attempt(
                        rung=rung, try_number=try_number, error=None,
                    ))
                    outcome.result = result
                    outcome.final_placement = rung
                    outcome.degraded = rung != outcome.requested_placement
                    if self.injector is not None:
                        outcome.faults_seen = list(
                            self.injector.fired[fired_before:]
                        )
                    self.queries_served += 1
                    if tr is not None:
                        tr.end(serve_span, cur, placement=rung,
                               attempts=outcome.num_attempts,
                               degraded=outcome.degraded)
                        outcome.result.trace = tr.trace(
                            problem=problem.name, source=source,
                            resilient="true", placement=rung,
                        )
                    return outcome

            # Every allowed rung failed; surface the last typed error.
            assert last_error is not None
            raise last_error
        except Exception:
            # Keep the trace well-formed for post-mortem export: close
            # whatever the raise left open (the serve span, at least).
            if tr is not None:
                tr.base_ms = 0.0
                tr.unwind(tr.max_end_ms, error=True)
            raise

    def run_wave(self, sources, *, policy: RetryPolicy | None = None):
        """Serve one MSBFS wave (:func:`repro.core.msbfs.run_wave`)
        through the same retry/degradation ladder as :meth:`run`.

        The whole wave moves down the ladder together: a fault on one
        rung re-runs *all* lanes on the next try/rung (lanes share one
        traversal, so there is no per-lane partial result to salvage).
        Returns a :class:`RunOutcome` whose ``result`` is a
        :class:`~repro.core.msbfs.WaveResult`; per-source levels are
        bit-identical whichever rung served them (the cpu_oracle floor
        included, labels-wise — its timings are host wall time, like
        :meth:`run`'s oracle).
        """
        from repro.core import msbfs

        if self._closed:
            raise SessionClosedError("resilient session is closed")
        policy = policy or self.policy

        started = time.monotonic()
        outcome = RunOutcome(
            result=None,  # type: ignore[arg-type] — set before returning
            requested_placement=self.entry_rung,
        )
        fired_before = len(self.injector.fired) if self.injector else 0
        last_error: Exception | None = None

        tr = self.tracer
        if tr is None and self.config.telemetry:
            from repro.observability.spans import Tracer

            tr = Tracer()
        serve_span = None
        cur = 0.0
        if tr is not None:
            tr.base_ms = 0.0
            cur = tr.max_end_ms
            serve_span = tr.start(
                "serve", "resilience", cur,
                problem="msbfs", sources=len(sources),
                entry_rung=self.entry_rung,
            )

        rungs = self._ladder_from(self.entry_rung, policy)
        if not rungs:
            raise DeviceOutOfMemoryError(0, 0, self.device.memory_capacity)
        try:
            for rung in rungs:
                tries = 1 + policy.max_retries
                for try_number in range(1, tries + 1):
                    self._check_deadline(started, policy)
                    a_span = None
                    if tr is not None:
                        tr.base_ms = cur
                        a_span = tr.start(
                            "attempt", "resilience", 0.0,
                            rung=rung, try_number=try_number,
                        )
                    try:
                        if rung == "cpu_oracle":
                            result = self._cpu_oracle_wave(sources, tr)
                        else:
                            session = self._session_for(rung)
                            prev = session.tracer
                            session.tracer = tr if tr is not None else prev
                            try:
                                result = msbfs.run_wave(
                                    session, sources,
                                    max_iterations=policy.max_iterations,
                                )
                            finally:
                                session.tracer = prev
                    except DeviceOutOfMemoryError as exc:
                        if tr is not None:
                            cur = self._close_attempt(tr, a_span, exc)
                        outcome.attempts.append(Attempt(
                            rung=rung, try_number=try_number,
                            error=f"{type(exc).__name__}: {exc}",
                        ))
                        last_error = exc
                        self._discard(rung)
                        if rung != "cpu_oracle" and \
                                exc.requested + exc.in_use > exc.capacity:
                            self.dead_rungs.add(rung)
                        break
                    except (TransientDeviceError, DataCorruptionError) as exc:
                        if tr is not None:
                            cur = self._close_attempt(tr, a_span, exc)
                        backoff = 0.0
                        if try_number <= policy.max_retries:
                            backoff = self._backoff_ms(policy, try_number)
                            outcome.backoff_ms += backoff
                            if tr is not None and backoff > 0:
                                tr.emit("backoff", "resilience", backoff,
                                        t_ms=cur, rung=rung,
                                        try_number=try_number)
                                cur += backoff
                        outcome.attempts.append(Attempt(
                            rung=rung, try_number=try_number,
                            error=f"{type(exc).__name__}: {exc}",
                            backoff_ms=backoff,
                        ))
                        last_error = exc
                        continue
                    except ConvergenceError as exc:
                        if tr is not None:
                            self._close_attempt(tr, a_span, exc)
                        if policy.max_iterations is not None:
                            raise DeadlineExceededError(
                                f"wave exceeded its iteration budget of "
                                f"{policy.max_iterations}"
                            ) from exc
                        raise
                    if tr is not None:
                        cur = self._close_attempt(tr, a_span, None)
                    outcome.attempts.append(Attempt(
                        rung=rung, try_number=try_number, error=None,
                    ))
                    outcome.result = result
                    outcome.final_placement = rung
                    outcome.degraded = rung != outcome.requested_placement
                    if self.injector is not None:
                        outcome.faults_seen = list(
                            self.injector.fired[fired_before:]
                        )
                    self.queries_served += result.width
                    if tr is not None:
                        tr.end(serve_span, cur, placement=rung,
                               attempts=outcome.num_attempts,
                               degraded=outcome.degraded)
                        outcome.result.trace = tr.trace(
                            problem="msbfs", sources=str(result.width),
                            resilient="true", placement=rung,
                        )
                    return outcome

            assert last_error is not None
            raise last_error
        except Exception:
            if tr is not None:
                tr.base_ms = 0.0
                tr.unwind(tr.max_end_ms, error=True)
            raise

    def _cpu_oracle_wave(self, sources, tracer=None):
        """Exact host MSBFS: one serial oracle traversal per lane,
        stacked into a :class:`~repro.core.msbfs.WaveResult`."""
        from repro.core.msbfs import WaveResult
        from repro.testing.differential import oracle_labels

        sources = np.asarray(sources, dtype=np.int64).ravel()
        t0 = time.perf_counter()
        levels = np.stack([
            oracle_labels(self.csr, "bfs", int(s)) for s in sources
        ])
        wall_ms = (time.perf_counter() - t0) * 1e3
        if tracer is not None:
            tracer.emit("cpu_oracle", "resilience", wall_ms, t_ms=0.0,
                        wall_time=True, lanes=len(sources))
        return WaveResult(
            sources=sources,
            levels=levels,
            total_ms=wall_ms,
            kernel_ms=0.0,
            transfer_ms=0.0,
            d2h_ms=0.0,
            setup_ms=0.0,
            stats=TraversalStats(
                num_vertices=self.csr.num_vertices, seed_count=len(sources)
            ),
            timeline=Timeline(),
            profiler=Profiler(),
            config=self._rung_config(self.entry_rung),
            extras={"cpu_oracle": True},
        )

    #: Drop-in :class:`~repro.core.session.EngineSession` compatibility:
    #: same signature, returns the bare :class:`TraversalResult`.
    def query(
        self,
        problem: TraversalProblem | str,
        source: int,
        *,
        target: int | None = None,
    ) -> TraversalResult:
        return self.run(problem, source, target=target).result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _backoff_ms(self, policy: RetryPolicy, try_number: int) -> float:
        """Simulated backoff before retry ``try_number``: exponential in
        the try number, stretched by this session's seeded jitter draw
        when ``policy.jitter > 0``.  The jitter stream is untouched at
        ``jitter == 0`` so jitter-off schedules replay byte-identically."""
        backoff = policy.backoff_base_ms * 2.0 ** (try_number - 1)
        if policy.jitter > 0.0 and backoff > 0.0:
            backoff *= 1.0 + policy.jitter * float(self._jitter_rng.random())
        return backoff

    def _check_deadline(self, started: float, policy: RetryPolicy) -> None:
        deadline = policy.deadline_ms
        if deadline is None:
            return
        elapsed_ms = (time.monotonic() - started) * 1e3
        if elapsed_ms >= deadline:
            raise DeadlineExceededError(
                f"query exceeded its {deadline:g} ms wall deadline "
                f"({elapsed_ms:.1f} ms elapsed)"
            )

    @staticmethod
    def _close_attempt(tr, span, exc: Exception | None) -> float:
        """Close one attempt's span (plus anything an exception left open
        beneath it) and return the stitched timeline's new position."""
        end_local = max(tr.max_end_ms - tr.base_ms, 0.0)
        if exc is None:
            tr.end(span, end_local)
        else:
            tr.end(span, end_local, error=type(exc).__name__)
        end_abs = tr.base_ms + end_local
        tr.base_ms = 0.0
        return end_abs

    def _attempt(
        self,
        rung: str,
        problem: TraversalProblem,
        source: int,
        target: int | None,
        tracer=None,
        *,
        max_iterations: int | None = None,
    ) -> TraversalResult:
        if rung == "cpu_oracle":
            # The exact host traversal has no iteration schedule to
            # budget; a per-request iteration cap does not apply here.
            return self._cpu_oracle_result(problem, source, tracer)
        session = self._session_for(rung)
        if tracer is None:
            return session.query(problem, source, target=target,
                                 max_iterations=max_iterations)
        prev = session.tracer
        session.tracer = tracer
        try:
            return session.query(problem, source, target=target,
                                 max_iterations=max_iterations)
        finally:
            session.tracer = prev

    def _cpu_oracle_result(
        self, problem: TraversalProblem, source: int, tracer=None
    ) -> TraversalResult:
        """The ladder's floor: exact serial traversal on the host.

        No simulated device is involved, so no injected fault can reach
        it.  ``total_ms`` is *host* wall time (there is no simulated
        clock to report); kernel/transfer times are zero.
        """
        # Imported lazily: repro.testing.differential imports the engine.
        from repro.testing.differential import oracle_labels

        t0 = time.perf_counter()
        labels = oracle_labels(self.csr, problem.name, source)
        wall_ms = (time.perf_counter() - t0) * 1e3
        if tracer is not None:
            tracer.emit("cpu_oracle", "resilience", wall_ms, t_ms=0.0,
                        wall_time=True)
        n = self.csr.num_vertices
        seeds = problem.initial_frontier(n, source)
        return TraversalResult(
            labels=labels,
            source=source,
            problem_name=problem.name,
            total_ms=wall_ms,
            kernel_ms=0.0,
            transfer_ms=0.0,
            d2h_ms=0.0,
            stats=TraversalStats(num_vertices=n, seed_count=len(seeds)),
            timeline=Timeline(),
            profiler=Profiler(),
            config=self._rung_config(self.entry_rung),
            extras={"cpu_oracle": True, "early_exit": False},
        )
