"""Chaos-mode differential fuzzing: random faults, exact answers.

Runs the differential fuzzer's random graphs and configurations through
a :class:`~repro.resilience.session.ResilientSession` under random
seeded :class:`~repro.resilience.faults.FaultPlan`\\ s, and asserts the
resilience contract:

    every query either returns labels **bit-identical to the CPU
    oracle**, or raises a **typed** :class:`~repro.errors.ReproError` —
    never a wrong answer, never a bare traceback.

Everything derives from one sweep seed, so a failing plan prints the
coordinates to replay it.  This is what ``python -m repro.testing
--chaos`` runs, and what the ``chaos-smoke`` CI job gates on.

:func:`check_bit_identity` is the other half of the contract: with *no*
fault plan installed, ``ResilientSession`` must be an exact no-op
wrapper — labels and simulated timings hash-identical to a bare
``EngineSession`` on the same queries.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EtaGraphConfig
from repro.core.session import EngineSession
from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.resilience.faults import FaultPlan
from repro.resilience.session import ResilientSession, RetryPolicy

_PROBLEMS = ("bfs", "sssp", "sswp", "cc")


@dataclass
class ChaosReport:
    """Aggregate outcome of one chaos sweep."""

    seed: int
    plans: int = 0
    queries: int = 0
    #: Queries that returned a (verified-correct) result.
    ok_results: int = 0
    #: Of those, how many were served from a lower rung than configured.
    degraded: int = 0
    #: Queries that ended in a typed ReproError, by exception type name.
    typed_errors: dict = field(default_factory=dict)
    #: Results by final ladder placement.
    placements: dict = field(default_factory=dict)
    #: Total injected faults observed firing.
    faults_fired: int = 0
    elapsed_s: float = 0.0
    #: Contract violations: wrong labels or untyped exceptions, with the
    #: plan coordinates needed to replay them.
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        errors = ", ".join(
            f"{k}={v}" for k, v in sorted(self.typed_errors.items())
        ) or "none"
        placements = ", ".join(
            f"{k}={v}" for k, v in sorted(self.placements.items())
        ) or "none"
        head = (
            f"chaos sweep (seed {self.seed}): {self.plans} fault plans, "
            f"{self.queries} queries in {self.elapsed_s:.1f}s\n"
            f"  correct results: {self.ok_results} "
            f"({self.degraded} degraded; placements: {placements})\n"
            f"  typed errors: {errors}\n"
            f"  faults fired: {self.faults_fired}"
        )
        if self.ok:
            return (
                f"{head}\nresilience contract holds: every outcome was a "
                "correct result or a typed ReproError"
            )
        lines = [f"{head}\n{len(self.failures)} CONTRACT VIOLATIONS:"]
        lines += [f"  {f}" for f in self.failures]
        return "\n".join(lines)


def run_chaos(
    *,
    max_plans: int | None = None,
    max_seconds: float | None = None,
    seed: int = 0,
    queries_per_plan: int = 2,
    max_vertices: int = 64,
    log=None,
    trace_dir=None,
) -> ChaosReport:
    """Sweep random fault plans until the plan or time budget runs out.

    Each case draws a random graph, engine configuration, problem and
    :class:`FaultPlan` from the case seed, serves ``queries_per_plan``
    queries through one ``ResilientSession``, and verifies every
    returned label vector bit-for-bit against the CPU oracle.  Typed
    ``ReproError``\\ s are acceptable outcomes (counted, not failed);
    anything else — a label mismatch or an untyped exception — is a
    contract violation recorded with its replay coordinates.

    ``trace_dir`` (optional) turns on telemetry per query and writes a
    Chrome trace-event file for every query that ended in a typed error
    or a contract violation — the spans recorded up to the failure,
    including the resilience ladder's attempts, so a failing plan can be
    diagnosed on a timeline instead of replayed blind.
    """
    # Imported here, not at module top: repro.testing imports the engine
    # stack and the chaos CLI lives inside repro.testing's __main__.
    from repro.testing.differential import diff_labels, oracle_labels
    from repro.testing.fuzz import random_config, random_graph

    if trace_dir is not None:
        from pathlib import Path

        from repro.observability.export import write_chrome_trace
        from repro.observability.spans import Tracer

        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)

    if max_plans is None and max_seconds is None:
        max_plans = 200
    report = ChaosReport(seed=seed)
    start = time.monotonic()

    case = 0
    while True:
        if max_plans is not None and case >= max_plans:
            break
        if max_seconds is not None and \
                time.monotonic() - start >= max_seconds:
            break
        rng = np.random.default_rng([seed, case])
        problem = _PROBLEMS[case % len(_PROBLEMS)]
        graph = random_graph(
            rng, weighted=problem in ("sssp", "sswp"),
            max_vertices=max_vertices,
        )
        config = random_config(rng)
        plan = FaultPlan.random(rng)
        # Vary the hardening policy too, so the sweep exercises the
        # typed-error side of the contract (a persistent fault with the
        # CPU oracle rung disabled must surface as a ReproError, not
        # hang or escape untyped).
        policy = RetryPolicy(
            max_retries=int(rng.integers(0, 3)),
            allow_cpu_fallback=bool(rng.integers(0, 4)),
        )
        coords = (
            f"plan {case} (seed {seed}, {plan.describe()}, {problem}, "
            f"|V|={graph.num_vertices} |E|={graph.num_edges}, "
            f"memory={config.memory_mode.value}, "
            f"retries={policy.max_retries}, "
            f"cpu_fallback={policy.allow_cpu_fallback})"
        )
        report.plans += 1

        with ResilientSession(
            graph, config, fault_plan=plan, policy=policy,
        ) as rs:
            fired_total = 0
            for q in range(queries_per_plan):
                source = int(rng.integers(graph.num_vertices))
                report.queries += 1
                if trace_dir is not None:
                    # One externally-owned tracer per query so the spans
                    # recorded up to a failure survive the exception.
                    rs.tracer = Tracer()

                def _dump_trace(label: str) -> None:
                    if trace_dir is None or rs.tracer is None:
                        return
                    write_chrome_trace(
                        rs.tracer.trace(
                            plan=case, query=q, problem=problem,
                            source=source, outcome=label, sweep_seed=seed,
                        ),
                        trace_dir / f"plan{case:04d}-q{q}-{label}.json",
                    )

                try:
                    outcome = rs.run(problem, source)
                except ReproError as exc:
                    name = type(exc).__name__
                    report.typed_errors[name] = \
                        report.typed_errors.get(name, 0) + 1
                    _dump_trace(name)
                    continue
                except Exception as exc:  # noqa: BLE001 — the contract
                    report.failures.append(
                        f"{coords} query {q}: UNTYPED "
                        f"{type(exc).__name__}: {exc}"
                    )
                    _dump_trace("untyped")
                    continue
                diff = diff_labels(
                    oracle_labels(graph, problem, source),
                    outcome.labels, graph,
                )
                if diff is not None:
                    report.failures.append(
                        f"{coords} query {q} (source {source}, served from "
                        f"{outcome.final_placement}): WRONG LABELS: {diff}"
                    )
                    _dump_trace("wrong-labels")
                    continue
                report.ok_results += 1
                report.degraded += int(outcome.degraded)
                report.placements[outcome.final_placement] = \
                    report.placements.get(outcome.final_placement, 0) + 1
            if rs.injector is not None:
                fired_total = len(rs.injector.fired)
            report.faults_fired += fired_total

        case += 1
        if log is not None and case % 25 == 0:
            log(f"  ... {case} plans, {len(report.failures)} violations")

    report.elapsed_s = time.monotonic() - start
    return report


# ----------------------------------------------------------------------
# No-fault bit-identity (the other half of the contract)
# ----------------------------------------------------------------------

def result_digest(result) -> str:
    """Stable hash of a traversal result's observable output: the exact
    label bytes plus the simulated clock readings."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(result.labels).tobytes())
    h.update(
        f"{result.total_ms:.9f}/{result.kernel_ms:.9f}/"
        f"{result.transfer_ms:.9f}/{result.setup_ms:.9f}".encode()
    )
    return h.hexdigest()


def check_bit_identity(
    csr: CSRGraph,
    problems: tuple[str, ...],
    sources: tuple[int, ...],
    config: EtaGraphConfig | None = None,
) -> list[str]:
    """Serve the same query stream through a bare ``EngineSession``, a
    no-fault ``ResilientSession`` and a telemetry-on ``EngineSession``;
    return a description of every digest mismatch (empty =
    bit-identical, the required result).  The third leg gates the
    observability contract: spans must read the simulated clock, never
    advance it."""
    from dataclasses import replace

    config = config or EtaGraphConfig()
    traced_config = replace(config, telemetry=True)
    mismatches = []
    with EngineSession(csr, config) as plain, \
            ResilientSession(csr, config) as resilient, \
            EngineSession(csr, traced_config) as traced:
        for problem in problems:
            for source in sources:
                expected = result_digest(plain.query(problem, source))
                outcome = resilient.run(problem, source)
                actual = result_digest(outcome.result)
                if outcome.degraded or outcome.num_attempts != 1:
                    mismatches.append(
                        f"{problem}/src={source}: no-fault run was not "
                        f"nominal: {outcome!r}"
                    )
                elif expected != actual:
                    mismatches.append(
                        f"{problem}/src={source}: digest {actual} != "
                        f"plain-session digest {expected}"
                    )
                traced_result = traced.query(problem, source)
                traced_digest = result_digest(traced_result)
                if traced_result.trace is None or \
                        len(traced_result.trace) == 0:
                    mismatches.append(
                        f"{problem}/src={source}: telemetry-on run "
                        "recorded no trace"
                    )
                elif traced_digest != expected:
                    mismatches.append(
                        f"{problem}/src={source}: telemetry-on digest "
                        f"{traced_digest} != telemetry-off digest {expected}"
                    )
    return mismatches
