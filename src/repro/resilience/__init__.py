"""Fault injection and graceful degradation (``repro.resilience``).

The serving-hardening layer: a deterministic, seeded fault-injection
plane over the simulated GPU (:mod:`repro.resilience.faults`), a
retry/degrade wrapper around engine sessions
(:mod:`repro.resilience.session`) and a chaos-mode differential fuzzer
(:mod:`repro.resilience.chaos`) that proves the combination never
produces a wrong answer or an untyped exception.  See
``docs/resilience.md`` for the tour.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    STALL_WATCHDOG_MS,
)
from repro.resilience.session import (
    LADDER,
    Attempt,
    ResilientSession,
    RetryPolicy,
    RunOutcome,
)

__all__ = [
    "FAULT_KINDS",
    "STALL_WATCHDOG_MS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LADDER",
    "Attempt",
    "ResilientSession",
    "RetryPolicy",
    "RunOutcome",
]
