"""Resilience CLI: chaos sweeps and the no-fault bit-identity gate.

Usage::

    python -m repro.resilience chaos --plans 200 --seed 7
    python -m repro.resilience chaos --duration 30        # time budget
    python -m repro.resilience identity                   # canonical graphs
    python -m repro.resilience identity --graphs slashdot --sources 0 42

``identity`` serves the same query stream through a bare
:class:`~repro.core.session.EngineSession` and a no-fault
:class:`~repro.resilience.ResilientSession` and compares output hashes
(labels + simulated clocks); any divergence is a bug in the wrapper.
Exit status 0 when the contract holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys


def _chaos(argv: list[str]) -> int:
    from repro.resilience.chaos import run_chaos

    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience chaos",
        description="Differential fuzzing under random seeded fault plans.",
    )
    parser.add_argument("--plans", type=int, default=None,
                        help="number of fault plans (default 200 unless "
                             "--duration is given)")
    parser.add_argument("--duration", type=float, default=None,
                        help="time budget in seconds instead of a plan count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--queries-per-plan", type=int, default=2)
    parser.add_argument("--trace-dir", default=None,
                        help="write a Chrome trace for every query that "
                             "ended in a typed error or a violation")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)
    log = None if args.quiet else (lambda msg: print(msg, flush=True))
    report = run_chaos(
        max_plans=args.plans,
        max_seconds=args.duration,
        seed=args.seed,
        queries_per_plan=args.queries_per_plan,
        log=log,
        trace_dir=args.trace_dir,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _identity(argv: list[str]) -> int:
    from repro.core.config import EtaGraphConfig, MemoryMode
    from repro.graph import datasets
    from repro.resilience.chaos import check_bit_identity

    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience identity",
        description="No-fault bit-identity: ResilientSession output hashes "
                    "must equal EngineSession's on the canonical graphs.",
    )
    parser.add_argument("--graphs", nargs="+", default=["slashdot"],
                        help="dataset names (default: slashdot)")
    parser.add_argument("--problems", nargs="+",
                        default=["bfs", "sssp", "cc"])
    parser.add_argument("--sources", nargs="+", type=int, default=None,
                        help="query sources (default: the dataset's query "
                             "source plus vertex 0)")
    args = parser.parse_args(argv)

    failures: list[str] = []
    checks = 0
    for name in args.graphs:
        weighted = any(p in ("sssp", "sswp") for p in args.problems)
        csr, query_source = datasets.load(name, weighted=weighted)
        sources = tuple(args.sources) if args.sources else \
            (0, int(query_source))
        for mode in (MemoryMode.UM_PREFETCH, MemoryMode.DEVICE):
            config = EtaGraphConfig(memory_mode=mode)
            mismatches = check_bit_identity(
                csr, tuple(args.problems), sources, config,
            )
            checks += len(args.problems) * len(sources)
            failures += [f"{name}/{mode.value}: {m}" for m in mismatches]
    if failures:
        print(f"{len(failures)} bit-identity violations:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"bit-identity holds: {checks} query pairs on "
        f"{'/'.join(args.graphs)} hash-identical across "
        "EngineSession and ResilientSession"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["chaos"]:
        return _chaos(argv[1:])
    if argv[:1] == ["identity"]:
        return _identity(argv[1:])
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
