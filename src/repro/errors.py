"""Exception taxonomy for the EtaGraph reproduction.

Every failure mode that the paper's evaluation observes (most notably the
``O.O.M`` entries of Table III) is surfaced as a typed exception so that the
benchmark harness can report it the same way the paper does, and so that
the resilience layer (:mod:`repro.resilience`) can tell retryable faults
from fatal ones.  The contract enforced by chaos-mode fuzzing is that a
query either returns a *correct* result or raises one of these types —
never a wrong answer, never a bare traceback.

Taxonomy:

======================== ============================ =======================
exception                parent                       meaning
======================== ============================ =======================
``ReproError``           ``Exception``                base of everything
``GraphFormatError``     ``ReproError``               malformed graph input
``DatasetError``         ``ReproError``               surrogate dataset bad
``ConfigError``          ``ReproError``               invalid configuration
``ConvergenceError``     ``ReproError``               iteration budget blown
``DeadlineExceededError``  ``ReproError``             per-query wall/iteration
                                                      budget exhausted
``QuotaExceededError``   ``ReproError``               serving admission bound
                                                      (tenant quota / pool) hit
``InvariantViolation``   ``ReproError``               structural invariant broken
``DeviceError``          ``ReproError``               base of simulated-GPU errors
``DeviceOutOfMemoryError`` ``DeviceError``            ``cudaMalloc`` exhaustion
``InvalidLaunchError``   ``DeviceError``              malformed kernel launch
``SessionClosedError``   ``InvalidLaunchError``       use of a closed session
``AllocationError``      ``DeviceError``              freed/foreign allocation
``DataCorruptionError``  ``DeviceError``              detected (ECC-style)
                                                      data corruption
``TransientDeviceError`` ``DeviceError``              base of retryable faults
``TransferError``        ``TransientDeviceError``     failed PCIe copy
``MigrationStallError``  ``TransientDeviceError``     hung UM migration
======================== ============================ =======================
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphFormatError(ReproError):
    """Raised when graph input data is malformed (bad CSR, negative ids, ...)."""


class DatasetError(ReproError):
    """Raised when a surrogate dataset cannot be produced or validated."""


class DeviceError(ReproError):
    """Base class for simulated-GPU errors."""


class DeviceOutOfMemoryError(DeviceError):
    """Simulated analogue of ``cudaErrorMemoryAllocation``.

    Raised by :class:`repro.gpu.memory.DeviceMemory` when a non-UM allocation
    would exceed device capacity.  The benchmark runner converts this into the
    ``O.O.M`` cells of Table III.
    """

    def __init__(self, requested: int, in_use: int, capacity: int):
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        super().__init__(
            f"device OOM: requested {requested} B with {in_use} B in use "
            f"of {capacity} B capacity"
        )


class InvalidLaunchError(DeviceError):
    """Raised for malformed kernel launches (zero threads, oversized block...)."""


class SessionClosedError(InvalidLaunchError):
    """Raised when a query or preparation hits an already-closed
    :class:`~repro.core.session.EngineSession` — the session's device
    allocations have been released, so no further launches are possible."""


class AllocationError(DeviceError):
    """Raised when using a freed or foreign allocation handle."""


class DataCorruptionError(DeviceError):
    """Detected (ECC-style) corruption of device-resident data.

    The simulated analogue of ``cudaErrorECCUncorrectable``: the hardware
    *detected* the corruption before the result could be consumed, so the
    query aborts with this typed error rather than returning wrong labels.
    Raised by the fault injector's label bit-flip fault; the query can be
    retried from fresh labels.
    """


class TransientDeviceError(DeviceError):
    """Base class for retryable device faults.

    A :class:`~repro.resilience.ResilientSession` retries these with
    backoff before descending its degradation ladder; anything else is
    treated as permanent for the current placement.
    """


class TransferError(TransientDeviceError):
    """A host<->device PCIe copy failed in flight (transient)."""


class MigrationStallError(TransientDeviceError):
    """A UM page migration stalled past the driver watchdog (transient)."""


class ConfigError(ReproError):
    """Raised for invalid framework configuration (e.g. K < 1)."""


class ConvergenceError(ReproError):
    """Raised when a traversal fails to converge within its iteration budget."""


class DeadlineExceededError(ReproError):
    """Raised when a query exhausts its per-query wall-clock or iteration
    budget (:class:`repro.resilience.RetryPolicy`) before completing, or
    when the serving layer (:mod:`repro.serving`) finds a request's
    simulated deadline already expired before any work starts."""


class QuotaExceededError(ReproError):
    """Raised by the serving admission queue (:mod:`repro.serving`) when
    accepting a request would exceed a capacity bound: the tenant's
    pending-request quota, the service-wide queue bound, or an exhausted
    worker pool.  The request was rejected before any work started, so
    the caller can safely retry later or against another replica."""


class InvariantViolation(ReproError):
    """Raised by :mod:`repro.testing.invariants` when a structural invariant
    of a traversal run is broken (UDC slices not partitioning an adjacency,
    overlapping timeline intervals, inconsistent cache counters, ...).

    Also raised from the engine's hot path when
    :attr:`repro.core.config.EtaGraphConfig.check_invariants` is enabled.
    """
