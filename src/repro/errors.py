"""Exception taxonomy for the EtaGraph reproduction.

Every failure mode that the paper's evaluation observes (most notably the
``O.O.M`` entries of Table III) is surfaced as a typed exception so that the
benchmark harness can report it the same way the paper does.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphFormatError(ReproError):
    """Raised when graph input data is malformed (bad CSR, negative ids, ...)."""


class DatasetError(ReproError):
    """Raised when a surrogate dataset cannot be produced or validated."""


class DeviceError(ReproError):
    """Base class for simulated-GPU errors."""


class DeviceOutOfMemoryError(DeviceError):
    """Simulated analogue of ``cudaErrorMemoryAllocation``.

    Raised by :class:`repro.gpu.memory.DeviceMemory` when a non-UM allocation
    would exceed device capacity.  The benchmark runner converts this into the
    ``O.O.M`` cells of Table III.
    """

    def __init__(self, requested: int, in_use: int, capacity: int):
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        super().__init__(
            f"device OOM: requested {requested} B with {in_use} B in use "
            f"of {capacity} B capacity"
        )


class InvalidLaunchError(DeviceError):
    """Raised for malformed kernel launches (zero threads, oversized block...)."""


class AllocationError(DeviceError):
    """Raised when using a freed or foreign allocation handle."""


class ConfigError(ReproError):
    """Raised for invalid framework configuration (e.g. K < 1)."""


class ConvergenceError(ReproError):
    """Raised when a traversal fails to converge within its iteration budget."""


class InvariantViolation(ReproError):
    """Raised by :mod:`repro.testing.invariants` when a structural invariant
    of a traversal run is broken (UDC slices not partitioning an adjacency,
    overlapping timeline intervals, inconsistent cache counters, ...).

    Also raised from the engine's hot path when
    :attr:`repro.core.config.EtaGraphConfig.check_invariants` is enabled.
    """
