"""Framework interface and the shared label-propagation step.

A framework takes (graph, problem, source) and returns labels plus the
timing split the paper reports for baselines — ``t_kernel / t_total``.
OOM is not handled here: frameworks allocate through
:class:`~repro.gpu.memory.DeviceMemory` and let
:class:`~repro.errors.DeviceOutOfMemoryError` propagate; the benchmark
runner renders it as the ``O.O.M`` cells of Table III.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import TraversalProblem, get_problem
from repro.errors import ConfigError, ConvergenceError
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.profiler import Profiler
from repro.graph.csr import CSRGraph

#: Iteration safety net shared by all baseline loops.
MAX_ITERATIONS = 100_000


@dataclass
class FrameworkResult:
    """Outcome of one baseline traversal."""

    labels: np.ndarray
    source: int
    problem_name: str
    framework: str
    kernel_ms: float
    total_ms: float  # kernel + H2D transfer (the paper's t_total)
    iterations: int
    profiler: Profiler
    device_bytes: int = 0
    extras: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"FrameworkResult({self.framework}/{self.problem_name}, "
            f"kernel={self.kernel_ms:.3f} ms, total={self.total_ms:.3f} ms)"
        )


class Framework(ABC):
    """A GPU graph-processing framework under comparison."""

    name: str = "?"

    def __init__(self, device: DeviceSpec = GTX_1080TI):
        self.device = device

    @abstractmethod
    def run(
        self, csr: CSRGraph, problem: TraversalProblem | str, source: int
    ) -> FrameworkResult:
        """Execute one traversal; may raise DeviceOutOfMemoryError."""

    def _resolve(self, csr: CSRGraph, problem, source: int) -> TraversalProblem:
        if isinstance(problem, str):
            problem = get_problem(problem)
        problem.check_graph(csr)
        if not 0 <= source < csr.num_vertices:
            raise ConfigError(f"source {source} out of range")
        return problem


def propagate_step(
    csr: CSRGraph,
    labels: np.ndarray,
    active: np.ndarray,
    problem: TraversalProblem,
) -> tuple[np.ndarray, int, np.ndarray, int]:
    """One synchronous frontier relaxation, shared by all engines.

    Pushes candidates along every out-edge of ``active`` and atomically
    reduces them into ``labels`` (in place).

    Returns ``(changed_vertices, attempted_updates, neighbor_ids,
    edges_scanned)``.
    """
    from repro.utils.ragged import ragged_gather_indices

    offsets = csr.row_offsets
    starts = offsets[active].astype(np.int64)
    degs = offsets[active + 1].astype(np.int64) - starts
    edge_idx = ragged_gather_indices(starts, degs)
    if len(edge_idx) == 0:
        return np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=np.int64), 0
    nbr = csr.column_indices[edge_idx].astype(np.int64)
    src_per_edge = np.repeat(labels[active], degs)
    w = csr.edge_weights[edge_idx] if csr.edge_weights is not None else None
    cand = problem.candidates(src_per_edge, w)
    attempted = int(problem.improves(cand, labels[nbr]).sum())
    dests = np.unique(nbr)
    before = labels[dests].copy()
    problem.scatter_reduce(labels, nbr, cand)
    changed = dests[labels[dests] != before]
    return changed, attempted, nbr, len(edge_idx)


def check_iteration_budget(iteration: int, framework: str) -> None:
    if iteration >= MAX_ITERATIONS:
        raise ConvergenceError(
            f"{framework} exceeded {MAX_ITERATIONS} iterations"
        )


def get_framework(name: str, device: DeviceSpec = GTX_1080TI) -> Framework:
    """Instantiate a baseline (or EtaGraph wrapper) by table name."""
    from repro.baselines.cpu_ligra import LigraLikeCPU
    from repro.baselines.cusha import CuShaFramework
    from repro.baselines.gts import GTSFramework
    from repro.baselines.gunrock import GunrockFramework
    from repro.baselines.tigr import TigrFramework
    from repro.baselines.simple_vc import SimpleVertexCentric

    registry = {
        "cusha": CuShaFramework,
        "gunrock": GunrockFramework,
        "tigr": TigrFramework,
        "simple-vc": SimpleVertexCentric,
        "gts": GTSFramework,
        "cpu-ligra": LigraLikeCPU,
    }
    try:
        return registry[name.lower()](device)
    except KeyError:
        raise ConfigError(
            f"unknown framework {name!r}; known: {sorted(registry)}"
        ) from None
