"""GTS-style fixed-chunk streaming baseline (SIGMOD'16).

Section I of the paper singles this design out: systems like GTS and
Graphie overlap transfer with compute by streaming the topology in
**fixed-size chunks** over CUDA streams — but "they need to transfer
intact data chunks regardless of how much data are actually needed",
wasting PCIe bandwidth whenever a chunk is only partially active.
EtaGraph's page-granular on-demand migration is the fix the paper builds.

This baseline makes that comparison executable: vertex labels stay
resident; the adjacency array is partitioned into fixed chunks; each
iteration streams every chunk that contains *any* active vertex's edges
(double-buffered, so transfer overlaps the previous chunk's kernel) and
runs the frontier kernel on the edges that are actually active.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Framework,
    FrameworkResult,
    check_iteration_budget,
    propagate_step,
)
from repro.errors import ConfigError
from repro.gpu.cache import CacheHierarchy
from repro.gpu.kernel import simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import h2d_copy
from repro.graph.csr import CSRGraph, VERTEX_DTYPE
from repro.utils.units import MIB


class GTSFramework(Framework):
    """Chunked streaming-topology engine."""

    name = "gts"

    def __init__(self, device=None, chunk_bytes: int = 2 * MIB):
        from repro.gpu.device import GTX_1080TI

        super().__init__(device or GTX_1080TI)
        if chunk_bytes < 4096:
            raise ConfigError(f"chunk_bytes too small: {chunk_bytes}")
        self.chunk_bytes = int(chunk_bytes)

    def run(self, csr: CSRGraph, problem, source: int) -> FrameworkResult:
        problem = self._resolve(csr, problem, source)
        spec = self.device
        mem = DeviceMemory(spec)
        caches = CacheHierarchy(spec)
        prof = Profiler()

        # Resident state: labels + offsets + two chunk buffers (the
        # double-buffering that enables overlap).
        offsets_arr = mem.alloc("row_offsets", csr.row_offsets)
        labels_host = problem.initial_labels(csr.num_vertices, source)
        labels_arr = mem.alloc("labels", labels_host.copy())
        chunk_words = self.chunk_bytes // 4
        buf_a = mem.alloc_empty("chunk_buffer_a", chunk_words, VERTEX_DTYPE)
        mem.alloc_empty("chunk_buffer_b", chunk_words, VERTEX_DTYPE)
        labels = labels_arr.data

        transfer_ms = h2d_copy(spec, prof, offsets_arr.nbytes)
        transfer_ms += h2d_copy(spec, prof, labels_arr.nbytes)

        offsets = csr.row_offsets
        weight_mult = 2 if csr.edge_weights is not None else 1
        n_chunks = -(-csr.num_edges * 4 * weight_mult // self.chunk_bytes)

        kernel_ms = 0.0
        streamed_bytes = 0.0
        iterations = 0
        active = problem.initial_frontier(csr.num_vertices, source)
        while len(active):
            check_iteration_budget(iterations, self.name)
            starts = offsets[active].astype(np.int64)
            degs = offsets[active + 1].astype(np.int64) - starts
            changed, attempted, nbr, edges = propagate_step(
                csr, labels, active, problem
            )

            # Which fixed chunks intersect the active adjacency ranges?
            # Whole chunks are transferred even when barely touched —
            # the waste the paper's Section I calls out.
            if edges:
                first = starts * 4 * weight_mult // self.chunk_bytes
                last = ((starts + degs) * 4 * weight_mult - 1) \
                    // self.chunk_bytes
                # Exact count of chunks covered by any active range, via
                # a difference array over chunk ids (vectorized sweep).
                cover = np.zeros(n_chunks + 1, dtype=np.int64)
                np.add.at(cover, np.minimum(first, n_chunks), 1)
                np.add.at(cover, np.minimum(last + 1, n_chunks), -1)
                touched_chunks = int((np.cumsum(cover[:-1]) > 0).sum())
                chunk_transfer = sum(
                    h2d_copy(spec, prof, self.chunk_bytes, pinned=True)
                    for _ in range(min(touched_chunks, 64))
                )
                if touched_chunks > 64:
                    chunk_transfer *= touched_chunks / 64
                streamed_bytes += touched_chunks * self.chunk_bytes

                kernel = simulate_vertex_kernel(
                    spec, caches,
                    starts=starts % chunk_words,  # edges live in the buffer
                    degrees=degs,
                    adj_array=buf_a,
                    neighbor_ids=nbr,
                    label_array=labels_arr,
                    meta_array=offsets_arr,
                    meta_words_per_thread=2,
                    updates=attempted,
                    instr_per_edge=problem.instr_per_edge,
                )
                prof.record_kernel(kernel.counters)
                # Double buffering: the slower pipeline governs, plus a
                # ramp chunk that cannot be hidden.
                ramp = chunk_transfer / max(touched_chunks, 1)
                iter_kernel = max(kernel.time_ms, chunk_transfer) + ramp
                kernel_ms += kernel.time_ms
                transfer_ms += max(0.0, iter_kernel - kernel.time_ms)

            active = changed
            iterations += 1

        return FrameworkResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            framework=self.name,
            kernel_ms=kernel_ms,
            total_ms=kernel_ms + transfer_ms,
            iterations=iterations,
            profiler=prof,
            device_bytes=mem.device_bytes_in_use,
            extras={
                "chunk_bytes": self.chunk_bytes,
                "streamed_bytes": streamed_bytes,
                "n_chunks": n_chunks,
            },
        )
