"""Gunrock baseline: frontier advance + filter (PPoPP'16).

Execution model reproduced here:

* Data-centric frontier abstraction: each iteration runs an **advance**
  kernel (expand the vertex frontier along out-edges, merge-based load
  balancing across per-thread / per-warp / per-CTA strategies) and a
  **filter** kernel (compact the generated edge frontier into the next
  vertex frontier) — two launches plus a scan per iteration, which is the
  per-iteration overhead EtaGraph's single fused kernel avoids.
* Load balancing is good (``balanced_issue``), but neighbor gathers stay
  uncoalesced and there is no shared-memory prefetch.
* Problem data allocates CSR plus per-edge values plus two frontier
  queues sized at a fraction of |E| (Gunrock's queue-sizing factor) —
  the footprint that drives its O.O.M on sk-2005/uk-2006 in Table III.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.baselines.base import (
    Framework,
    FrameworkResult,
    check_iteration_budget,
    propagate_step,
)
from repro.gpu.cache import CacheHierarchy
from repro.gpu.kernel import simulate_streaming_kernel, simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import h2d_copy
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


#: Gunrock's workload-mapping strategies for the advance kernel
#: (Section VII-B: per-thread fine-grained, per-warp and per-CTA
#: coarse-grained; the enactor picks dynamically by frontier shape).
MAPPINGS = ("thread", "warp", "cta", "dynamic")


class GunrockFramework(Framework):
    """Frontier-based advance/filter engine."""

    name = "gunrock"

    #: Gunrock sizes its ping-pong frontier queues as a fraction of |E|
    #: (the enactor's queue-sizing factor).  0.33 reproduces the paper's
    #: Table III footprint boundary: SSSP fits RMAT25/uk-2005, everything
    #: dies at sk-2005.
    QUEUE_SIZING = 0.33

    #: Frontier max-degree above which the dynamic policy switches from
    #: per-thread to the coarse-grained (balanced) mappings.
    DYNAMIC_DEGREE_THRESHOLD = 128

    def __init__(self, device=None, mapping: str = "dynamic"):
        from repro.gpu.device import GTX_1080TI

        super().__init__(device or GTX_1080TI)
        if mapping not in MAPPINGS:
            raise ConfigError(
                f"unknown Gunrock mapping {mapping!r}; known: {MAPPINGS}"
            )
        self.mapping = mapping

    def _advance_params(self, max_degree: int) -> tuple[bool, float]:
        """(balanced_issue, extra instructions/edge) for the advance kernel.

        Per-thread mapping is cheap but lockstep-bound; warp/CTA mappings
        balance via cooperative expansion at a per-edge bookkeeping cost.
        """
        mapping = self.mapping
        if mapping == "dynamic":
            mapping = ("cta" if max_degree > self.DYNAMIC_DEGREE_THRESHOLD
                       else "thread")
        if mapping == "thread":
            return False, 0.5
        if mapping == "warp":
            return True, 2.0
        return True, 3.0  # cta: scan + binary search per edge

    def run(self, csr: CSRGraph, problem, source: int) -> FrameworkResult:
        problem = self._resolve(csr, problem, source)
        spec = self.device
        mem = DeviceMemory(spec)
        caches = CacheHierarchy(spec)
        prof = Profiler()

        # Problem + enactor allocations (cudaMalloc; OOM emerges here).
        offsets_arr = mem.alloc("row_offsets", csr.row_offsets)
        cols_arr = mem.alloc("column_indices", csr.column_indices)
        weights_arr = None
        if csr.edge_weights is not None:
            weights_arr = mem.alloc("edge_weights", csr.edge_weights)
        queue_len = max(int(self.QUEUE_SIZING * csr.num_edges), csr.num_vertices)
        mem.alloc_empty("frontier_queue_a", queue_len, VERTEX_DTYPE)
        mem.alloc_empty("frontier_queue_b", queue_len, VERTEX_DTYPE)
        labels_host = problem.initial_labels(csr.num_vertices, source)
        labels_arr = mem.alloc("labels", labels_host.copy())
        mem.alloc_empty("preds", max(csr.num_vertices, 1), VERTEX_DTYPE)
        mem.alloc_empty("visited_flags", max(csr.num_vertices, 1), np.uint8)
        labels = labels_arr.data

        transfer_ms = 0.0
        for arr in (offsets_arr, cols_arr, weights_arr, labels_arr):
            if arr is not None:
                transfer_ms += h2d_copy(spec, prof, arr.nbytes)

        offsets = csr.row_offsets
        kernel_ms = 0.0
        iterations = 0
        active = problem.initial_frontier(csr.num_vertices, source)
        while len(active):
            check_iteration_budget(iterations, self.name)
            starts = offsets[active].astype(np.int64)
            degs = offsets[active + 1].astype(np.int64) - starts
            changed, attempted, nbr, edges = propagate_step(
                csr, labels, active, problem
            )

            if edges:
                # Advance under the selected workload mapping, no SMP.
                balanced, lb_cost = self._advance_params(int(degs.max()))
                advance = simulate_vertex_kernel(
                    spec, caches,
                    starts=starts,
                    degrees=degs,
                    adj_array=cols_arr,
                    neighbor_ids=nbr,
                    label_array=labels_arr,
                    weight_array=weights_arr,
                    meta_array=offsets_arr,
                    meta_words_per_thread=2,  # row_offsets[v], row_offsets[v+1]
                    balanced_issue=balanced,
                    updates=attempted,
                    instr_per_edge=problem.instr_per_edge + lb_cost,
                )
                prof.record_kernel(advance.counters)
                kernel_ms += advance.time_ms

            # Filter: stream the generated edge frontier, scan + compact
            # into the next vertex frontier.
            filter_k = simulate_streaming_kernel(
                spec, caches,
                read_bytes=max(edges, 1) * 4,
                write_bytes=len(changed) * 4,
                n_threads=max(edges, 1),
                instr_per_thread=10.0,
            )
            prof.record_kernel(filter_k.counters)
            kernel_ms += filter_k.time_ms

            active = changed
            iterations += 1

        return FrameworkResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            framework=self.name,
            kernel_ms=kernel_ms,
            total_ms=kernel_ms + transfer_ms,
            iterations=iterations,
            profiler=prof,
            device_bytes=mem.device_bytes_in_use,
        )
