"""Baseline GPU graph frameworks re-implemented on the simulated GPU.

Each baseline reproduces the *execution model* the paper compares against
(Section VI-B): CuSha's G-Shards edge-centric processing, Gunrock's
advance+filter frontier, Tigr's preprocessed virtual-split vertex-centric
kernel, plus the naive vertex-centric mapping of Harish & Narayanan as a
motivation baseline.  All share the exact label-propagation semantics, so
their results are bit-identical to EtaGraph's; only the cost model — data
structures, transfers, kernel shapes — differs, which is precisely what
Table III measures.
"""

from repro.baselines.base import Framework, FrameworkResult, get_framework
from repro.baselines.cusha import CuShaFramework
from repro.baselines.gts import GTSFramework
from repro.baselines.gunrock import GunrockFramework
from repro.baselines.tigr import TigrFramework
from repro.baselines.simple_vc import SimpleVertexCentric

__all__ = [
    "Framework",
    "FrameworkResult",
    "get_framework",
    "CuShaFramework",
    "GTSFramework",
    "GunrockFramework",
    "TigrFramework",
    "SimpleVertexCentric",
]
