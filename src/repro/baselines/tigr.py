"""Tigr baseline: preprocessed Virtual Split Transformation (ASPLOS'18).

Execution model reproduced here:

* **Out-of-core preprocessing**: the graph is rewritten at load time into
  the VST layout (``|E| + 2|N| + 2|V|`` words, Table I) — the extra
  arrays are transferred to the device along with the adjacency, which is
  both the space and the transfer-time overhead UDC avoids.
* **Vertex-parallel kernel over all virtual nodes**: every iteration
  launches one thread per virtual node; threads whose owner is inactive
  check a flag and exit (the ``idle_threads`` cost), active ones scan
  their <= K_t edges.  Degrees are bounded, so warps are balanced — but
  there is no frontier compaction, so launch width never shrinks, which
  is what the paper's uk-2005 case (200 iterations) punishes.
* No shared-memory prefetch.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Framework,
    FrameworkResult,
    check_iteration_budget,
    propagate_step,
)
from repro.gpu.cache import CacheHierarchy
from repro.gpu.kernel import simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import h2d_copy
from repro.graph.csr import CSRGraph
from repro.graph.vst import VirtualSplitGraph
from repro.utils.ragged import ragged_arange


class TigrFramework(Framework):
    """Virtual-split vertex-centric engine."""

    name = "tigr"

    #: Tigr's virtual-node degree bound (the paper's Table I uses K=10
    #: for the |N| accounting; we keep the same value).
    DEGREE_BOUND = 10

    def run(self, csr: CSRGraph, problem, source: int) -> FrameworkResult:
        problem = self._resolve(csr, problem, source)
        spec = self.device
        mem = DeviceMemory(spec)
        caches = CacheHierarchy(spec)
        prof = Profiler()

        vst = VirtualSplitGraph(csr, self.DEGREE_BOUND)
        device_arrays = [
            mem.alloc(name, arr) for name, arr in vst.device_arrays().items()
        ]
        labels_host = problem.initial_labels(csr.num_vertices, source)
        labels_arr = mem.alloc("labels", labels_host.copy())
        active_flags_arr = mem.alloc_full(
            "active_flags", max(csr.num_vertices, 1), 0, np.uint8
        )
        labels = labels_arr.data
        cols_arr = device_arrays[0]  # vst_column_indices
        weights_arr = None
        if csr.edge_weights is not None:
            weights_arr = next(
                a for a in device_arrays if a.name == "vst_edge_weights"
            )

        transfer_ms = 0.0
        for arr in device_arrays + [labels_arr, active_flags_arr]:
            transfer_ms += h2d_copy(spec, prof, arr.nbytes)

        v_starts = vst.virtual_start.astype(np.int64)
        v_degrees = (vst.virtual_ends().astype(np.int64) - v_starts)
        first_virtual = vst.real_first_virtual.astype(np.int64)
        virtual_counts = vst.real_virtual_count.astype(np.int64)

        kernel_ms = 0.0
        iterations = 0
        active = problem.initial_frontier(csr.num_vertices, source)
        while len(active):
            check_iteration_budget(iterations, self.name)
            # Virtual nodes of the active owners.
            counts = virtual_counts[active]
            act_virtual = np.repeat(first_virtual[active], counts) + \
                ragged_arange(counts)
            changed, attempted, nbr, edges = propagate_step(
                csr, labels, active, problem
            )

            n_idle = vst.num_virtual - len(act_virtual)
            if len(act_virtual):
                timing = simulate_vertex_kernel(
                    spec, caches,
                    starts=v_starts[act_virtual],
                    degrees=v_degrees[act_virtual],
                    adj_array=cols_arr,
                    neighbor_ids=nbr,
                    label_array=labels_arr,
                    weight_array=weights_arr,
                    meta_array=device_arrays[1],  # vst_virtual_start
                    meta_words_per_thread=2,  # start + owner
                    updates=attempted,
                    idle_threads=n_idle,
                    instr_per_edge=problem.instr_per_edge,
                )
                prof.record_kernel(timing.counters)
                kernel_ms += timing.time_ms

            active = changed
            iterations += 1

        return FrameworkResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            framework=self.name,
            kernel_ms=kernel_ms,
            total_ms=kernel_ms + transfer_ms,
            iterations=iterations,
            profiler=prof,
            device_bytes=mem.device_bytes_in_use,
            extras={"num_virtual": vst.num_virtual},
        )
