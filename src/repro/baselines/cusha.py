"""CuSha baseline: G-Shards edge-centric processing (HPDC'14).

Execution model reproduced here:

* Graph is stored as G-Shards: per destination-window shards of
  ``(src, dst, src_value, edge_value)`` entries sorted by source — about
  four words per edge plus in/out vertex-value arrays, all ``cudaMalloc``'d
  (this is why CuSha is the first framework to hit O.O.M in Table III).
* Every iteration processes **all** shard entries (CuSha has no frontier):
  one thread block per shard streams its entries — fully coalesced reads,
  windowed shared-memory accumulation, coalesced write-back of the window,
  then a streaming refresh of the shard ``src_value`` slots through the
  Concatenated-Windows mapping.
* Cost per iteration is therefore ~|E| streamed words regardless of how
  few vertices are active — great on small-diameter graphs, increasingly
  wasteful as iteration counts grow.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Framework,
    FrameworkResult,
    check_iteration_budget,
    propagate_step,
)
from repro.errors import ConfigError
from repro.gpu.cache import CacheHierarchy
from repro.gpu.kernel import simulate_streaming_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import h2d_copy
from repro.graph.csr import CSRGraph
from repro.graph.gshard import GShards


#: CuSha's processing methods (Section VI-B: the paper runs all three and
#: reports the best).
METHODS = ("gs", "cw", "vwc")


class CuShaFramework(Framework):
    """Edge-centric G-Shards / Concatenated-Windows / VWC engine.

    ``method``:

    * ``"gs"`` — plain G-Shards: stream every shard entry each pass and
      refresh every src_value slot.
    * ``"cw"`` — Concatenated Windows: windows are concatenated so the
      value-refresh pass only rewrites slots of vertices that changed,
      trading an extra index array for less write-back traffic.
    * ``"vwc"`` — Virtual Warp-Centric: CuSha's re-implementation of the
      virtual-warp CSR kernel it compares against; vertex-centric over
      all vertices with sub-warp work division (less lockstep waste than
      a plain thread-per-vertex kernel, no shard streaming).  It keeps
      CuSha's per-edge value staging, so its footprint matches the shard
      methods.
    * ``"best"`` — run all three, report the fastest (the paper's setup).
    """

    name = "cusha"

    #: Instructions per shard entry (load 4 fields, compare, accumulate).
    INSTR_PER_EDGE = 14.0

    def __init__(self, device=None, method: str = "gs"):
        from repro.gpu.device import GTX_1080TI

        super().__init__(device or GTX_1080TI)
        if method not in METHODS + ("best",):
            raise ConfigError(
                f"unknown CuSha method {method!r}; known: {METHODS + ('best',)}"
            )
        self.method = method

    def run(self, csr: CSRGraph, problem, source: int) -> FrameworkResult:
        if self.method == "best":
            results = [self._run_method(csr, problem, source, m)
                       for m in METHODS]
            best = min(results, key=lambda r: r.total_ms)
            best.extras["method"] = best.extras["method"] + " (best of 3)"
            return best
        return self._run_method(csr, problem, source, self.method)

    def _run_method(
        self, csr: CSRGraph, problem, source: int, method: str
    ) -> FrameworkResult:
        problem = self._resolve(csr, problem, source)
        spec = self.device
        mem = DeviceMemory(spec)
        caches = CacheHierarchy(spec)
        prof = Profiler()

        shards = GShards.from_csr(csr)
        # Allocate CuSha's actual device structures; OOM emerges here.
        # All three methods stage per-edge values, so the footprint is
        # common (which is why the paper's O.O.M cells cover the whole
        # framework, not one method).
        device_arrays = [
            mem.alloc(name, arr) for name, arr in shards.device_arrays().items()
        ]
        if method == "cw":
            mem.alloc_empty("cw_index", max(shards.num_edges, 1), np.int32)
        labels_host = problem.initial_labels(csr.num_vertices, source)
        labels_arr = mem.alloc("vertex_values_in", labels_host.copy())
        mem.alloc_empty("vertex_values_out", max(csr.num_vertices, 1),
                        labels_host.dtype)
        labels = labels_arr.data

        # Upfront H2D of shards + initial values.
        transfer_ms = 0.0
        for arr in device_arrays + [labels_arr]:
            transfer_ms += h2d_copy(spec, prof, arr.nbytes)

        entry_words = 4 if csr.edge_weights is None else 5

        kernel_ms = 0.0
        iterations = 0
        all_vertices = np.arange(csr.num_vertices, dtype=np.int64)
        prev_changed = csr.num_vertices
        while True:
            check_iteration_budget(iterations, self.name)
            # Edge-centric: relax along *every* edge each pass.
            changed, _attempted, _nbr, _edges = propagate_step(
                csr, labels, all_vertices, problem
            )
            timing = self._pass_cost(
                spec, caches, csr, shards, method, entry_words, prev_changed
            )
            prof.record_kernel(timing.counters)
            kernel_ms += timing.time_ms
            prev_changed = len(changed)
            iterations += 1
            if len(changed) == 0:
                break

        return FrameworkResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            framework=self.name,
            kernel_ms=kernel_ms,
            total_ms=kernel_ms + transfer_ms,
            iterations=iterations,
            profiler=prof,
            device_bytes=mem.device_bytes_in_use,
            extras={"num_shards": shards.num_shards, "method": method},
        )

    def _pass_cost(self, spec, caches, csr, shards, method, entry_words,
                   prev_changed):
        """One full-graph pass under the given processing method."""
        if method == "vwc":
            # Virtual warp-centric: read CSR + staged values, sub-warp
            # division halves (not eliminates) lockstep waste; scattered
            # value gathers instead of streaming.
            return simulate_streaming_kernel(
                spec, caches,
                read_bytes=shards.num_edges * 2 * 4 + csr.num_vertices * 8,
                write_bytes=csr.num_vertices * 4,
                n_threads=max(shards.num_edges, 1),
                instr_per_thread=self.INSTR_PER_EDGE + 6.0,
                scatter_base_address=0,
                scatter_indices=csr.column_indices[
                    :: max(1, csr.num_edges // 100_000)
                ].astype(np.int64),
            )
        if method == "cw":
            # Concatenated windows: refresh only changed vertices' slots.
            refresh_frac = min(1.0, prev_changed / max(csr.num_vertices, 1))
            read_bytes = (shards.num_edges * entry_words * 4
                          + csr.num_vertices * 4)
            write_bytes = (shards.num_edges * 4 * refresh_frac
                           + csr.num_vertices * 4)
            return simulate_streaming_kernel(
                spec, caches,
                read_bytes=read_bytes,
                write_bytes=write_bytes,
                n_threads=max(shards.num_edges, 1),
                instr_per_thread=self.INSTR_PER_EDGE + 1.0,
            )
        # Plain G-Shards.
        return simulate_streaming_kernel(
            spec, caches,
            read_bytes=shards.num_edges * entry_words * 4
            + csr.num_vertices * 4,
            write_bytes=shards.num_edges * 4 + csr.num_vertices * 4,
            n_threads=max(shards.num_edges, 1),
            instr_per_thread=self.INSTR_PER_EDGE,
        )
