"""Naive vertex-centric baseline (Harish & Narayanan, HiPC'07).

The motivation baseline of Section I: one thread per vertex over the
*entire* vertex set each iteration, no frontier, no degree bounding — so
warps stall on their highest-degree lane (the long-tail problem) and
inactive vertices still burn threads.  Used in examples and ablation
benches to show what UDC + the active set buy.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Framework,
    FrameworkResult,
    check_iteration_budget,
    propagate_step,
)
from repro.gpu.cache import CacheHierarchy
from repro.gpu.kernel import simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import h2d_copy
from repro.graph.csr import CSRGraph


class SimpleVertexCentric(Framework):
    """Thread-per-vertex, full-sweep, lockstep-limited engine."""

    name = "simple-vc"

    def run(self, csr: CSRGraph, problem, source: int) -> FrameworkResult:
        problem = self._resolve(csr, problem, source)
        spec = self.device
        mem = DeviceMemory(spec)
        caches = CacheHierarchy(spec)
        prof = Profiler()

        offsets_arr = mem.alloc("row_offsets", csr.row_offsets)
        cols_arr = mem.alloc("column_indices", csr.column_indices)
        weights_arr = None
        if csr.edge_weights is not None:
            weights_arr = mem.alloc("edge_weights", csr.edge_weights)
        labels_host = problem.initial_labels(csr.num_vertices, source)
        labels_arr = mem.alloc("labels", labels_host.copy())
        labels = labels_arr.data

        transfer_ms = 0.0
        for arr in (offsets_arr, cols_arr, weights_arr, labels_arr):
            if arr is not None:
                transfer_ms += h2d_copy(spec, prof, arr.nbytes)

        offsets = csr.row_offsets
        kernel_ms = 0.0
        iterations = 0
        active = problem.initial_frontier(csr.num_vertices, source)
        while len(active):
            check_iteration_budget(iterations, self.name)
            changed, attempted, nbr, edges = propagate_step(
                csr, labels, active, problem
            )
            # Cost: ALL vertices are launched; inactive ones read their
            # activity state and exit.  Active vertices scan their full
            # (unbounded) degree -> lockstep long tail.
            starts = offsets[active].astype(np.int64)
            degs = offsets[active + 1].astype(np.int64) - starts
            timing = simulate_vertex_kernel(
                spec, caches,
                starts=starts,
                degrees=degs,
                adj_array=cols_arr,
                neighbor_ids=nbr,
                label_array=labels_arr,
                weight_array=weights_arr,
                meta_array=offsets_arr,
                meta_words_per_thread=2,
                updates=attempted,
                idle_threads=csr.num_vertices - len(active),
                instr_per_edge=problem.instr_per_edge,
            )
            prof.record_kernel(timing.counters)
            kernel_ms += timing.time_ms
            active = changed
            iterations += 1

        return FrameworkResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            framework=self.name,
            kernel_ms=kernel_ms,
            total_ms=kernel_ms + transfer_ms,
            iterations=iterations,
            profiler=prof,
            device_bytes=mem.device_bytes_in_use,
        )
