"""Ligra-like shared-memory CPU baseline.

The paper's opening claim (Section I): "carefully designed GPU-based
frameworks can achieve comparable or even orders of magnitude better
performance than shared-memory or distributed systems, such as GraphLab
and Ligra."  This baseline makes that comparison executable: a
frontier-based multicore engine in the style of Ligra's ``edgeMap`` with
a cost model for the paper's actual host — a dual-socket, 12-core
(24-thread) Xeon E5-2620 with ~120 GB/s of aggregate DRAM bandwidth.

Cost model per iteration: the frontier's edges are processed in parallel
across cores; each edge performs a random label access (one cache line
from DRAM at the observed miss rate) plus a few instructions, and every
iteration pays a parallel-for fork/join barrier.  Roofline between the
instruction and memory terms, like the GPU model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import (
    Framework,
    FrameworkResult,
    check_iteration_budget,
    propagate_step,
)
from repro.gpu.profiler import Profiler
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class CPUSpec:
    """Host machine description (the paper's evaluation server)."""

    name: str = "2x Xeon E5-2620"
    num_cores: int = 12
    threads_per_core: int = 2
    clock_ghz: float = 2.5
    dram_bandwidth_gbps: float = 110.0
    cache_line_bytes: int = 64
    #: Effective DRAM miss rate of frontier label gathers (large working
    #: sets defeat the LLC, but not completely).
    label_miss_rate: float = 0.6
    #: Instructions per scanned edge (branchy scalar code).
    instr_per_edge: float = 14.0
    #: Fork/join barrier per parallel-for (OpenMP/Cilk-style).
    barrier_us: float = 4.0

    @property
    def hw_threads(self) -> int:
        return self.num_cores * self.threads_per_core

    @property
    def instr_throughput(self) -> float:
        """Aggregate scalar instructions per second (HT gives ~30%)."""
        return self.num_cores * 1.3 * self.clock_ghz * 1e9


XEON_E5_2620 = CPUSpec()


class LigraLikeCPU(Framework):
    """Frontier-based shared-memory engine (Ligra's edgeMap model)."""

    name = "cpu-ligra"

    def __init__(self, device=None, cpu: CPUSpec = XEON_E5_2620):
        from repro.gpu.device import GTX_1080TI

        # `device` is accepted for factory compatibility but unused: the
        # CPU baseline runs in host memory (that is its selling point —
        # no transfer, no capacity limit).
        super().__init__(device or GTX_1080TI)
        self.cpu = cpu

    def run(self, csr: CSRGraph, problem, source: int) -> FrameworkResult:
        problem = self._resolve(csr, problem, source)
        cpu = self.cpu
        prof = Profiler()

        labels = problem.initial_labels(csr.num_vertices, source)
        kernel_ms = 0.0
        iterations = 0
        active = problem.initial_frontier(csr.num_vertices, source)
        offsets = csr.row_offsets
        while len(active):
            check_iteration_budget(iterations, self.name)
            changed, attempted, _nbr, edges = propagate_step(
                csr, labels, active, problem
            )
            # Instruction term: edges over all hardware threads.
            instr_ms = edges * cpu.instr_per_edge / cpu.instr_throughput * 1e3
            # Memory term: adjacency streams sequentially (prefetched),
            # label gathers miss to DRAM at the modelled rate.
            adj_bytes = edges * 4 * (2 if csr.edge_weights is not None else 1)
            label_bytes = edges * cpu.label_miss_rate * cpu.cache_line_bytes
            mem_ms = (adj_bytes + label_bytes) / (
                cpu.dram_bandwidth_gbps * 1e9
            ) * 1e3
            kernel_ms += max(instr_ms, mem_ms) + cpu.barrier_us * 1e-3
            active = changed
            iterations += 1

        return FrameworkResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            framework=self.name,
            kernel_ms=kernel_ms,
            # No device transfer: the graph already lives in host memory.
            total_ms=kernel_ms,
            iterations=iterations,
            profiler=prof,
            device_bytes=0,
            extras={"cpu": cpu.name},
        )
