"""Delta + varint compressed CSR topology.

The paper's Table I treats every topology word as 4 bytes; WebGraph-style
codecs show real web/social adjacency needs far less.  This module is
the repo's compressed topology format — the bandwidth product shrinks
(GraphBLAST's framing), which is exactly what out-of-core placements
(:class:`~repro.core.config.MemoryMode` ``UM_ON_DEMAND`` /
``DIRECT_ACCESS`` / ``ZERO_COPY``) pay for per traversal.

Format (``payload`` + ``row_byte_offsets``, both device-placeable):

* Each vertex ``v``'s neighbor list is encoded in *original order* as a
  sequence of signed deltas: the first relative to ``v`` itself
  (``c_0 - v``), each subsequent relative to its predecessor
  (``c_i - c_{i-1}``).  CSR built by :func:`repro.graph.builder.
  build_csr_from_edges` keeps rows sorted ascending, so subsequent
  deltas are small non-negative gaps; the encoding never *requires*
  sortedness, which is what makes the round trip byte-for-byte exact on
  arbitrary input.
* Deltas are zigzag-mapped to unsigned (``z = (d << 1) ^ (d >> 63)``)
  and written as little-endian base-128 varints: 7 payload bits per
  byte, high bit set on every byte except the last.  A 32-bit vertex
  space needs at most 5 bytes per delta.
* ``row_byte_offsets`` (one entry per vertex + 1) replaces
  ``row_offsets``: byte offset of each row's first varint in
  ``payload``.  Varints never span rows, so the payload is
  self-describing given the row offsets — :meth:`decode` reconstructs
  edge boundaries purely from the continuation bits.

``edge_byte_offsets`` (the byte offset of every *edge's* varint) is a
derived host-side index, recomputable from the payload; it is not part
of the stored format and not counted in :attr:`topology_bits`.  The
engine uses it to map a frontier's shadow edge ranges to the exact
payload byte ranges a placement must move (:meth:`edge_byte_ranges`) —
the sector-granular accounting EMOGI-style direct access is built on.

Everything is vectorized; there is no per-edge Python loop anywhere.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE, WORD_BYTES

#: Upper bound on varint bytes per delta: zigzag of a 32-bit-range delta
#: fits 33 bits -> ceil(33 / 7) = 5 bytes.
_MAX_VARINT_BYTES = 5


def _zigzag(deltas: np.ndarray) -> np.ndarray:
    """Signed int64 deltas -> unsigned zigzag codes (as uint64)."""
    return ((deltas << 1) ^ (deltas >> 63)).astype(np.uint64)


def _unzigzag(codes: np.ndarray) -> np.ndarray:
    """Unsigned zigzag codes -> signed int64 deltas."""
    codes = codes.astype(np.uint64)
    return ((codes >> np.uint64(1)).astype(np.int64)
            ^ -(codes & np.uint64(1)).astype(np.int64))


def _varint_lengths(codes: np.ndarray) -> np.ndarray:
    """Encoded byte count of each zigzag code (vectorized)."""
    lengths = np.ones(len(codes), dtype=np.int64)
    for b in range(1, _MAX_VARINT_BYTES):
        lengths += (codes >= np.uint64(1) << np.uint64(7 * b)).astype(np.int64)
    return lengths


class CompressedCSRGraph:
    """A directed graph with delta + varint compressed topology.

    Behaves like :class:`~repro.graph.csr.CSRGraph` for every read
    (``neighbors``, ``out_degrees``, space accounting, ...), backed by a
    compressed byte payload.  Functional reads go through the cached
    dense :meth:`decode`; the compressed arrays are what a placement
    moves, and what the space/transfer accounting measures.
    """

    def __init__(self, csr: CSRGraph):
        if not isinstance(csr, CSRGraph):
            raise GraphFormatError(
                f"CompressedCSRGraph encodes a CSRGraph, got {type(csr).__name__}"
            )
        payload, row_byte_offsets, edge_byte_offsets = self._encode(csr)
        #: The compressed neighbor stream (uint8).
        self.payload = payload
        #: Byte offset of each row's first varint (|V| + 1 entries,
        #: uint32 unless the payload needs 64-bit offsets).
        self.row_byte_offsets = row_byte_offsets
        #: Derived host-side index: byte offset of each edge's varint
        #: (|E| + 1 entries, int64).  Not part of the stored format.
        self.edge_byte_offsets = edge_byte_offsets
        #: Dense weights ride along uncompressed (SSSP/SSWP need exact
        #: float32 values; they are not topology).
        self.edge_weights = csr.edge_weights
        for arr in (self.payload, self.row_byte_offsets,
                    self.edge_byte_offsets):
            arr.setflags(write=False)
        self._num_vertices = csr.num_vertices
        self._num_edges = csr.num_edges
        # Filled by the first decode() — never the input object, so every
        # functional read genuinely exercises the decoder (the round-trip
        # property is load-bearing, not decorative).
        self._dense: CSRGraph | None = None

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    @staticmethod
    def _encode(csr: CSRGraph):
        cols = csr.column_indices.astype(np.int64)
        offsets = csr.row_offsets.astype(np.int64)
        n = csr.num_vertices
        degrees = np.diff(offsets)
        if len(cols) == 0:
            payload = np.empty(0, dtype=np.uint8)
            row_byte_offsets = np.zeros(n + 1, dtype=np.uint32)
            edge_byte_offsets = np.zeros(1, dtype=np.int64)
            return payload, row_byte_offsets, edge_byte_offsets

        # prev[e]: the value edge e's delta is taken against — the owner
        # vertex for the first edge of a row, the previous column
        # otherwise.
        prev = np.empty_like(cols)
        prev[1:] = cols[:-1]
        nonempty = degrees > 0
        row_starts = offsets[:-1][nonempty]
        prev[row_starts] = np.arange(n, dtype=np.int64)[nonempty]
        deltas = cols - prev
        codes = _zigzag(deltas)
        lengths = _varint_lengths(codes)

        edge_byte_offsets = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(lengths, out=edge_byte_offsets[1:])
        total = int(edge_byte_offsets[-1])
        payload = np.zeros(total, dtype=np.uint8)
        starts = edge_byte_offsets[:-1]
        for b in range(_MAX_VARINT_BYTES):
            has_byte = lengths > b
            if not has_byte.any():
                break
            byte = (codes[has_byte] >> np.uint64(7 * b)) \
                & np.uint64(0x7F)
            cont = (lengths[has_byte] - 1 > b)
            payload[starts[has_byte] + b] = \
                byte.astype(np.uint8) | (cont.astype(np.uint8) << 7)

        row_byte = edge_byte_offsets[offsets]
        offset_dtype = np.uint32 if total < 2**32 else np.int64
        return payload, row_byte.astype(offset_dtype), edge_byte_offsets

    def decode(self) -> CSRGraph:
        """The exact dense CSR this graph encodes (cached).

        Reconstruction uses only the stored format — the payload's
        continuation bits delimit varints, ``row_byte_offsets`` delimits
        rows — so this is the proof the format is self-describing.
        """
        if self._dense is not None:
            return self._dense
        payload = self.payload
        n = self._num_vertices
        if len(payload) == 0:
            dense = CSRGraph(
                np.zeros(n + 1, dtype=OFFSET_DTYPE),
                np.empty(0, dtype=VERTEX_DTYPE),
                self.edge_weights,
                validate=False,
            )
            self._dense = dense
            return dense

        # Varint boundaries from continuation bits: a terminator byte has
        # the high bit clear.
        ends = np.flatnonzero(payload < 0x80) + 1
        starts = np.empty_like(ends)
        starts[0] = 0
        starts[1:] = ends[:-1]
        lengths = ends - starts
        codes = np.zeros(len(ends), dtype=np.uint64)
        for b in range(_MAX_VARINT_BYTES):
            has_byte = lengths > b
            if not has_byte.any():
                break
            codes[has_byte] |= (
                (payload[starts[has_byte] + b] & np.uint8(0x7F))
                .astype(np.uint64) << np.uint64(7 * b)
            )
        deltas = _unzigzag(codes)

        # Rows: varints never span a row boundary, so the number of edges
        # up to a row's byte offset is the number of terminators at or
        # before it.
        row_byte = self.row_byte_offsets.astype(np.int64)
        row_offsets = np.searchsorted(ends, row_byte, side="right")
        degrees = np.diff(row_offsets)
        owners = np.repeat(np.arange(n, dtype=np.int64), degrees)

        # Per-row prefix sums via one global cumsum: subtract each row's
        # incoming cumulative total from its elements.
        gsum = np.cumsum(deltas)
        before = np.zeros(len(deltas) + 1, dtype=np.int64)
        before[1:] = gsum
        cols = owners + gsum - np.repeat(before[row_offsets[:-1]], degrees)

        dense = CSRGraph(
            row_offsets.astype(OFFSET_DTYPE),
            cols.astype(VERTEX_DTYPE),
            self.edge_weights,
            validate=False,
        )
        self._dense = dense
        return dense

    # ------------------------------------------------------------------
    # CSRGraph read API (delegated to the dense decode)
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def is_weighted(self) -> bool:
        return self.edge_weights is not None

    @property
    def average_degree(self) -> float:
        if self._num_vertices == 0:
            return 0.0
        return self._num_edges / self._num_vertices

    def out_degrees(self) -> np.ndarray:
        return self.decode().out_degrees()

    def out_degree(self, v: int) -> int:
        return self.decode().out_degree(v)

    def max_out_degree(self) -> int:
        return self.decode().max_out_degree()

    def neighbors(self, v: int) -> np.ndarray:
        return self.decode().neighbors(v)

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.decode().neighbor_weights(v)

    def edge_sources(self) -> np.ndarray:
        return self.decode().edge_sources()

    def iter_edges(self):
        return self.decode().iter_edges()

    def to_scipy(self):
        return self.decode().to_scipy()

    @property
    def row_offsets(self) -> np.ndarray:
        return self.decode().row_offsets

    @property
    def column_indices(self) -> np.ndarray:
        return self.decode().column_indices

    def with_weights(self, weights: np.ndarray) -> "CompressedCSRGraph":
        return CompressedCSRGraph(self.decode().with_weights(weights))

    def without_weights(self) -> "CompressedCSRGraph":
        if self.edge_weights is None:
            return self
        return CompressedCSRGraph(self.decode().without_weights())

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Stored topology bytes, plus dense weights if present."""
        total = self.payload.nbytes + self.row_byte_offsets.nbytes
        if self.edge_weights is not None:
            total += self.edge_weights.nbytes
        return total

    @property
    def topology_bits(self) -> int:
        """Stored topology size in bits (payload + row byte offsets)."""
        return 8 * (self.payload.nbytes + self.row_byte_offsets.nbytes)

    @property
    def bits_per_edge(self) -> float:
        """Measured payload bits per edge (the neighbor stream alone)."""
        if self._num_edges == 0:
            return 0.0
        return 8.0 * self.payload.nbytes / self._num_edges

    @property
    def bits_per_node(self) -> float:
        """Measured offset-structure bits per vertex."""
        if self._num_vertices == 0:
            return 0.0
        return 8.0 * self.row_byte_offsets.nbytes / self._num_vertices

    @property
    def total_bits_per_edge(self) -> float:
        """All stored topology bits amortized over edges — the number to
        compare against dense CSR's ``32 * (|E| + |V|) / |E|``."""
        if self._num_edges == 0:
            return 0.0
        return self.topology_bits / self._num_edges

    def topology_words(self) -> int:
        """Stored topology in the paper's 4-byte words (rounded up)."""
        nbytes = self.payload.nbytes + self.row_byte_offsets.nbytes
        return -(-nbytes // WORD_BYTES)

    def device_arrays(self) -> dict[str, np.ndarray]:
        """Arrays a placement must move: the *compressed* topology."""
        arrays = {
            "row_offsets": self.row_byte_offsets,
            "column_indices": self.payload,
        }
        if self.edge_weights is not None:
            arrays["edge_weights"] = self.edge_weights
        return arrays

    # ------------------------------------------------------------------
    # Byte-range accounting (what a frontier expansion must move)
    # ------------------------------------------------------------------

    def edge_byte_ranges(
        self, starts: np.ndarray, degrees: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Payload byte ranges covering edge ranges ``[start, start + degree)``.

        Returns ``(start_bytes, length_bytes)`` int64 arrays aligned with
        the inputs — the exact bytes a placement must read to expand
        those adjacency slices (cf. ``start * 4`` / ``degree * 4`` for
        dense CSR).
        """
        starts = np.asarray(starts, dtype=np.int64)
        degrees = np.asarray(degrees, dtype=np.int64)
        lo = self.edge_byte_offsets[starts]
        hi = self.edge_byte_offsets[starts + degrees]
        return lo, hi - lo

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompressedCSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.payload, other.payload)
            and np.array_equal(self.row_byte_offsets, other.row_byte_offsets)
            and (self.edge_weights is None) == (other.edge_weights is None)
            and (self.edge_weights is None
                 or np.array_equal(self.edge_weights, other.edge_weights))
        )

    def __hash__(self):  # pragma: no cover - explicitness only
        return id(self)

    def __repr__(self) -> str:
        w = ", weighted" if self.is_weighted else ""
        return (
            f"CompressedCSRGraph(|V|={self._num_vertices}, "
            f"|E|={self._num_edges}, {self.bits_per_edge:.1f} b/edge, "
            f"{self.bits_per_node:.1f} b/node{w})"
        )


def compress(csr: CSRGraph) -> CompressedCSRGraph:
    """Encode ``csr``; ``compress(csr).decode()`` is byte-for-byte equal."""
    return CompressedCSRGraph(csr)
