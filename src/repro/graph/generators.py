"""Synthetic graph generators.

Two generators carry the evaluation:

* :func:`rmat` — the Recursive-MATrix generator (Chakrabarti et al.), the
  same model PaRMAT implements.  The paper generates RMAT25 with
  ``a=0.45, b=0.22, c=0.22``; we use identical quadrant probabilities.
  RMAT also serves as the surrogate for the skewed social networks
  (LiveJournal, com-Orkut, Slashdot), whose defining property for this
  paper is their power-law out-degree distribution.
* :func:`web_chain` — surrogate for the WebGraph crawls (uk-2005, sk-2005,
  uk-2006).  What matters about those graphs in the evaluation is (i) very
  large BFS depth (uk-2005 needs ~200 iterations, Table IV), (ii) a large
  reachable set but a smaller strongly-connected core (%LCC, Table II),
  and (iii) for uk-2006, a source whose activatable subgraph is a tiny
  pocket (activation 1.15e-4).  ``web_chain`` builds a directed chain of
  communities (the crawl frontier) with one-way "leaf" pages hanging off
  it, reproducing all three properties by construction.

All generators are deterministic given ``seed`` and fully vectorized.
Randomness is always drawn from a function-local
``np.random.default_rng(seed)`` — never from NumPy's module-global RNG —
so two same-seed calls are bit-identical regardless of what any other
code has drawn in between (enforced by regression tests in
``tests/test_graph_generators.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.builder import build_csr_from_edges, remove_self_loops
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


# ----------------------------------------------------------------------
# RMAT
# ----------------------------------------------------------------------

def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.45,
    b: float = 0.22,
    c: float = 0.22,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate RMAT edge endpoints over ``2**scale`` vertices.

    Each edge picks one quadrant per bit level with probabilities
    ``(a, b, c, d=1-a-b-c)``; vectorized as ``scale`` rounds of a single
    uniform draw for all edges.
    """
    if not 0 < a + b + c <= 1.0:
        raise DatasetError(f"invalid RMAT probabilities a+b+c={a + b + c}")
    if scale < 1 or scale > 30:
        raise DatasetError(f"RMAT scale must be in [1, 30], got {scale}")
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for _ in range(scale):
        r = rng.random(num_edges)
        # Quadrant decoding: bit of src set for quadrants c, d;
        # bit of dst set for quadrants b, d.
        src_bit = r >= ab
        dst_bit = (r >= a) & (r < ab) | (r >= abc)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE)


def rmat(
    scale: int,
    num_edges: int,
    a: float = 0.45,
    b: float = 0.22,
    c: float = 0.22,
    seed: int = 0,
    *,
    self_loops: bool = False,
) -> CSRGraph:
    """RMAT graph as CSR (duplicates removed, self-loops optional)."""
    src, dst = rmat_edges(scale, num_edges, a, b, c, seed)
    if not self_loops:
        src, dst, _ = remove_self_loops(src, dst)
    return build_csr_from_edges(src, dst, num_vertices=2**scale)


def social_network(
    num_vertices: int,
    num_edges: int,
    *,
    skew: float = 0.45,
    seed: int = 0,
) -> CSRGraph:
    """Skewed social-network surrogate over an arbitrary vertex count.

    RMAT requires a power-of-two vertex space; this wraps :func:`rmat_edges`
    at the next power of two and folds ids down with a modulo, preserving
    the power-law degree shape while hitting the requested ``|V|`` exactly
    (the scaled Table II vertex counts are not powers of two).
    """
    if num_vertices < 2:
        raise DatasetError("social_network needs at least 2 vertices")
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    b = c = (1.0 - skew) / 2.5
    src, dst = rmat_edges(scale, num_edges, a=skew, b=b, c=c, seed=seed)
    src = src % num_vertices
    dst = dst % num_vertices
    src, dst, _ = remove_self_loops(src, dst)
    return build_csr_from_edges(src, dst, num_vertices=num_vertices)


# ----------------------------------------------------------------------
# Web-crawl surrogate
# ----------------------------------------------------------------------

def web_chain(
    num_vertices: int,
    num_edges: int,
    *,
    depth: int,
    leaf_fraction: float = 0.3,
    pocket_size: int = 0,
    pocket_depth: int = 4,
    seed: int = 0,
) -> CSRGraph:
    """Directed web-crawl surrogate with controllable BFS depth.

    Structure (all edges directed):

    * ``depth`` *communities* of core pages arranged in a chain; intra-
      community random edges plus forward edges community ``i`` ->
      ``i + 1`` and sparse back edges.  BFS from community 0 therefore
      needs ~``depth`` iterations and the core is strongly connected.
    * a ``leaf_fraction`` of vertices are *leaf pages*: they receive edges
      from core pages but have no out-edges back to the core — reachable
      (they activate) yet outside the strongly-connected core, which is
      how uk-2005 can be 99% activatable with a 65% LCC.
    * optionally a disconnected *pocket* of ``pocket_size`` vertices laid
      out in ``pocket_depth`` BFS levels containing vertex 0; querying
      from vertex 0 then touches only the pocket (the uk-2006 case,
      activation ~1e-4).

    Vertex ids stay in community (crawl) order — see the comment near the
    end for why that locality is load-bearing.
    """
    if depth < 1:
        raise DatasetError(f"depth must be >= 1, got {depth}")
    if pocket_size >= num_vertices:
        raise DatasetError("pocket_size must be smaller than num_vertices")
    if pocket_size and pocket_depth < 1:
        raise DatasetError("pocket_depth must be >= 1")
    rng = np.random.default_rng(seed)

    n_pocket = int(pocket_size)
    n_main = num_vertices - n_pocket
    n_leaf = int(n_main * leaf_fraction)
    n_core = n_main - n_leaf
    if n_core < depth:
        raise DatasetError(
            f"need at least {depth} core vertices, have {n_core} "
            f"({num_vertices} total, leaf_fraction={leaf_fraction})"
        )

    # Budget edges: pocket edges are few; the rest split between core
    # structure and core->leaf edges proportionally to vertex counts.
    e_pocket = min(4 * n_pocket, num_edges // 20) if n_pocket else 0
    e_main = num_edges - e_pocket
    e_leaf = int(e_main * leaf_fraction)
    e_core = e_main - e_leaf

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []

    # --- core chain ---------------------------------------------------
    comm_of = np.sort(rng.integers(0, depth, size=n_core))
    comm_of[:depth] = np.arange(depth)  # every community non-empty
    comm_of = np.sort(comm_of)
    comm_start = np.searchsorted(comm_of, np.arange(depth + 1))
    comm_sizes = np.diff(comm_start)

    def sample_in_community(comm_ids: np.ndarray) -> np.ndarray:
        """Uniform core vertex within each requested community (vectorized)."""
        lo = comm_start[comm_ids]
        size = comm_sizes[comm_ids]
        return (lo + (rng.random(len(comm_ids)) * size).astype(np.int64)).astype(
            np.int64
        )

    # Intra-community edges (60% of core budget), forward chain edges
    # (30%), sparse back edges (10%).
    e_intra = int(e_core * 0.6)
    e_fwd = int(e_core * 0.3)
    e_back = e_core - e_intra - e_fwd

    comm_intra = rng.integers(0, depth, size=e_intra)
    srcs.append(sample_in_community(comm_intra))
    dsts.append(sample_in_community(comm_intra))

    if depth > 1:
        comm_src = rng.integers(0, depth - 1, size=e_fwd)
        srcs.append(sample_in_community(comm_src))
        dsts.append(sample_in_community(comm_src + 1))

        comm_back = rng.integers(1, depth, size=e_back)
        srcs.append(sample_in_community(comm_back))
        dsts.append(sample_in_community(comm_back - 1))
    else:
        comm_extra = rng.integers(0, depth, size=e_fwd + e_back)
        srcs.append(sample_in_community(comm_extra))
        dsts.append(sample_in_community(comm_extra))

    # Deterministic spine so reachability depth is guaranteed: one edge
    # from the first vertex of community i to the first of community i+1.
    if depth > 1:
        spine = comm_start[:-1][:depth]
        srcs.append(spine[:-1].astype(np.int64))
        dsts.append(spine[1:].astype(np.int64))

    # --- leaf pages (reachable, no out-edges) ---------------------------
    if n_leaf:
        leaf_ids = n_core + rng.integers(0, n_leaf, size=e_leaf)
        comm_l = rng.integers(0, depth, size=e_leaf)
        srcs.append(sample_in_community(comm_l))
        dsts.append(leaf_ids.astype(np.int64))
        # Guarantee every leaf has at least one in-edge.
        all_leaves = n_core + np.arange(n_leaf, dtype=np.int64)
        srcs.append(sample_in_community(rng.integers(0, depth, size=n_leaf)))
        dsts.append(all_leaves)

    # --- pocket (disconnected component containing the query source) ---
    if n_pocket:
        base = n_main
        # Pocket vertex i sits at BFS level `level_of[i]`; vertex `base`
        # (level 0) becomes the query source after the permutation below.
        level_of = np.minimum(
            np.arange(n_pocket) * pocket_depth // max(n_pocket, 1),
            pocket_depth - 1,
        )
        level_first = np.searchsorted(level_of, np.arange(pocket_depth))
        # Reachability guarantee: every pocket vertex beyond the source
        # gets an in-edge from the first vertex of the previous level
        # (or of its own level for the remainder of level 0).
        tail = np.arange(1, n_pocket, dtype=np.int64)
        prev_level = np.maximum(level_of[1:] - 1, 0)
        srcs.append(base + level_first[prev_level].astype(np.int64))
        dsts.append(base + tail)
        # Random forward intra-pocket edges: from vertex at level l to any
        # vertex at level <= l + 1 (keeps the BFS depth exactly bounded).
        if e_pocket:
            p_src = rng.integers(0, n_pocket, size=e_pocket)
            hi_level = np.minimum(level_of[p_src] + 1, pocket_depth - 1)
            hi = np.searchsorted(level_of, hi_level, side="right")
            p_dst = (rng.random(e_pocket) * hi).astype(np.int64)
            srcs.append(base + p_src.astype(np.int64))
            dsts.append(base + p_dst)

    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    src, dst, _ = remove_self_loops(src, dst)

    # Vertex ids stay in community (crawl) order — WebGraph datasets are
    # crawl-ordered, and that locality is load-bearing: it is what lets
    # the UM driver merge a BFS wavefront's faulting pages into the large
    # contiguous migrations of Table V, and what keeps oversubscribed
    # traversals from thrashing.  For pocket graphs, swap ids 0 and the
    # pocket entry so the query source is always vertex 0.
    if n_pocket:
        entry = n_main
        src = np.where(src == 0, -1, src)
        src = np.where(src == entry, 0, src)
        src = np.where(src == -1, entry, src)
        dst = np.where(dst == 0, -1, dst)
        dst = np.where(dst == entry, 0, dst)
        dst = np.where(dst == -1, entry, dst)
    return build_csr_from_edges(src, dst, num_vertices=num_vertices)


# ----------------------------------------------------------------------
# Small deterministic graphs (tests & examples)
# ----------------------------------------------------------------------

def path_graph(n: int) -> CSRGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    idx = np.arange(n - 1, dtype=VERTEX_DTYPE)
    return build_csr_from_edges(idx, idx + 1, num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    """Directed cycle over ``n`` vertices."""
    idx = np.arange(n, dtype=VERTEX_DTYPE)
    return build_csr_from_edges(idx, (idx + 1) % n, num_vertices=n)


def star_graph(n_leaves: int, *, out: bool = True) -> CSRGraph:
    """Hub vertex 0 with ``n_leaves`` leaves (max-skew degree distribution)."""
    hub = np.zeros(n_leaves, dtype=VERTEX_DTYPE)
    leaves = np.arange(1, n_leaves + 1, dtype=VERTEX_DTYPE)
    if out:
        return build_csr_from_edges(hub, leaves, num_vertices=n_leaves + 1)
    return build_csr_from_edges(leaves, hub, num_vertices=n_leaves + 1)


def complete_graph(n: int) -> CSRGraph:
    """All ordered pairs (no self loops)."""
    src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), n)
    dst = np.tile(np.arange(n, dtype=VERTEX_DTYPE), n)
    src, dst, _ = remove_self_loops(src, dst)
    return build_csr_from_edges(src, dst, num_vertices=n)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """2-D grid with right/down directed edges (high-diameter regular graph)."""
    ids = np.arange(rows * cols, dtype=VERTEX_DTYPE).reshape(rows, cols)
    srcs = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    dsts = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    return build_csr_from_edges(
        np.concatenate(srcs), np.concatenate(dsts), num_vertices=rows * cols
    )


def erdos_renyi(n: int, num_edges: int, seed: int = 0) -> CSRGraph:
    """Uniform random directed graph with ``num_edges`` attempted edges."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, n, size=num_edges, dtype=np.int64)
    src, dst, _ = remove_self_loops(src, dst)
    return build_csr_from_edges(src, dst, num_vertices=n)
