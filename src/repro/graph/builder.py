"""Vectorized CSR construction from raw edge arrays.

Building CSR is the only "pre-processing" EtaGraph performs (the paper's
point is that UDC needs *no* further transformation beyond the CSR every
framework loads anyway), so this path is shared by every framework in the
repo and kept fully vectorized: one ``argsort`` and a handful of gathers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE
from repro.utils.validation import ensure_array


def build_csr_from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int | None = None,
    weights: np.ndarray | None = None,
    *,
    dedup: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel ``src``/``dst`` arrays.

    Parameters
    ----------
    src, dst:
        Edge endpoints; any integer dtype, converted to int32.
    num_vertices:
        Total vertex count.  Defaults to ``max(src, dst) + 1``.
    weights:
        Optional per-edge float weights, permuted along with the edges.
    dedup:
        Drop duplicate ``(src, dst)`` pairs, keeping the first occurrence
        (the paper assumes graphs without duplicate edges for UDC's
        correctness argument — Section III-B).
    """
    src = ensure_array("src", src, VERTEX_DTYPE)
    dst = ensure_array("dst", dst, VERTEX_DTYPE)
    if len(src) != len(dst):
        raise GraphFormatError(
            f"src and dst length mismatch: {len(src)} vs {len(dst)}"
        )
    if weights is not None:
        weights = ensure_array("weights", weights, WEIGHT_DTYPE)
        if len(weights) != len(src):
            raise GraphFormatError(
                f"weights length {len(weights)} != edge count {len(src)}"
            )

    if len(src) and (src.min() < 0 or dst.min() < 0):
        raise GraphFormatError("negative vertex ids are not allowed")

    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    elif len(src) and max(src.max(), dst.max()) >= num_vertices:
        raise GraphFormatError(
            f"edge endpoint exceeds num_vertices={num_vertices}"
        )

    # Sort edges by (src, dst) so each adjacency list is contiguous and
    # ordered — a stable sort keeps the first occurrence for dedup.
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order]
    if weights is not None:
        weights = weights[order]

    if dedup and len(src):
        keep = np.empty(len(src), dtype=bool)
        keep[0] = True
        np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1], out=keep[1:])
        if not keep.all():
            src = src[keep]
            dst = dst[keep]
            if weights is not None:
                weights = weights[keep]

    counts = np.bincount(src, minlength=num_vertices)
    row_offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=row_offsets[1:])
    if row_offsets[-1] > np.iinfo(OFFSET_DTYPE).max:
        raise GraphFormatError(
            f"edge count {row_offsets[-1]} exceeds int32 offset range"
        )

    return CSRGraph(
        row_offsets.astype(OFFSET_DTYPE),
        dst,
        weights,
        validate=False,
    )


def remove_self_loops(
    src: np.ndarray, dst: np.ndarray, weights: np.ndarray | None = None
):
    """Filter out ``src == dst`` edges from parallel edge arrays."""
    src = np.asarray(src)
    dst = np.asarray(dst)
    keep = src != dst
    if weights is not None:
        return src[keep], dst[keep], np.asarray(weights)[keep]
    return src[keep], dst[keep], None


def symmetrize(src: np.ndarray, dst: np.ndarray):
    """Return edge arrays containing both directions of every edge."""
    src = np.asarray(src)
    dst = np.asarray(dst)
    return np.concatenate([src, dst]), np.concatenate([dst, src])
