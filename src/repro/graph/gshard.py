"""G-Shards: CuSha's coalescing-friendly edge layout.

CuSha (HPDC'14) partitions the vertex id range into *windows* and stores,
for each window, the shard of all edges whose **destination** lies in that
window, sorted by source vertex.  A GPU thread block processes one shard;
because shard entries are contiguous, reads are fully coalesced — at the
price of ``2|E|`` topology words (Table I) plus per-edge value slots that
the CuSha runtime adds (which is why CuSha is the first framework to go
O.O.M in Table III).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE, WEIGHT_DTYPE, WORD_BYTES


class GShards:
    """Sharded edge layout keyed by destination window.

    Attributes
    ----------
    shard_src, shard_dst:
        Per-edge source/destination ids, grouped by shard then sorted by
        source within each shard (CuSha's layout).
    shard_offsets:
        ``num_shards + 1`` offsets into the edge arrays.
    window_size:
        Number of destination vertices covered by each shard's window.
    """

    def __init__(self, csr: CSRGraph, window_size: int):
        if window_size < 1:
            raise GraphFormatError(f"window_size must be >= 1, got {window_size}")
        self.window_size = int(window_size)
        self.num_vertices = csr.num_vertices
        self.num_shards = -(-max(csr.num_vertices, 1) // self.window_size)

        src = csr.edge_sources()
        dst = csr.column_indices
        shard_of_edge = dst // self.window_size
        # Group by shard, then by source within the shard (CuSha sorts
        # shard entries by source so consecutive threads read consecutive
        # source values).
        order = np.lexsort((src, shard_of_edge))
        self.shard_src = np.ascontiguousarray(src[order])
        self.shard_dst = np.ascontiguousarray(dst[order])
        self.weights = (
            None
            if csr.edge_weights is None
            else np.ascontiguousarray(csr.edge_weights[order])
        )

        counts = np.bincount(shard_of_edge, minlength=self.num_shards)
        self.shard_offsets = np.zeros(self.num_shards + 1, dtype=np.int64)
        np.cumsum(counts, out=self.shard_offsets[1:])

    @classmethod
    def from_csr(
        cls, csr: CSRGraph, window_size: int | None = None
    ) -> "GShards":
        """Build shards with CuSha's default window sizing.

        CuSha sizes windows so a shard's source-value slice fits in shared
        memory; we default to 4096 destination vertices per window, which
        matches that intent at our scale.
        """
        if window_size is None:
            window_size = 4096
        return cls(csr, window_size)

    @property
    def num_edges(self) -> int:
        return len(self.shard_src)

    def shard_slice(self, i: int) -> slice:
        return slice(int(self.shard_offsets[i]), int(self.shard_offsets[i + 1]))

    def topology_words(self) -> int:
        """Table I metric: ``2|E|`` words (src + dst per edge)."""
        return (self.shard_src.nbytes + self.shard_dst.nbytes) // WORD_BYTES

    @property
    def nbytes(self) -> int:
        total = (
            self.shard_src.nbytes
            + self.shard_dst.nbytes
            + self.shard_offsets.nbytes
        )
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def device_arrays(self) -> dict[str, np.ndarray]:
        """CuSha's resident structures, *including* per-edge value slots.

        CuSha materialises a source-value and an edge-value slot for every
        shard entry (so a thread block never chases pointers); these double
        the per-edge footprint and drive the early O.O.M behaviour.
        """
        arrays = {
            "shard_src": self.shard_src,
            "shard_dst": self.shard_dst,
            "shard_offsets": self.shard_offsets.astype(np.int32),
            "shard_src_values": np.empty(self.num_edges, dtype=WEIGHT_DTYPE),
            "shard_edge_values": np.empty(self.num_edges, dtype=WEIGHT_DTYPE),
        }
        if self.weights is not None:
            arrays["shard_weights"] = self.weights
        return arrays

    def __repr__(self) -> str:
        return (
            f"GShards(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"shards={self.num_shards}, window={self.window_size})"
        )


__all__ = ["GShards", "VERTEX_DTYPE", "WORD_BYTES"]
