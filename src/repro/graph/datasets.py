"""Surrogate dataset registry (Table II).

No network access is available, so the six public graphs are replaced by
synthetic surrogates at **1/256 linear scale** whose *shape statistics*
match what the evaluation actually exercises:

* vertex/edge counts scaled by 256, preserving average degree;
* power-law out-degree skew for the social networks (RMAT, the same
  ``a=0.45, b=c=0.22`` quadrant mix the paper used for RMAT25);
* BFS depth for the web crawls (uk-2005 needs ~200 iterations — Table IV);
* activatable-subgraph fraction ("Act. %" of Table IV), including the
  uk-2006 pathology where the queried source reaches only a ~1e-4 pocket;
* a strongly-connected core smaller than the reachable set (%LCC of
  Table II) via one-way leaf pages.

The simulated device capacity is scaled by the same factor
(:func:`scaled_device_capacity`), so the footprint/capacity ratios — and
therefore the O.O.M pattern of Table III — carry over from the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import DatasetError
from repro.graph import generators, io
from repro.graph.csr import CSRGraph
from repro.graph.weights import uniform_int_weights
from repro.utils.units import GIB

#: Linear scale factor between the paper's datasets and the surrogates.
SCALE = 256

#: The paper's GTX 1080 Ti has 11 GiB of device memory.
PAPER_DEVICE_CAPACITY = 11 * GIB


def scaled_device_capacity(scale: int = SCALE) -> int:
    """Device capacity matching the dataset scale (bytes)."""
    return PAPER_DEVICE_CAPACITY // scale


@dataclass(frozen=True)
class PaperStats:
    """The row of Table II for the original dataset."""

    num_vertices: int
    num_edges: int
    average_degree: float
    size_gb: float
    lcc_percent: float


@dataclass(frozen=True)
class DatasetSpec:
    """A surrogate dataset: how to build it and what it stands in for."""

    name: str
    kind: str  # "social" | "web" | "rmat"
    paper: PaperStats
    builder: Callable[[], CSRGraph]
    source_strategy: str = "max_degree"  # or "vertex0"
    weight_seed: int = field(default=7, compare=False)

    def build(self) -> CSRGraph:
        return self.builder()

    def source_vertex(self, csr: CSRGraph) -> int:
        """The traversal source ("the first source node", made untrivial).

        Web surrogates are built so vertex 0 is the crawl entry (or the
        uk-2006 pocket entry); for the skewed social graphs we follow the
        common harness convention of querying from the largest hub, which
        guarantees a non-trivial traversal.
        """
        if self.source_strategy == "vertex0":
            return 0
        degrees = csr.out_degrees()
        return int(np.argmax(degrees))


def _social(name, n_vertices, n_edges, seed):
    return lambda: generators.social_network(n_vertices, n_edges, seed=seed)


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> DatasetSpec:
    _REGISTRY[spec.name] = spec
    return spec


SLASHDOT = _register(
    DatasetSpec(
        name="slashdot",
        kind="social",
        paper=PaperStats(77_000, 900_000, 11.7, 0.011, 98.0),
        # Slashdot is small enough to keep at full scale (the paper's
        # point about it is exactly that it is tiny).
        builder=_social("slashdot", 77_000, 900_000, seed=11),
    )
)

LIVEJOURNAL = _register(
    DatasetSpec(
        name="livejournal",
        kind="social",
        paper=PaperStats(5_000_000, 69_000_000, 14.2, 1.1, 99.0),
        builder=_social("livejournal", 19_531, 277_000, seed=12),
    )
)

COM_ORKUT = _register(
    DatasetSpec(
        name="com-orkut",
        kind="social",
        paper=PaperStats(3_000_000, 117_000_000, 38.1, 1.7, 99.0),
        builder=_social("com-orkut", 11_719, 447_000, seed=13),
    )
)

RMAT25 = _register(
    DatasetSpec(
        name="rmat25",
        kind="rmat",
        paper=PaperStats(32_000_000, 512_000_000, 32.0, 8.3, 81.0),
        # PaRMAT parameters from the paper: a=0.45, b=0.22, c=0.22.
        builder=lambda: generators.rmat(17, 4_194_304, a=0.45, b=0.22, c=0.22,
                                        seed=25),
    )
)

UK_2005 = _register(
    DatasetSpec(
        name="uk-2005",
        kind="web",
        paper=PaperStats(39_000_000, 936_000_000, 23.7, 16.0, 65.2),
        builder=lambda: generators.web_chain(
            152_344, 3_610_000, depth=196, leaf_fraction=0.34, seed=35
        ),
        source_strategy="vertex0",
    )
)

SK_2005 = _register(
    DatasetSpec(
        name="sk-2005",
        kind="web",
        paper=PaperStats(50_000_000, 1_949_000_000, 38.5, 32.0, 70.8),
        builder=lambda: generators.web_chain(
            195_312, 7_520_000, depth=54, leaf_fraction=0.29, seed=36
        ),
        source_strategy="vertex0",
    )
)

UK_2006 = _register(
    DatasetSpec(
        name="uk-2006",
        kind="web",
        paper=PaperStats(80_000_000, 2_481_000_000, 30.7, 42.0, 71.0),
        builder=lambda: generators.web_chain(
            312_500, 9_590_000, depth=40, leaf_fraction=0.29,
            pocket_size=36, pocket_depth=4, seed=37,
        ),
        source_strategy="vertex0",
    )
)

UK_2005_X8 = _register(
    DatasetSpec(
        name="uk-2005-x8",
        kind="web",
        paper=PaperStats(39_000_000, 936_000_000, 23.7, 16.0, 65.2),
        # Raised-scale tier: the uk-2005 surrogate at 1/32 linear scale
        # (8x the standard 1/256) with the same crawl shape.  Its dense
        # topology (~116 MiB) is ~2.7x the scaled device capacity —
        # genuinely out-of-core, which is what the compressed-topology
        # and direct-access placements exist for.
        builder=lambda: generators.web_chain(
            1_218_750, 29_250_000, depth=196, leaf_fraction=0.34, seed=35
        ),
        source_strategy="vertex0",
    )
)

UK_2005_X4 = _register(
    DatasetSpec(
        name="uk-2005-x4",
        kind="web",
        paper=PaperStats(39_000_000, 936_000_000, 23.7, 16.0, 65.2),
        # Quick-mode rung of the raised tier (1/64 linear scale): dense
        # topology ~1.3x device capacity, so it still oversubscribes
        # while keeping CI runs fast.
        builder=lambda: generators.web_chain(
            609_375, 14_625_000, depth=196, leaf_fraction=0.34, seed=35
        ),
        source_strategy="vertex0",
    )
)

#: Table II / Table III dataset order.
ALL_DATASETS = (
    "slashdot",
    "livejournal",
    "com-orkut",
    "rmat25",
    "uk-2005",
    "sk-2005",
    "uk-2006",
)

#: A smaller grid for quick tests and CI-ish runs.
SMALL_DATASETS = ("slashdot", "livejournal", "com-orkut")

#: Raised-scale surrogate tier (1/32 and 1/64 linear scale instead of
#: the standard 1/256): oversubscribed against the scaled device, for
#: out-of-core placement experiments.  Deliberately *not* part of
#: ``ALL_DATASETS`` — Table II/III sweeps stay at the standard scale.
RAISED_DATASETS = ("uk-2005-x8", "uk-2005-x4")


def get_spec(name: str) -> DatasetSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_DATA_DIR", Path.home() / ".cache" / "repro"))


def load(
    name: str,
    *,
    weighted: bool = False,
    cache_dir: Path | None = None,
    use_cache: bool = True,
) -> tuple[CSRGraph, int]:
    """Build (or load from cache) a surrogate; returns ``(graph, source)``.

    Weights, when requested, are attached deterministically from the
    spec's seed so SSSP/SSWP results are reproducible across processes.
    """
    spec = get_spec(name)
    csr: CSRGraph | None = None
    if use_cache:
        cache_dir = cache_dir or default_cache_dir()
        cache_dir.mkdir(parents=True, exist_ok=True)
        cache_path = cache_dir / f"{name}.npz"
        if cache_path.exists():
            csr = io.load_npz(cache_path)
        else:
            csr = spec.build()
            io.save_npz(csr, cache_path)
    else:
        csr = spec.build()
    if weighted:
        # Narrow weight range: Table III/IV show SSSP and SSWP finishing
        # in essentially the same time/iterations as BFS on every graph
        # (incl. the 200-level uk-2005), which bounds how much label
        # correction the authors' weights can have induced.  Wide random
        # weights would send synchronous relaxation on deep graphs into
        # thousands of correction rounds the paper demonstrably did not
        # have.
        csr = csr.with_weights(
            uniform_int_weights(csr.num_edges, low=1, high=4,
                                seed=spec.weight_seed)
        )
    return csr, spec.source_vertex(csr)
