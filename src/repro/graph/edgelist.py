"""Edge-list (COO) representation.

The layout used by edge-centric engines such as X-Stream: two parallel
``|E|``-length arrays of source and destination ids, ``2|E|`` topology
words (Table I row "Edge List").
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE, WEIGHT_DTYPE, WORD_BYTES
from repro.utils.validation import ensure_array


class EdgeList:
    """Parallel ``src``/``dst`` (and optional ``weight``) edge arrays."""

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        num_vertices: int | None = None,
    ):
        self.src = ensure_array("src", src, VERTEX_DTYPE)
        self.dst = ensure_array("dst", dst, VERTEX_DTYPE)
        if len(self.src) != len(self.dst):
            raise GraphFormatError(
                f"src/dst length mismatch: {len(self.src)} vs {len(self.dst)}"
            )
        if weights is not None:
            weights = ensure_array("weights", weights, WEIGHT_DTYPE)
            if len(weights) != len(self.src):
                raise GraphFormatError("weights length != edge count")
        self.weights = weights
        if num_vertices is None:
            num_vertices = int(
                max(self.src.max(initial=-1), self.dst.max(initial=-1)) + 1
            )
        self.num_vertices = num_vertices

    @classmethod
    def from_csr(cls, csr: CSRGraph) -> "EdgeList":
        """Expand a CSR graph into COO form (one ``np.repeat``)."""
        return cls(
            csr.edge_sources(),
            csr.column_indices.copy(),
            None if csr.edge_weights is None else csr.edge_weights.copy(),
            num_vertices=csr.num_vertices,
        )

    def to_csr(self) -> CSRGraph:
        return CSRGraph.from_edges(
            self.src, self.dst, self.num_vertices, self.weights, dedup=False
        )

    @property
    def num_edges(self) -> int:
        return len(self.src)

    @property
    def nbytes(self) -> int:
        total = self.src.nbytes + self.dst.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def topology_words(self) -> int:
        """Table I metric: ``2|E|`` 4-byte words."""
        return (self.src.nbytes + self.dst.nbytes) // WORD_BYTES

    def device_arrays(self) -> dict[str, np.ndarray]:
        arrays = {"edge_src": self.src, "edge_dst": self.dst}
        if self.weights is not None:
            arrays["edge_weights"] = self.weights
        return arrays

    def __repr__(self) -> str:
        return f"EdgeList(|V|={self.num_vertices}, |E|={self.num_edges})"
