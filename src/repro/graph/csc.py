"""Compressed Sparse Column representation.

CSC stores in-edges contiguously; pull-style engines (and Gunrock's
direction-optimized advance) consume it.  It is simply the CSR of the
transpose graph with clearer naming.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, WORD_BYTES


class CSCGraph:
    """Column-compressed view of a directed graph.

    ``col_offsets``/``row_indices`` index the *in*-edges of each vertex:
    vertex ``v``'s predecessors are
    ``row_indices[col_offsets[v]:col_offsets[v + 1]]``.
    """

    def __init__(self, transpose_csr: CSRGraph):
        self._t = transpose_csr

    @classmethod
    def from_csr(cls, csr: CSRGraph) -> "CSCGraph":
        """Build the CSC of ``csr`` (one sort over the edge list)."""
        return cls(csr.reverse())

    @property
    def col_offsets(self) -> np.ndarray:
        return self._t.row_offsets

    @property
    def row_indices(self) -> np.ndarray:
        return self._t.column_indices

    @property
    def edge_weights(self) -> np.ndarray | None:
        return self._t.edge_weights

    @property
    def num_vertices(self) -> int:
        return self._t.num_vertices

    @property
    def num_edges(self) -> int:
        return self._t.num_edges

    def in_degrees(self) -> np.ndarray:
        return self._t.out_degrees()

    def predecessors(self, v: int) -> np.ndarray:
        return self._t.neighbors(v)

    @property
    def nbytes(self) -> int:
        return self._t.nbytes

    def topology_words(self) -> int:
        return self._t.topology_words()

    def device_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            "col_offsets": self.col_offsets,
            "row_indices": self.row_indices,
        }
        if self.edge_weights is not None:
            arrays["csc_edge_weights"] = self.edge_weights
        return arrays

    def __repr__(self) -> str:
        return f"CSCGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


# Re-export the word size so space-accounting code can import from one place.
__all__ = ["CSCGraph", "WORD_BYTES"]
