"""Vertex relabeling / reordering.

Vertex order is load-bearing for the paper's memory system results: the
WebGraph datasets are crawl-ordered, which is what lets the UM driver
merge a BFS wavefront's faults into the large contiguous migrations of
Table V.  This module provides the classic orderings so their effect can
be measured (see ``benchmarks/bench_ablation_ordering.py``):

* :func:`bfs_order` — crawl-like order (what the real datasets have),
* :func:`degree_order` — hubs first (common for CSR segment reuse),
* :func:`random_order` — the adversarial baseline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph


def apply_permutation(csr: CSRGraph, new_id_of: np.ndarray) -> CSRGraph:
    """Relabel vertices: old vertex ``v`` becomes ``new_id_of[v]``."""
    new_id_of = np.asarray(new_id_of, dtype=np.int64)
    n = csr.num_vertices
    if len(new_id_of) != n:
        raise GraphFormatError(
            f"permutation has {len(new_id_of)} entries for {n} vertices"
        )
    if not np.array_equal(np.sort(new_id_of), np.arange(n)):
        raise GraphFormatError("not a permutation of vertex ids")
    return build_csr_from_edges(
        new_id_of[csr.edge_sources()],
        new_id_of[csr.column_indices],
        num_vertices=n,
        weights=csr.edge_weights,
        dedup=False,
    )


def bfs_order(csr: CSRGraph, source: int = 0) -> np.ndarray:
    """Permutation assigning ids in BFS discovery order from ``source``.

    Unreached vertices keep their relative order after the reached ones —
    the layout a crawler's output naturally has.
    """
    import scipy.sparse.csgraph as csgraph

    order = csgraph.breadth_first_order(
        csr.to_scipy(), i_start=source, directed=True,
        return_predecessors=False,
    )
    new_id_of = np.full(csr.num_vertices, -1, dtype=np.int64)
    new_id_of[order] = np.arange(len(order))
    rest = np.flatnonzero(new_id_of < 0)
    new_id_of[rest] = len(order) + np.arange(len(rest))
    return new_id_of


def degree_order(csr: CSRGraph, *, descending: bool = True) -> np.ndarray:
    """Permutation assigning ids by out-degree (hubs first by default)."""
    deg = csr.out_degrees()
    order = np.argsort(-deg if descending else deg, kind="stable")
    new_id_of = np.empty(csr.num_vertices, dtype=np.int64)
    new_id_of[order] = np.arange(csr.num_vertices)
    return new_id_of


def random_order(csr: CSRGraph, seed: int = 0) -> np.ndarray:
    """A uniform random permutation (locality adversary)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(csr.num_vertices).astype(np.int64)


def reorder(csr: CSRGraph, strategy: str, **kwargs) -> tuple[CSRGraph, np.ndarray]:
    """Apply a named ordering; returns ``(graph, new_id_of)``."""
    strategies = {
        "bfs": bfs_order,
        "degree": degree_order,
        "random": random_order,
    }
    try:
        fn = strategies[strategy]
    except KeyError:
        raise GraphFormatError(
            f"unknown ordering {strategy!r}; known: {sorted(strategies)}"
        ) from None
    perm = fn(csr, **kwargs)
    return apply_permutation(csr, perm), perm
