"""Graph data structures, generators, I/O and dataset registry.

The layout mirrors Section II-B of the paper: CSR is the primary structure
(what EtaGraph itself consumes), with edge-list, G-Shards (CuSha) and VST
(Tigr) implemented both as baseline-framework inputs and for the Table I
space-overhead comparison.
"""

from repro.graph.csr import CSRGraph
from repro.graph.compressed import CompressedCSRGraph, compress
from repro.graph.csc import CSCGraph
from repro.graph.edgelist import EdgeList
from repro.graph.gshard import GShards
from repro.graph.vst import VirtualSplitGraph
from repro.graph.builder import build_csr_from_edges
from repro.graph import generators, io, properties, datasets, weights

__all__ = [
    "CSRGraph",
    "CompressedCSRGraph",
    "compress",
    "CSCGraph",
    "EdgeList",
    "GShards",
    "VirtualSplitGraph",
    "build_csr_from_edges",
    "generators",
    "io",
    "properties",
    "datasets",
    "weights",
]
