"""Induced subgraph extraction.

Utilities for carving out the activatable subgraph (Definition 2 of the
paper) or any vertex-induced subgraph — useful for ad-hoc analysis of
what a traversal can actually touch (the uk-2006 pocket, component
slices, ego networks).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph


def induced_subgraph(
    csr: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by ``vertices``.

    Returns ``(subgraph, old_id_of)`` where ``old_id_of[new_id]`` maps
    compacted ids back to the original graph.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if len(vertices) and (
        vertices[0] < 0 or vertices[-1] >= csr.num_vertices
    ):
        raise GraphFormatError("subgraph vertex id out of range")
    new_id_of = np.full(csr.num_vertices, -1, dtype=np.int64)
    new_id_of[vertices] = np.arange(len(vertices))

    src = csr.edge_sources()
    dst = csr.column_indices
    keep = (new_id_of[src] >= 0) & (new_id_of[dst] >= 0)
    weights = csr.edge_weights[keep] if csr.edge_weights is not None else None
    sub = build_csr_from_edges(
        new_id_of[src[keep]],
        new_id_of[dst[keep]],
        num_vertices=len(vertices),
        weights=weights,
        dedup=False,
    )
    return sub, vertices


def activatable_subgraph(
    csr: CSRGraph, source: int
) -> tuple[CSRGraph, np.ndarray, int]:
    """Definition 2: the induced subgraph of everything reachable from
    ``source``.  Returns ``(subgraph, old_id_of, new_source)``."""
    from repro.graph.properties import reachable_mask

    mask = reachable_mask(csr, source)
    sub, old_ids = induced_subgraph(csr, np.flatnonzero(mask))
    new_source = int(np.searchsorted(old_ids, source))
    return sub, old_ids, new_source


def largest_component_subgraph(csr: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """The weakly-connected LCC as a standalone graph."""
    import scipy.sparse.csgraph as csgraph

    _n, labels = csgraph.connected_components(
        csr.to_scipy(), directed=True, connection="weak"
    )
    counts = np.bincount(labels)
    keep = np.flatnonzero(labels == np.argmax(counts))
    return induced_subgraph(csr, keep)
