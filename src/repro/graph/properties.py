"""Graph statistics: degrees, connectivity, reachability.

These back two artifacts of the paper: Table II (dataset statistics,
including %LCC) and Table IV (activation percentage — the share of
vertices that ever become active, i.e. the activatable subgraph's size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph.csr import CSRGraph
from repro.utils.ragged import ragged_arange as _ragged_arange


@dataclass(frozen=True)
class DegreeStats:
    """Summary of the out-degree distribution."""

    average: float
    maximum: int
    p99: float
    zeros: int

    @classmethod
    def of(cls, csr: CSRGraph) -> "DegreeStats":
        deg = csr.out_degrees()
        if len(deg) == 0:
            return cls(0.0, 0, 0.0, 0)
        return cls(
            average=float(deg.mean()),
            maximum=int(deg.max()),
            p99=float(np.percentile(deg, 99)),
            zeros=int((deg == 0).sum()),
        )


def _adjacency(csr: CSRGraph) -> sp.csr_matrix:
    n = csr.num_vertices
    data = np.ones(csr.num_edges, dtype=np.int8)
    return sp.csr_matrix(
        (data, csr.column_indices, csr.row_offsets.astype(np.int64)), shape=(n, n)
    )


def largest_component_fraction(csr: CSRGraph, *, strong: bool = False) -> float:
    """Fraction of vertices in the largest (weakly or strongly) connected
    component — the %LCC column of Table II."""
    if csr.num_vertices == 0:
        return 0.0
    n_comp, labels = csgraph.connected_components(
        _adjacency(csr), directed=True, connection="strong" if strong else "weak"
    )
    if n_comp == 0:
        return 0.0
    counts = np.bincount(labels)
    return float(counts.max() / csr.num_vertices)


def reachable_mask(csr: CSRGraph, source: int) -> np.ndarray:
    """Boolean mask of vertices reachable from ``source`` (directed BFS)."""
    order = csgraph.breadth_first_order(
        _adjacency(csr), i_start=source, directed=True, return_predecessors=False
    )
    mask = np.zeros(csr.num_vertices, dtype=bool)
    mask[order] = True
    return mask


def activation_fraction(csr: CSRGraph, source: int) -> float:
    """Share of all vertices inside the activatable subgraph of ``source``.

    Matches Definition 2 of the paper: the induced subgraph of everything
    reachable from the source.  This is the "Act. %" row of Table IV.
    """
    if csr.num_vertices == 0:
        return 0.0
    return float(reachable_mask(csr, source).sum() / csr.num_vertices)


def bfs_depth(csr: CSRGraph, source: int) -> int:
    """Number of BFS levels from ``source`` (the paper's iteration count
    for BFS, Table IV "Itr. #")."""
    n = csr.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    offsets = csr.row_offsets
    cols = csr.column_indices
    while len(frontier):
        # Gather all neighbors of the frontier, vectorized per level.
        starts = offsets[frontier].astype(np.int64)
        ends = offsets[frontier + 1].astype(np.int64)
        degs = ends - starts
        total = int(degs.sum())
        if total == 0:
            break
        idx = np.repeat(starts, degs) + _ragged_arange(degs)
        neigh = cols[idx].astype(np.int64)
        new = np.unique(neigh[levels[neigh] < 0])
        if len(new) == 0:
            break
        depth += 1
        levels[new] = depth
        frontier = new
    return depth




@dataclass(frozen=True)
class GraphSummary:
    """Everything Table II reports about one dataset."""

    num_vertices: int
    num_edges: int
    average_degree: float
    size_bytes: int
    lcc_fraction: float
    max_out_degree: int

    @classmethod
    def of(cls, csr: CSRGraph, *, strong_lcc: bool = False) -> "GraphSummary":
        return cls(
            num_vertices=csr.num_vertices,
            num_edges=csr.num_edges,
            average_degree=csr.average_degree,
            size_bytes=csr.nbytes,
            lcc_fraction=largest_component_fraction(csr, strong=strong_lcc),
            max_out_degree=csr.max_out_degree(),
        )
