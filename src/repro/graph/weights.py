"""Deterministic edge-weight generation for SSSP / SSWP.

The paper evaluates SSSP and SSWP on the same topologies as BFS; the public
datasets carry no weights, so (like Gunrock's and Tigr's harnesses) weights
are synthesized.  We use small positive integers stored as float32, which
keeps label arithmetic exact and makes the CPU reference oracles bit-stable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph, WEIGHT_DTYPE


def uniform_int_weights(
    num_edges: int, low: int = 1, high: int = 64, seed: int = 0
) -> np.ndarray:
    """Uniform integer weights in ``[low, high)`` as float32."""
    if low < 1:
        raise ConfigError("traversal weights must be positive (low >= 1)")
    if high <= low:
        raise ConfigError(f"empty weight range [{low}, {high})")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=num_edges).astype(WEIGHT_DTYPE)


def degree_correlated_weights(
    csr: CSRGraph, base: int = 1, spread: int = 63, seed: int = 0
) -> np.ndarray:
    """Weights biased by destination degree (hubs get cheaper edges).

    Mimics the road/web pattern where popular pages sit on short paths;
    used by the ablation benches to vary SSSP convergence behaviour.
    """
    rng = np.random.default_rng(seed)
    deg = csr.out_degrees()[csr.column_indices].astype(np.float64)
    scale = 1.0 / (1.0 + np.log1p(deg))
    w = base + np.floor(rng.random(csr.num_edges) * spread * scale)
    return np.maximum(w, base).astype(WEIGHT_DTYPE)


def unit_weights(num_edges: int) -> np.ndarray:
    """All-ones weights (SSSP degenerates to BFS — used by invariance tests)."""
    return np.ones(num_edges, dtype=WEIGHT_DTYPE)


def attach_weights(csr: CSRGraph, kind: str = "uniform", seed: int = 0) -> CSRGraph:
    """Return ``csr`` with a synthesized weight array attached."""
    if kind == "uniform":
        return csr.with_weights(uniform_int_weights(csr.num_edges, seed=seed))
    if kind == "degree":
        return csr.with_weights(degree_correlated_weights(csr, seed=seed))
    if kind == "unit":
        return csr.with_weights(unit_weights(csr.num_edges))
    raise ConfigError(f"unknown weight kind {kind!r}")
