"""Graph I/O: text edge lists, Galois-style binary CSR, npz caching.

The paper stores graphs in the Galois CSR binary format ("gr") for fast
loading; we implement a compatible little-endian layout plus a plain-text
edge-list reader (the distribution format of the SNAP datasets) and an
``.npz`` cache used by the dataset registry to amortize surrogate
generation across benchmark runs.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE

#: Magic/version header of our Galois-style binary ("gr" v1-like layout).
_GR_MAGIC = 0x47724772  # "GrGr"
_GR_VERSION = 1


# ----------------------------------------------------------------------
# Text edge lists (SNAP distribution format)
# ----------------------------------------------------------------------

def load_edgelist_text(
    path: str | Path,
    *,
    weighted: bool = False,
    num_vertices: int | None = None,
) -> CSRGraph:
    """Load a whitespace-separated edge list; ``#`` lines are comments.

    Uses ``np.loadtxt`` on the comment-stripped stream, so the hot path is
    vectorized rather than a Python per-line loop.  The vertex count is
    taken from ``num_vertices``, else from a ``|V|=`` header comment (as
    written by :func:`save_edgelist_text`), else inferred from the maximum
    endpoint id — which silently drops trailing isolated vertices, exactly
    as the SNAP distribution format does.
    """
    path = Path(path)
    if num_vertices is None:
        num_vertices = _sniff_vertex_count(path)
    try:
        with warnings.catch_warnings():
            # An all-comment file is a valid empty graph, not a warning.
            warnings.simplefilter("ignore", UserWarning)
            data = np.loadtxt(path, comments="#", dtype=np.float64, ndmin=2)
    except ValueError as exc:
        raise GraphFormatError(f"unparseable edge list {path}: {exc}") from exc
    if data.size == 0:
        n = num_vertices or 0
        return CSRGraph(
            np.zeros(n + 1, dtype=OFFSET_DTYPE), np.empty(0, VERTEX_DTYPE)
        )
    min_cols = 3 if weighted else 2
    if data.shape[1] < min_cols:
        raise GraphFormatError(
            f"{path}: expected >= {min_cols} columns, got {data.shape[1]}"
        )
    src = data[:, 0].astype(np.int64)
    dst = data[:, 1].astype(np.int64)
    weights = data[:, 2].astype(WEIGHT_DTYPE) if weighted else None
    return CSRGraph.from_edges(
        src, dst, num_vertices=num_vertices, weights=weights
    )


def _sniff_vertex_count(path: Path) -> int | None:
    """Look for a ``|V|=<n>`` token in leading comment lines."""
    with path.open() as fh:
        for line in fh:
            if not line.startswith("#"):
                return None
            for token in line.split():
                if token.startswith("|V|="):
                    try:
                        return int(token[4:])
                    except ValueError:
                        return None
    return None


def save_edgelist_text(csr: CSRGraph, path: str | Path) -> None:
    """Write a graph as a SNAP-style text edge list."""
    path = Path(path)
    src = csr.edge_sources()
    cols = [src, csr.column_indices]
    fmt = "%d %d"
    if csr.edge_weights is not None:
        cols.append(csr.edge_weights)
        fmt = "%d %d %g"
    with path.open("w") as fh:
        fh.write(f"# repro edge list |V|={csr.num_vertices} |E|={csr.num_edges}\n")
        np.savetxt(fh, np.column_stack(cols), fmt=fmt)


# ----------------------------------------------------------------------
# Galois-style binary CSR
# ----------------------------------------------------------------------

def save_galois_binary(csr: CSRGraph, path: str | Path) -> None:
    """Write a Galois-"gr"-style binary: header, offsets, columns, weights."""
    path = Path(path)
    flags = 1 if csr.edge_weights is not None else 0
    header = struct.pack(
        "<IIQQ", _GR_MAGIC, _GR_VERSION | (flags << 16), csr.num_vertices,
        csr.num_edges,
    )
    with path.open("wb") as fh:
        fh.write(header)
        fh.write(csr.row_offsets.astype("<i4").tobytes())
        fh.write(csr.column_indices.astype("<i4").tobytes())
        if csr.edge_weights is not None:
            fh.write(csr.edge_weights.astype("<f4").tobytes())


def load_galois_binary(path: str | Path) -> CSRGraph:
    """Load a graph written by :func:`save_galois_binary`."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < 24:
        raise GraphFormatError(f"{path}: truncated header")
    magic, verflags, n, m = struct.unpack_from("<IIQQ", raw, 0)
    if magic != _GR_MAGIC:
        raise GraphFormatError(f"{path}: bad magic 0x{magic:08x}")
    version = verflags & 0xFFFF
    if version != _GR_VERSION:
        raise GraphFormatError(f"{path}: unsupported version {version}")
    weighted = bool(verflags >> 16)
    pos = 24
    need = (n + 1 + m) * 4 + (m * 4 if weighted else 0)
    if len(raw) - pos < need:
        raise GraphFormatError(
            f"{path}: truncated body ({len(raw) - pos} B, need {need} B)"
        )
    offsets = np.frombuffer(raw, dtype="<i4", count=n + 1, offset=pos).astype(
        OFFSET_DTYPE
    )
    pos += (n + 1) * 4
    cols = np.frombuffer(raw, dtype="<i4", count=m, offset=pos).astype(VERTEX_DTYPE)
    pos += m * 4
    weights = None
    if weighted:
        weights = np.frombuffer(raw, dtype="<f4", count=m, offset=pos).astype(
            WEIGHT_DTYPE
        )
    return CSRGraph(offsets, cols, weights)


# ----------------------------------------------------------------------
# MatrixMarket (the exchange format most sparse-graph corpora ship in)
# ----------------------------------------------------------------------

def load_matrix_market(path: str | Path, *, weighted: bool | None = None) -> CSRGraph:
    """Load a MatrixMarket coordinate file as a directed graph.

    1-indexed coordinates are converted to 0-indexed vertex ids.
    ``weighted=None`` keeps weights iff the file is a ``real`` matrix;
    ``pattern`` matrices never have them.  Symmetric matrices are
    expanded to both edge directions, matching SuiteSparse convention.
    """
    import scipy.io

    path = Path(path)
    try:
        m = scipy.io.mmread(path)
    except Exception as exc:
        raise GraphFormatError(f"unparseable MatrixMarket file {path}: {exc}") \
            from exc
    coo = m.tocoo()
    n = max(coo.shape)
    if weighted is None:
        # scipy materializes pattern matrices as all-ones float data, so
        # auto-detection must look at the header field, not the dtype.
        with path.open() as fh:
            header = fh.readline()
        keep_weights = "pattern" not in header
    else:
        keep_weights = weighted
    weights = coo.data.astype(WEIGHT_DTYPE) if keep_weights else None
    return CSRGraph.from_edges(
        coo.row.astype(np.int64), coo.col.astype(np.int64),
        num_vertices=n, weights=weights,
    )


def save_matrix_market(csr: CSRGraph, path: str | Path) -> None:
    """Write a graph as a MatrixMarket ``coordinate`` file.

    Unweighted graphs become ``pattern`` matrices so they round-trip
    without acquiring synthetic unit weights.
    """
    import scipy.io

    field = None if csr.edge_weights is not None else "pattern"
    scipy.io.mmwrite(Path(path), csr.to_scipy(), field=field)


# ----------------------------------------------------------------------
# Format dispatch (used by the CLI)
# ----------------------------------------------------------------------

def load_any(path: str | Path, *, weighted: bool = False) -> CSRGraph:
    """Load a graph, dispatching on the file extension.

    ``.gr`` -> Galois binary, ``.mtx`` -> MatrixMarket, ``.npz`` -> cache
    format, anything else -> text edge list.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".gr":
        return load_galois_binary(path)
    if suffix == ".mtx":
        return load_matrix_market(path, weighted=weighted or None)
    if suffix == ".npz":
        return load_npz(path)
    return load_edgelist_text(path, weighted=weighted)


# ----------------------------------------------------------------------
# npz cache (dataset registry)
# ----------------------------------------------------------------------

def save_npz(csr: CSRGraph, path: str | Path) -> None:
    """Cache a graph as compressed npz (fast to reload between bench runs)."""
    arrays = {
        "row_offsets": csr.row_offsets,
        "column_indices": csr.column_indices,
    }
    if csr.edge_weights is not None:
        arrays["edge_weights"] = csr.edge_weights
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph cached by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        weights = data["edge_weights"] if "edge_weights" in data.files else None
        return CSRGraph(
            data["row_offsets"], data["column_indices"], weights, validate=False
        )
