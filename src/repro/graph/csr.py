"""Compressed Sparse Row graph representation.

CSR is the paper's primary data structure (Table I: the most space-efficient
of the compared layouts, ``|E| + |V|`` words).  EtaGraph consumes CSR
*directly* — the Unified Degree Cut never rewrites these arrays.

Layout follows the GPU convention used by the paper:

* ``row_offsets`` — ``num_vertices + 1`` int32 values; vertex ``v``'s
  out-edges occupy ``column_indices[row_offsets[v]:row_offsets[v + 1]]``.
* ``column_indices`` — ``num_edges`` int32 destination vertex ids.
* ``edge_weights`` — optional ``num_edges`` float32 values (SSSP/SSWP).

Everything is 4 bytes wide, matching the paper's space accounting; this
caps the library at ``2**31 - 1`` edges, far beyond the scaled surrogates.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.utils.validation import ensure_array

VERTEX_DTYPE = np.int32
OFFSET_DTYPE = np.int32
WEIGHT_DTYPE = np.float32

#: Bytes per topology word (vertex id / offset / weight) — the paper's unit
#: for Table I space accounting.
WORD_BYTES = 4


class CSRGraph:
    """A directed graph in Compressed Sparse Row form.

    Instances are immutable by convention: all arrays are exposed read-only
    so that views handed to the GPU simulator cannot drift from the host
    copy (the paper's EtaGraph likewise never mutates topology data).
    """

    def __init__(
        self,
        row_offsets: np.ndarray,
        column_indices: np.ndarray,
        edge_weights: np.ndarray | None = None,
        *,
        validate: bool = True,
    ):
        self.row_offsets = ensure_array("row_offsets", row_offsets, OFFSET_DTYPE)
        self.column_indices = ensure_array(
            "column_indices", column_indices, VERTEX_DTYPE
        )
        if edge_weights is not None:
            edge_weights = ensure_array("edge_weights", edge_weights, WEIGHT_DTYPE)
        self.edge_weights = edge_weights

        if validate:
            self._validate()

        for arr in (self.row_offsets, self.column_indices, self.edge_weights):
            if arr is not None:
                arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int | None = None,
        weights: np.ndarray | None = None,
        *,
        dedup: bool = True,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel source/destination arrays.

        Delegates to :func:`repro.graph.builder.build_csr_from_edges`; kept
        here so ``CSRGraph.from_edges`` is the discoverable entry point.
        """
        from repro.graph.builder import build_csr_from_edges

        return build_csr_from_edges(
            src, dst, num_vertices=num_vertices, weights=weights, dedup=dedup
        )

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Return a graph sharing this topology with ``weights`` attached."""
        return CSRGraph(self.row_offsets, self.column_indices, weights, validate=False)

    def without_weights(self) -> "CSRGraph":
        """Return a graph sharing this topology with no weights (BFS input)."""
        if self.edge_weights is None:
            return self
        return CSRGraph(self.row_offsets, self.column_indices, None, validate=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.row_offsets) - 1

    @property
    def num_edges(self) -> int:
        return len(self.column_indices)

    @property
    def is_weighted(self) -> bool:
        return self.edge_weights is not None

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an int32 array (a view-free copy)."""
        return np.diff(self.row_offsets).astype(VERTEX_DTYPE)

    def out_degree(self, v: int) -> int:
        return int(self.row_offsets[v + 1] - self.row_offsets[v])

    def max_out_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(np.diff(self.row_offsets).max())

    def neighbors(self, v: int) -> np.ndarray:
        """Destination ids of ``v``'s out-edges (read-only view, no copy)."""
        return self.column_indices[self.row_offsets[v] : self.row_offsets[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges; requires a weighted graph."""
        if self.edge_weights is None:
            raise GraphFormatError("graph has no edge weights")
        return self.edge_weights[self.row_offsets[v] : self.row_offsets[v + 1]]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield ``(src, dst)`` pairs; intended for tests, not hot paths."""
        offsets = self.row_offsets
        cols = self.column_indices
        for v in range(self.num_vertices):
            for e in range(offsets[v], offsets[v + 1]):
                yield v, int(cols[e])

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge, aligned with ``column_indices``.

        This is the expansion CSC/edge-list conversions need; computed
        vectorized via ``np.repeat`` on the degree sequence.
        """
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.out_degrees()
        )

    # ------------------------------------------------------------------
    # Space accounting (Table I)
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Topology bytes: ``(|E| + |V| + 1)`` words, plus weights if present."""
        total = self.row_offsets.nbytes + self.column_indices.nbytes
        if self.edge_weights is not None:
            total += self.edge_weights.nbytes
        return total

    def topology_words(self) -> int:
        """The paper's Table I metric: topology size in 4-byte words.

        Exactly ``|E| + |V|`` — Table I counts one offset word per
        vertex; the storage sentinel (``row_offsets[|V|]``) is an
        implementation detail the paper's accounting excludes.
        """
        return self.num_edges + self.num_vertices

    def device_arrays(self) -> dict[str, np.ndarray]:
        """Arrays a framework must place in device memory to traverse."""
        arrays = {
            "row_offsets": self.row_offsets,
            "column_indices": self.column_indices,
        }
        if self.edge_weights is not None:
            arrays["edge_weights"] = self.edge_weights
        return arrays

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def reverse(self) -> "CSRGraph":
        """The transpose graph (CSC of this graph expressed as CSR)."""
        from repro.graph.builder import build_csr_from_edges

        return build_csr_from_edges(
            self.column_indices,
            self.edge_sources(),
            num_vertices=self.num_vertices,
            weights=self.edge_weights,
            dedup=False,
        )

    def to_scipy(self):
        """Export as ``scipy.sparse.csr_matrix`` (weights default to 1)."""
        import scipy.sparse as sp

        data = (
            self.edge_weights
            if self.edge_weights is not None
            else np.ones(self.num_edges, dtype=WEIGHT_DTYPE)
        )
        n = self.num_vertices
        return sp.csr_matrix(
            (data, self.column_indices, self.row_offsets.astype(np.int64)),
            shape=(n, n),
        )

    # ------------------------------------------------------------------
    # Validation & dunder protocol
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        offsets = self.row_offsets
        if len(offsets) < 1:
            raise GraphFormatError("row_offsets must have at least one entry")
        if offsets[0] != 0:
            raise GraphFormatError(f"row_offsets[0] must be 0, got {offsets[0]}")
        if offsets[-1] != len(self.column_indices):
            raise GraphFormatError(
                f"row_offsets[-1] ({offsets[-1]}) != num_edges "
                f"({len(self.column_indices)})"
            )
        if len(offsets) > 1 and np.any(np.diff(offsets) < 0):
            raise GraphFormatError("row_offsets must be non-decreasing")
        n = self.num_vertices
        if self.num_edges:
            cols = self.column_indices
            if cols.min() < 0 or cols.max() >= n:
                raise GraphFormatError(
                    f"column index out of range [0, {n}) "
                    f"(min {cols.min()}, max {cols.max()})"
                )
        if self.edge_weights is not None and len(self.edge_weights) != self.num_edges:
            raise GraphFormatError(
                f"edge_weights has {len(self.edge_weights)} entries, "
                f"expected {self.num_edges}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if not (
            np.array_equal(self.row_offsets, other.row_offsets)
            and np.array_equal(self.column_indices, other.column_indices)
        ):
            return False
        if (self.edge_weights is None) != (other.edge_weights is None):
            return False
        if self.edge_weights is not None:
            return np.array_equal(self.edge_weights, other.edge_weights)
        return True

    def __hash__(self):  # pragma: no cover - explicitness only
        return id(self)

    def __repr__(self) -> str:
        w = ", weighted" if self.is_weighted else ""
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}{w})"
