"""Virtual Split Transformation — Tigr's preprocessing (ASPLOS'18).

Tigr splits every vertex of out-degree > K into virtual nodes of degree
<= K **ahead of time**, producing a modified copy of the graph.  The paper
contrasts UDC against this: VST costs ``|E| + 2|N| + 2|V|`` topology words
(Table I, normalized 1.32 on LiveJournal) and a preprocessing pass, where
UDC costs nothing beyond CSR because it expands shadow vertices on the fly
from the *active set only*.

The arrays here follow that accounting exactly:

* ``column_indices`` — the original ``|E|`` adjacency array (shared).
* ``virtual_start`` — per virtual node, its first edge index (``|N|``).
* ``virtual_owner`` — per virtual node, the real vertex it belongs to
  (``|N|``).
* ``real_first_virtual`` / ``real_virtual_count`` — per real vertex, the
  range of its virtual nodes (``2|V|``).

A virtual node's edge slice ends at ``min(start + K, row_offsets[owner+1])``
— derivable, so no end array is stored (that is how Tigr reaches 2N rather
than 3N words).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE, WORD_BYTES


class VirtualSplitGraph:
    """Tigr-style virtually-split graph built from CSR at load time."""

    def __init__(self, csr: CSRGraph, degree_bound: int):
        if degree_bound < 1:
            raise ConfigError(f"degree_bound must be >= 1, got {degree_bound}")
        self.csr = csr
        self.degree_bound = int(degree_bound)

        degrees = csr.out_degrees().astype(np.int64)
        # Every vertex yields ceil(d / K) virtual nodes; zero-degree
        # vertices yield none (they can never propagate a label).
        parts = -(-degrees // self.degree_bound)
        self.real_virtual_count = parts.astype(VERTEX_DTYPE)

        n_virtual = int(parts.sum())
        self.num_virtual = n_virtual

        first = np.zeros(csr.num_vertices + 1, dtype=np.int64)
        np.cumsum(parts, out=first[1:])
        self.real_first_virtual = first[:-1].astype(OFFSET_DTYPE)

        # virtual_owner: vertex id repeated per part; virtual_start: the
        # owner's row offset plus K * (index of the part within the owner).
        self.virtual_owner = np.repeat(
            np.arange(csr.num_vertices, dtype=VERTEX_DTYPE), parts
        )
        within = np.arange(n_virtual, dtype=np.int64) - np.repeat(first[:-1], parts)
        self.virtual_start = (
            csr.row_offsets[self.virtual_owner].astype(np.int64)
            + within * self.degree_bound
        ).astype(OFFSET_DTYPE)

    def virtual_end(self, i: int) -> int:
        """Exclusive end edge-index of virtual node ``i`` (derived, Tigr-style)."""
        owner = self.virtual_owner[i]
        return int(
            min(
                self.virtual_start[i] + self.degree_bound,
                self.csr.row_offsets[owner + 1],
            )
        )

    def virtual_ends(self) -> np.ndarray:
        """Vectorized exclusive end indices for all virtual nodes."""
        owner_end = self.csr.row_offsets[self.virtual_owner + 1].astype(np.int64)
        return np.minimum(
            self.virtual_start.astype(np.int64) + self.degree_bound, owner_end
        ).astype(OFFSET_DTYPE)

    def virtual_degrees(self) -> np.ndarray:
        return (self.virtual_ends() - self.virtual_start).astype(VERTEX_DTYPE)

    @property
    def num_vertices(self) -> int:
        return self.csr.num_vertices

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges

    def topology_words(self) -> int:
        """Table I metric: ``|E| + 2|N| + 2|V|`` words."""
        return (
            self.csr.num_edges
            + 2 * self.num_virtual
            + 2 * self.csr.num_vertices
        )

    @property
    def nbytes(self) -> int:
        total = (
            self.csr.column_indices.nbytes
            + self.virtual_start.nbytes
            + self.virtual_owner.nbytes
            + self.real_first_virtual.nbytes
            + self.real_virtual_count.nbytes
        )
        if self.csr.edge_weights is not None:
            total += self.csr.edge_weights.nbytes
        return total

    def device_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            "vst_column_indices": self.csr.column_indices,
            "vst_virtual_start": self.virtual_start,
            "vst_virtual_owner": self.virtual_owner,
            "vst_real_first_virtual": self.real_first_virtual,
            "vst_real_virtual_count": self.real_virtual_count,
        }
        if self.csr.edge_weights is not None:
            arrays["vst_edge_weights"] = self.csr.edge_weights
        return arrays

    def __repr__(self) -> str:
        return (
            f"VirtualSplitGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|N|={self.num_virtual}, K={self.degree_bound})"
        )
