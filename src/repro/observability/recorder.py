"""Incident flight recorder for the serving plane.

A :class:`FlightRecorder` rides along with a
:class:`~repro.serving.service.TraversalService`, keeping a *bounded*
ring buffer of recent activity — terminal responses (with the metric
deltas they caused), breaker/health events, lane tags — and dumps a
deterministic **postmortem bundle** the moment something goes wrong:

* a typed :class:`~repro.errors.ReproError` surfaces (an error response,
  or an exception escaping ``serve`` entirely),
* a circuit breaker opens, or
* the brownout ladder escalates.

One bundle is four artifacts sharing a stem under ``out_dir``:

* ``<stem>.events.jsonl`` — the ring's entries, one JSON object per
  line, oldest first;
* ``<stem>.trace.json`` — a Chrome-trace slice of the service tracer's
  recent spans (loadable in Perfetto, clean under
  :func:`~repro.observability.export.validate_chrome_trace`);
* ``<stem>.metrics.json`` — the full
  :func:`~repro.observability.metrics.unified_snapshot` at dump time;
* ``<stem>.manifest.json`` — the trigger (error type, breaker lane, or
  brownout rung), the simulated timestamp, and the file list.

Everything in the bundle is a function of the simulated schedule, so a
reproduced run reproduces its postmortems byte-for-byte (the one
exception: ``cpu_oracle`` spans carry wall-clock durations by design).
The recorder is observational — it never touches the schedule — and
with no ``out_dir`` it still keeps the in-memory ``dumps`` manifests,
so tests can assert on triggers without any filesystem traffic.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError

#: Ring-entry kinds, for consumers of the events JSONL.
ENTRY_KINDS = ("serve", "health")

#: Health-event kinds that trigger a postmortem dump.
_TRIGGER_EVENTS = frozenset({"open"})


class FlightRecorder:
    """Bounded ring of recent serving activity + postmortem dumper."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        out_dir=None,
        max_dumps: int = 16,
        slice_ms: float = 250.0,
    ):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if max_dumps < 1:
            raise ConfigError(f"max_dumps must be >= 1, got {max_dumps}")
        if slice_ms <= 0:
            raise ConfigError(f"slice_ms must be > 0, got {slice_ms}")
        self.capacity = capacity
        self.out_dir = out_dir
        self.max_dumps = max_dumps
        #: Width of the Chrome-trace slice taken back from the trigger.
        self.slice_ms = slice_ms
        self.ring: deque = deque(maxlen=capacity)
        #: Manifest of every dump taken (kept even without ``out_dir``).
        self.dumps: list[dict] = []
        #: Dumps suppressed by the ``max_dumps`` cap.
        self.suppressed = 0
        self._service = None
        self._last_counts = (0, 0)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self.ring)}/{self.capacity} entries, "
            f"{len(self.dumps)} dumps)"
        )

    def attach(self, service) -> None:
        """Bind to a service.  With telemetry off, a tracer is attached
        so postmortems still carry a span slice — spans are
        observational, so this cannot perturb the schedule (the
        identity gate runs with the recorder on)."""
        self._service = service
        if service.tracer is None:
            from repro.observability.spans import Tracer

            service.tracer = Tracer()
        self._last_counts = (service.requests_served, service.requests_shed)

    # ------------------------------------------------------------------
    # Observation feed (called by the service)
    # ------------------------------------------------------------------

    def observe_response(self, response) -> None:
        """Record one terminal response; a typed-error response (not a
        shed — sheds are SLO outcomes, not incidents) triggers a dump."""
        service = self._service
        served = shed = 0
        if service is not None:
            served = service.requests_served - self._last_counts[0]
            shed = service.requests_shed - self._last_counts[1]
            self._last_counts = (
                service.requests_served, service.requests_shed,
            )
        error_type = None
        if response.error is not None:
            error_type = response.error.split(":", 1)[0]
        self.ring.append({
            "kind": "serve",
            "t_ms": response.finish_ms,
            "request_id": response.request_id,
            "seq": response.seq,
            "tenant": response.tenant,
            "endpoint": response.endpoint,
            "ok": response.ok,
            "shed": response.shed,
            "error": error_type,
            "worker": response.worker,
            "placement": response.placement,
            "attempts": response.attempts,
            "hedged": response.hedged,
            "latency_ms": response.latency_ms,
            "delta_served": served,
            "delta_shed": shed,
        })
        # Admission refusals (seq -1) are backpressure, not incidents —
        # they stay in the ring but don't trigger (a brownout-driven
        # refusal storm is caught by the brownout trigger itself).
        if not response.ok and not response.shed and response.seq >= 0:
            self.dump(
                trigger=f"error:{error_type}",
                t_ms=response.finish_ms,
                request_id=response.request_id,
            )

    def observe_events(self, events, lane: int) -> None:
        """Record health-plane transitions; breaker opens and brownout
        escalations trigger dumps."""
        for event in events:
            self.ring.append({
                "kind": "health",
                "t_ms": event.t_ms,
                "event": event.kind,
                "lane": -1 if event.lane is None else event.lane,
                "observed_lane": lane,
                "detail": event.detail,
            })
            if event.kind in _TRIGGER_EVENTS:
                self.dump(
                    trigger=f"breaker:lane{event.lane}",
                    t_ms=event.t_ms,
                )
            elif event.kind == "brownout" and _escalated(event.detail):
                self.dump(
                    trigger=f"brownout:{event.detail.replace(' ', '')}",
                    t_ms=event.t_ms,
                )

    def record_escape(self, exc, t_ms: float) -> None:
        """A typed error escaped ``serve`` entirely — the hardest
        failure shape (e.g. hedge legs disagreeing on labels)."""
        self.ring.append({
            "kind": "serve",
            "t_ms": t_ms,
            "request_id": "",
            "seq": -1,
            "ok": False,
            "shed": False,
            "error": type(exc).__name__,
            "escaped": True,
            "detail": str(exc),
        })
        self.dump(trigger=f"escape:{type(exc).__name__}", t_ms=t_ms)

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------

    def dump(self, trigger: str, t_ms: float, **extra) -> dict | None:
        """Take a postmortem now.  Returns the manifest, or ``None``
        when the ``max_dumps`` cap suppressed it."""
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        stem = f"postmortem-{len(self.dumps):03d}-{_slug(trigger)}"
        manifest = {
            "stem": stem,
            "trigger": trigger,
            "t_ms": t_ms,
            "entries": len(self.ring),
            "files": [],
            **extra,
        }
        if self.out_dir is not None:
            manifest["files"] = self._write_bundle(stem, manifest, t_ms)
        self.dumps.append(manifest)
        return manifest

    def _write_bundle(self, stem: str, manifest: dict, t_ms: float) -> list:
        import json
        from pathlib import Path

        from repro.observability.export import dumps_stable

        out = Path(self.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        files = []

        events_path = out / f"{stem}.events.jsonl"
        lines = [dumps_stable(entry) for entry in self.ring]
        events_path.write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8",
        )
        files.append(events_path.name)

        service = self._service
        if service is not None and service.tracer is not None:
            from repro.observability.export import to_chrome_trace
            from repro.observability.spans import Trace

            lo = t_ms - self.slice_ms
            records = [
                r for r in service.tracer.records if r.end_ms >= lo
            ]
            trace = Trace(records=records, meta={
                "postmortem": stem, "trigger": manifest["trigger"],
                "slice_lo_ms": lo, "slice_hi_ms": t_ms,
            })
            trace_path = out / f"{stem}.trace.json"
            trace_path.write_text(
                dumps_stable(to_chrome_trace(trace)) + "\n",
                encoding="utf-8",
            )
            files.append(trace_path.name)

        if service is not None:
            from repro.observability.metrics import unified_snapshot

            metrics_path = out / f"{stem}.metrics.json"
            metrics_path.write_text(
                dumps_stable(unified_snapshot(service=service)) + "\n",
                encoding="utf-8",
            )
            files.append(metrics_path.name)

        manifest_path = out / f"{stem}.manifest.json"
        files.append(manifest_path.name)
        manifest = dict(manifest)
        manifest["files"] = files
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return files


def _escalated(detail: str) -> bool:
    """Whether a ``"level X -> Y"`` brownout detail moved up-ladder."""
    try:
        before, after = detail.removeprefix("level ").split(" -> ")
        return int(after) > int(before)
    except (ValueError, AttributeError):
        return True


def _slug(text: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in text
    )
