"""Observability: span tracing, metrics, and trace exporters.

The subsystem has three planes (see ``docs/observability.md``):

* :mod:`repro.observability.spans` — a zero-cost-when-disabled span
  tracer over the simulated clock.  Enable with
  ``EtaGraphConfig(telemetry=True)``; the resulting
  :class:`Trace` hangs off :attr:`TraversalResult.trace`.
* :mod:`repro.observability.metrics` — a labelled counter / gauge /
  histogram registry that wraps the repo's existing measurement layers
  (:class:`~repro.gpu.profiler.KernelCounters`, memo and residency
  counters, the bench ``error_taxonomy``) behind one ``snapshot()``.
* :mod:`repro.observability.export` — deterministic Chrome trace-event
  JSON (Perfetto-loadable; compute / transfer / migration tracks
  reproduce Fig. 4 interactively) and a JSONL event log, plus loaders
  and a schema validator.

Two serving-plane companions ride on top (``docs/observability.md``,
"Request tracing, SLOs, and postmortems"):

* :mod:`repro.observability.slo` — per-tenant multi-window burn-rate
  monitors against declared deadline-hit-rate objectives, with alert
  transitions exported through the registry and onto the trace's
  ``alerts`` track.
* :mod:`repro.observability.recorder` — a bounded flight recorder that
  dumps deterministic postmortem bundles (events JSONL + Chrome-trace
  slice + metrics snapshot + manifest) when a typed error surfaces, a
  breaker opens, or the brownout ladder escalates.

``python -m repro.observability`` exposes ``trace`` / ``summarize``
(with ``--request`` for one request's span tree) / ``validate`` /
``identity`` / ``slo`` subcommands; ``identity`` gates the
telemetry-off-is-bit-identical contract in CI.
"""

from repro.observability.recorder import FlightRecorder
from repro.observability.slo import (
    SLO_STATES,
    SLOAlert,
    SLOMonitor,
    SLOPolicy,
    render_slo_report,
)

from repro.observability.export import (
    dumps_stable,
    load_trace,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.metrics import MetricsRegistry, unified_snapshot
from repro.observability.spans import CATEGORIES, SpanRecord, Trace, Tracer
from repro.observability.summarize import render_request, render_summary

__all__ = [
    "CATEGORIES",
    "FlightRecorder",
    "MetricsRegistry",
    "SLOAlert",
    "SLOMonitor",
    "SLOPolicy",
    "SLO_STATES",
    "SpanRecord",
    "Trace",
    "Tracer",
    "dumps_stable",
    "load_trace",
    "render_request",
    "render_slo_report",
    "render_summary",
    "to_chrome_trace",
    "to_jsonl",
    "unified_snapshot",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
