"""Per-tenant SLO burn-rate monitors on the simulated clock.

A tenant declares a *deadline-hit-rate objective* (e.g. "99% of my
requests meet their deadline").  The monitor watches the stream of
terminal responses the service produces and tracks, per tenant, how
fast the tenant's *error budget* (``1 - objective``) is being consumed:

    burn_rate = miss_rate_in_window / (1 - objective)

A burn rate of 1.0 means the tenant is consuming budget exactly at the
declared rate; 2.0 means twice as fast.  Following the classic
multi-window pattern, two sliding windows over the *simulated* clock
are tracked per tenant:

* a **fast** window (reacts quickly, noisy), and
* a **slow** window (smooth, slow to clear).

The alert ladder is ``ok -> warn -> page``: ``warn`` when the slow
window burns above :attr:`SLOPolicy.warn_burn`, ``page`` when *both*
windows burn above :attr:`SLOPolicy.page_burn` (the fast window proves
the problem is still happening, the slow window proves it is material).
Every transition is returned to the caller as an :class:`SLOAlert` —
the serving frontend turns them into ``slo_alert`` events on the
``alerts`` trace track and counters in its registry.

Everything is a pure function of the (tenant, t_ms, hit) stream on the
simulated clock, so SLO monitoring is deterministic and replayable, and
— like all telemetry here — purely observational: it never touches the
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque

from repro.errors import ConfigError

#: Alert ladder, in escalation order (index = severity).
SLO_STATES = ("ok", "warn", "page")


@dataclass(frozen=True)
class SLOPolicy:
    """Burn-rate alerting shape shared by every tenant.

    Per-tenant *objectives* (the declared hit rate) live beside the
    policy in :class:`SLOMonitor`; the policy holds the windows and
    thresholds, which describe how to alert, not what to promise.
    """

    #: Deadline-hit-rate objective for tenants without a declared one.
    objective: float = 0.9
    #: Fast (reactive) sliding window, simulated ms.
    fast_window_ms: float = 40.0
    #: Slow (smoothing) sliding window, simulated ms.
    slow_window_ms: float = 200.0
    #: Burn rate at which the slow window raises ``warn``.
    warn_burn: float = 1.0
    #: Burn rate both windows must reach to raise ``page``.
    page_burn: float = 2.0
    #: Samples a tenant needs in the slow window before any alert —
    #: two early misses must not page a tenant that has sent three
    #: requests.
    min_samples: int = 4

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ConfigError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.fast_window_ms <= 0 or self.slow_window_ms <= 0:
            raise ConfigError("SLO windows must be positive")
        if self.fast_window_ms > self.slow_window_ms:
            raise ConfigError(
                "fast_window_ms must not exceed slow_window_ms "
                f"({self.fast_window_ms} > {self.slow_window_ms})"
            )
        if self.warn_burn <= 0 or self.page_burn <= 0:
            raise ConfigError("burn thresholds must be positive")
        if self.min_samples < 1:
            raise ConfigError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )


@dataclass(frozen=True)
class SLOAlert:
    """One alert-state transition (returned by :meth:`SLOMonitor.record`)."""

    tenant: str
    t_ms: float
    state: str
    previous: str
    fast_burn: float
    slow_burn: float

    @property
    def escalation(self) -> bool:
        return SLO_STATES.index(self.state) > SLO_STATES.index(self.previous)


@dataclass
class _TenantWindow:
    """Sliding sample window + lifetime totals for one tenant."""

    objective: float
    #: (t_ms, hit) samples inside the slow window, oldest first.
    samples: deque = field(default_factory=deque)
    state: str = "ok"
    total: int = 0
    hits: int = 0
    transitions: int = 0


class SLOMonitor:
    """Tracks burn rates and alert states for every observed tenant."""

    def __init__(
        self,
        policy: SLOPolicy | None = None,
        objectives: dict[str, float] | None = None,
    ):
        self.policy = policy or SLOPolicy()
        #: Declared per-tenant hit-rate objectives; tenants not listed
        #: fall back to the policy's default objective.
        self.objectives = dict(objectives or {})
        for tenant, objective in self.objectives.items():
            if not 0.0 < objective < 1.0:
                raise ConfigError(
                    f"objective for tenant {tenant!r} must be in (0, 1), "
                    f"got {objective}"
                )
        self._tenants: dict[str, _TenantWindow] = {}
        #: Every transition ever raised, in record order.
        self.alerts: list[SLOAlert] = []

    def __repr__(self) -> str:
        paging = sum(1 for w in self._tenants.values() if w.state == "page")
        return (
            f"SLOMonitor({len(self._tenants)} tenants, "
            f"{len(self.alerts)} transitions, {paging} paging)"
        )

    def _window(self, tenant: str) -> _TenantWindow:
        window = self._tenants.get(tenant)
        if window is None:
            window = _TenantWindow(
                objective=self.objectives.get(
                    tenant, self.policy.objective,
                ),
            )
            self._tenants[tenant] = window
        return window

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, tenant: str, t_ms: float, hit: bool) -> list[SLOAlert]:
        """Feed one terminal outcome; returns any state transition it
        caused (a list of 0 or 1 alerts — a list so callers can extend
        without special-casing)."""
        policy = self.policy
        window = self._window(tenant)
        window.total += 1
        window.hits += int(hit)
        window.samples.append((t_ms, hit))
        cutoff = t_ms - policy.slow_window_ms
        while window.samples and window.samples[0][0] < cutoff:
            window.samples.popleft()

        fast = self._burn(window, t_ms, policy.fast_window_ms)
        slow = self._burn(window, t_ms, policy.slow_window_ms)
        if len(window.samples) < policy.min_samples:
            state = "ok"
        elif fast >= policy.page_burn and slow >= policy.page_burn:
            state = "page"
        elif slow >= policy.warn_burn:
            state = "warn"
        else:
            state = "ok"
        if state == window.state:
            return []
        alert = SLOAlert(
            tenant=tenant, t_ms=t_ms, state=state,
            previous=window.state, fast_burn=fast, slow_burn=slow,
        )
        window.state = state
        window.transitions += 1
        self.alerts.append(alert)
        return [alert]

    def _burn(
        self, window: _TenantWindow, now_ms: float, span_ms: float,
    ) -> float:
        lo = now_ms - span_ms
        total = misses = 0
        for t, hit in window.samples:
            if t >= lo:
                total += 1
                misses += int(not hit)
        if total == 0:
            return 0.0
        return (misses / total) / (1.0 - window.objective)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def state(self, tenant: str) -> str:
        window = self._tenants.get(tenant)
        return window.state if window is not None else "ok"

    def burn_rate(self, tenant: str, now_ms: float, *,
                  fast: bool = True) -> float:
        """Current burn rate of one tenant's fast (or slow) window."""
        window = self._tenants.get(tenant)
        if window is None:
            return 0.0
        span = (self.policy.fast_window_ms if fast
                else self.policy.slow_window_ms)
        return self._burn(window, now_ms, span)

    @property
    def worst_state(self) -> str:
        """The most escalated state any tenant is in."""
        worst = 0
        for window in self._tenants.values():
            worst = max(worst, SLO_STATES.index(window.state))
        return SLO_STATES[worst]

    def snapshot(self, now_ms: float | None = None) -> dict:
        """Per-tenant SLO status as one plain dict (tenants sorted)."""
        out = {}
        for tenant in sorted(self._tenants):
            window = self._tenants[tenant]
            now = now_ms
            if now is None:
                now = window.samples[-1][0] if window.samples else 0.0
            out[tenant] = {
                "objective": window.objective,
                "samples": window.total,
                "hit_rate": (window.hits / window.total
                             if window.total else 1.0),
                "fast_burn": self._burn(
                    window, now, self.policy.fast_window_ms,
                ),
                "slow_burn": self._burn(
                    window, now, self.policy.slow_window_ms,
                ),
                "state": window.state,
                "transitions": window.transitions,
            }
        return out

    def export(self, registry, now_ms: float | None = None) -> None:
        """Mirror the current SLO status into a
        :class:`~repro.observability.metrics.MetricsRegistry` (gauges
        keyed by tenant; the transition counter carries the ladder)."""
        for tenant, status in self.snapshot(now_ms).items():
            registry.set_gauge("slo.objective", status["objective"],
                               tenant=tenant)
            registry.set_gauge("slo.hit_rate", status["hit_rate"],
                               tenant=tenant)
            registry.set_gauge("slo.burn_rate", status["fast_burn"],
                               tenant=tenant, window="fast")
            registry.set_gauge("slo.burn_rate", status["slow_burn"],
                               tenant=tenant, window="slow")
            registry.set_gauge(
                "slo.state", float(SLO_STATES.index(status["state"])),
                tenant=tenant,
            )
            registry.set_gauge(
                "slo.transitions", float(status["transitions"]),
                tenant=tenant,
            )


def render_slo_report(monitor: SLOMonitor, now_ms: float | None = None) -> str:
    """The ``python -m repro.observability slo`` table."""
    from repro.utils.tables import render_table

    rows = []
    for tenant, status in monitor.snapshot(now_ms).items():
        rows.append([
            tenant,
            f"{status['objective'] * 100:.1f}%",
            str(status["samples"]),
            f"{status['hit_rate'] * 100:.1f}%",
            f"{status['fast_burn']:.2f}",
            f"{status['slow_burn']:.2f}",
            status["state"],
            str(status["transitions"]),
        ])
    table = render_table(
        ["tenant", "objective", "samples", "hit rate",
         "fast burn", "slow burn", "state", "transitions"],
        rows,
    )
    alerts = [
        f"  {a.t_ms:9.3f} ms  {a.tenant:<12} {a.previous} -> {a.state} "
        f"(fast {a.fast_burn:.2f}, slow {a.slow_burn:.2f})"
        for a in monitor.alerts
    ]
    lines = ["Per-tenant SLO burn rates", "", table]
    if alerts:
        lines += ["", "Alert transitions:", *alerts]
    return "\n".join(lines)


def run_slo_demo(seed: int = 0):
    """A seeded serving workload that exercises the SLO ladder.

    Three tenants with declared objectives: an interactive tenant with
    tight (sometimes impossible) deadlines, a best-effort batch tenant,
    and an analytics tenant with generous deadlines.  Returns the
    served :class:`~repro.serving.service.TraversalService` (its
    ``slo`` attribute is the monitor to report on).
    """
    import numpy as np

    from repro.graph.generators import erdos_renyi
    from repro.serving.admission import TenantQuota
    from repro.serving.requests import VisitRequest
    from repro.serving.service import TraversalService

    csr = erdos_renyi(240, 1400, seed=seed)
    monitor = SLOMonitor(
        SLOPolicy(),
        objectives={"interactive": 0.95, "analytics": 0.8, "batch": 0.5},
    )
    service = TraversalService(
        csr, pool_size=2, telemetry=True, health=True, slo=monitor,
        default_quota=TenantQuota(max_pending=16),
    )
    rng = np.random.default_rng([0x510, seed])
    problems = ("bfs", "cc")
    batch: list[VisitRequest] = []
    for i in range(120):
        tenant = ("interactive", "batch", "analytics")[i % 3]
        deadline = None
        if tenant == "interactive":
            # Alternate between generous and deliberately tight
            # deadlines so the miss stream actually burns budget.
            deadline = 0.08 if i % 6 else 8.0
        elif tenant == "analytics":
            deadline = 30.0
        batch.append(VisitRequest(
            problem=problems[i % 2],
            source=int(rng.integers(csr.num_vertices)),
            tenant=tenant,
            deadline_ms=deadline,
            arrival_ms=0.25 * i,
        ))
    # Serve in arrival-ordered slices (a closed queue, not one giant
    # batch) so the sample stream reaching the monitor is causal.
    for lo in range(0, len(batch), 12):
        service.serve(batch[lo:lo + 12])
    return service
