"""Human-readable trace summaries (``python -m repro.observability``).

Renders, for one trace: a per-track busy/overlap table, the top-k hot
span groups (aggregated by category + name), and a flame summary — the
span tree collapsed by name-path with inclusive times and call counts.
"""

from __future__ import annotations

from repro.observability.spans import SpanRecord, Trace
from repro.utils.intervals import intersection_length, union
from repro.utils.tables import render_table


def _fmt_ms(t: float) -> str:
    return f"{t:.3f}"


def track_table(trace: Trace) -> str:
    """Busy time per category track, plus compute/transfer overlap."""
    rows = []
    for cat in trace.categories():
        records = [r for r in trace.records if r.category == cat]
        rows.append([
            cat,
            len(records),
            _fmt_ms(trace.busy_ms(cat)),
        ])
    text = render_table(["track", "events", "busy ms"], rows,
                        title="Tracks")
    compute = union([(r.start_ms, r.end_ms) for r in trace.records
                     if r.category == "compute"])
    moved = union([(r.start_ms, r.end_ms) for r in trace.records
                   if r.category in ("transfer", "migration")])
    if compute and moved:
        overlap = intersection_length(compute, moved)
        span = trace.span_ms
        frac = overlap / span if span > 0 else 0.0
        text += (
            f"\ncompute/data-movement overlap: {_fmt_ms(overlap)} ms "
            f"({100 * frac:.0f}% of the {_fmt_ms(span)} ms span)"
        )
    return text


def hot_spans(trace: Trace, top: int = 10) -> str:
    """Top-k span groups by total inclusive time."""
    groups: dict[tuple[str, str], list[SpanRecord]] = {}
    for r in trace.records:
        groups.setdefault((r.category, r.name), []).append(r)
    ranked = sorted(
        groups.items(),
        key=lambda kv: (-sum(r.duration_ms for r in kv[1]), kv[0]),
    )[:top]
    rows = []
    for (cat, name), records in ranked:
        total = sum(r.duration_ms for r in records)
        longest = max(records, key=lambda r: r.duration_ms)
        rows.append([
            f"{cat}/{name}",
            len(records),
            _fmt_ms(total),
            _fmt_ms(total / len(records)),
            _fmt_ms(longest.duration_ms),
        ])
    return render_table(
        ["span", "count", "total ms", "mean ms", "max ms"], rows,
        title=f"Top {len(rows)} hot spans",
    )


def flame_summary(trace: Trace, max_depth: int = 4,
                  max_children: int = 8) -> str:
    """The span tree collapsed by name at each level.

    Each line shows one name-path with its call count and total
    inclusive milliseconds, indented by depth — a text flame graph.
    """
    by_parent: dict[int | None, list[SpanRecord]] = {}
    for r in trace.records:
        by_parent.setdefault(r.parent, []).append(r)

    lines: list[str] = []

    def walk(records: list[SpanRecord], depth: int) -> None:
        if depth >= max_depth or not records:
            return
        groups: dict[str, list[SpanRecord]] = {}
        for r in sorted(records, key=lambda r: (r.start_ms, r.sid)):
            groups.setdefault(f"{r.category}/{r.name}", []).append(r)
        ranked = sorted(
            groups.items(),
            key=lambda kv: (-sum(r.duration_ms for r in kv[1]), kv[0]),
        )
        for name, group in ranked[:max_children]:
            total = sum(r.duration_ms for r in group)
            lines.append(
                f"{'  ' * depth}{name}  x{len(group)}  {_fmt_ms(total)} ms"
            )
            children = [
                c for r in group for c in by_parent.get(r.sid, [])
            ]
            walk(children, depth + 1)
        if len(ranked) > max_children:
            lines.append(f"{'  ' * depth}... {len(ranked) - max_children} more")

    walk(by_parent.get(None, []), 0)
    return "flame summary (inclusive ms):\n" + "\n".join(
        lines or ["  (no spans)"]
    )


#: Attrs hidden from the request-tree rendering (redundant per line).
_QUIET_ATTRS = frozenset({"request_id"})


def _span_line(rec: SpanRecord, depth: int) -> str:
    attrs = ", ".join(
        f"{k}={rec.attrs[k]}" for k in sorted(rec.attrs)
        if k not in _QUIET_ATTRS
    )
    line = (
        f"{'  ' * depth}{rec.name} [{rec.category}]  "
        f"{_fmt_ms(rec.start_ms)}..{_fmt_ms(rec.end_ms)} ms  "
        f"(+{_fmt_ms(rec.duration_ms)})"
    )
    if attrs:
        line += f"  {{{attrs}}}"
    return line


def request_ids(trace: Trace) -> list[str]:
    """Every ``request_id`` with a ``request`` span in this trace."""
    return sorted({
        r.attrs["request_id"]
        for r in trace.records
        if r.name == "request" and "request_id" in r.attrs
    })


def render_request(
    trace: Trace, request_id: str,
    max_depth: int = 8, max_children: int = 16,
) -> str:
    """One request's causally-ordered span tree (``summarize
    --request <id>``): queue wait, dispatch, grafted engine/resilience
    attempts, hedge legs — and, for wave-coalesced requests, the shared
    ``wave`` traversal their ``wave_sid`` attr points at.
    """
    roots = [
        r for r in trace.records
        if r.name == "request" and r.attrs.get("request_id") == request_id
    ]
    if not roots:
        known = request_ids(trace)
        head = ", ".join(known[:8]) + (" ..." if len(known) > 8 else "")
        return (
            f"no request span with request_id={request_id!r}"
            + (f" (known: {head})" if known else " (trace has none)")
        )
    lines: list[str] = []

    def walk(rec: SpanRecord, depth: int) -> None:
        lines.append(_span_line(rec, depth))
        if depth + 1 >= max_depth:
            return
        children = trace.children_of(rec.sid)
        for child in children[:max_children]:
            walk(child, depth + 1)
        if len(children) > max_children:
            lines.append(
                f"{'  ' * (depth + 1)}... "
                f"{len(children) - max_children} more"
            )

    for root in roots:
        walk(root, 0)
        wave_sid = root.attrs.get("wave_sid")
        if wave_sid is not None:
            wave = next(
                (r for r in trace.records if r.sid == wave_sid), None,
            )
            if wave is not None:
                lines.append("shared wave traversal (via wave_sid):")
                walk(wave, 1)
    return f"request {request_id}:\n" + "\n".join(lines)


def render_summary(trace: Trace, top: int = 10) -> str:
    """The full per-query summary the CLI prints."""
    meta = ", ".join(f"{k}={trace.meta[k]}" for k in sorted(trace.meta))
    head = f"trace: {len(trace.records)} spans over {trace.span_ms:.3f} ms"
    if meta:
        head += f"\n  {meta}"
    return "\n\n".join([
        head,
        track_table(trace),
        hot_spans(trace, top=top),
        flame_summary(trace),
    ])
