"""Observability CLI: record, inspect and validate traces.

Usage::

    python -m repro.observability trace --graph slashdot --problem bfs \\
        --out /tmp/trace.json                 # record one traced query
    python -m repro.observability summarize /tmp/trace.json --top 8
    python -m repro.observability summarize /tmp/serve.json \\
        --request req-00003                   # one request's span tree
    python -m repro.observability validate /tmp/trace.json
    python -m repro.observability identity                # telemetry gate
    python -m repro.observability slo                     # burn-rate report

``trace`` runs one query with ``EtaGraphConfig(telemetry=True)`` and
writes the Chrome trace-event JSON (open it at https://ui.perfetto.dev);
``--jsonl`` additionally writes the JSONL event log.  ``identity``
serves the same query stream with telemetry off and on and compares
output digests (labels + simulated clocks) — telemetry must observe,
never perturb.  Exit status 0 when the contract holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys


def _trace(argv: list[str]) -> int:
    from repro.core.config import EtaGraphConfig
    from repro.core.session import EngineSession
    from repro.graph import datasets
    from repro.observability.export import validate_chrome_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.observability trace",
        description="Run one traced query and export the trace.",
    )
    parser.add_argument("--graph", default="slashdot")
    parser.add_argument("--problem", default="bfs",
                        choices=["bfs", "sssp", "cc", "sswp"])
    parser.add_argument("--source", type=int, default=None,
                        help="query source (default: the dataset's)")
    parser.add_argument("--out", default=None,
                        help="Chrome trace-event JSON path")
    parser.add_argument("--jsonl", default=None,
                        help="also write the JSONL event log here")
    parser.add_argument("--top", type=int, default=10,
                        help="hot spans to show in the summary")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="skip the printed summary")
    args = parser.parse_args(argv)

    weighted = args.problem in ("sssp", "sswp")
    csr, query_source = datasets.load(args.graph, weighted=weighted)
    source = args.source if args.source is not None else int(query_source)
    config = EtaGraphConfig(telemetry=True)
    with EngineSession(csr, config) as session:
        result = session.query(args.problem, source)
    trace = result.trace
    if trace is None:
        print("error: telemetry=True produced no trace", file=sys.stderr)
        return 1
    if args.out:
        trace.save_chrome(args.out)
        problems = validate_chrome_trace(trace.to_chrome_trace())
        if problems:
            print("exported trace fails schema validation:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"wrote {args.out} ({len(trace)} spans; open in Perfetto)")
    if args.jsonl:
        trace.save_jsonl(args.jsonl)
        print(f"wrote {args.jsonl}")
    if not args.quiet:
        print(trace.summary(top=args.top))
    return 0


def _summarize(argv: list[str]) -> int:
    from repro.observability.export import load_trace
    from repro.observability.summarize import render_request

    parser = argparse.ArgumentParser(
        prog="python -m repro.observability summarize",
        description="Per-query flame summary and top-k hot spans of a "
                    "trace file (Chrome JSON or JSONL); with --request, "
                    "one request's causally-ordered span tree instead.",
    )
    parser.add_argument("file")
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument(
        "--request", default=None, metavar="REQUEST_ID",
        help="render the span tree of one served request "
             "(queue -> dispatch -> attempts/hedges -> engine kernels)",
    )
    args = parser.parse_args(argv)
    trace = load_trace(args.file)
    if args.request is not None:
        text = render_request(trace, args.request)
        print(text)
        return 0 if not text.startswith("no request span") else 1
    print(trace.summary(top=args.top))
    return 0


def _slo(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability slo",
        description="Run a seeded multi-tenant serving workload with "
                    "SLO burn-rate monitors on and print the per-tenant "
                    "burn/alert report.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace-out", default=None,
        help="also write the run's Chrome trace here (the alerts track "
             "carries the slo_alert transitions)",
    )
    args = parser.parse_args(argv)

    from repro.observability.slo import render_slo_report, run_slo_demo

    service = run_slo_demo(args.seed)
    print(render_slo_report(service.slo, now_ms=service.clock_ms))
    if args.trace_out:
        service.trace().save_chrome(args.trace_out)
        print(f"\nwrote {args.trace_out}")
    # A demo without a single transition would make the report (and the
    # CI job running it) vacuous.
    return 0 if service.slo.alerts else 1


def _validate(argv: list[str]) -> int:
    import json

    from repro.observability.export import validate_chrome_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.observability validate",
        description="Check a Chrome trace-event JSON file against the "
                    "schema the exporter promises.",
    )
    parser.add_argument("file")
    args = parser.parse_args(argv)
    with open(args.file) as fh:
        obj = json.load(fh)
    problems = validate_chrome_trace(obj)
    if problems:
        print(f"{args.file}: {len(problems)} schema problems:")
        for p in problems:
            print(f"  {p}")
        return 1
    n = len(obj.get("traceEvents", []))
    print(f"{args.file}: valid Chrome trace ({n} events)")
    return 0


def _identity(argv: list[str]) -> int:
    from repro.core.config import EtaGraphConfig, MemoryMode
    from repro.core.session import EngineSession
    from repro.graph import datasets
    from repro.resilience.chaos import result_digest

    parser = argparse.ArgumentParser(
        prog="python -m repro.observability identity",
        description="Telemetry-off runs must be bit-identical to "
                    "telemetry-on runs (labels + simulated clocks).",
    )
    parser.add_argument("--graphs", nargs="+", default=["slashdot"])
    parser.add_argument("--problems", nargs="+", default=["bfs", "cc"])
    parser.add_argument("--sources", nargs="+", type=int, default=None)
    args = parser.parse_args(argv)

    failures: list[str] = []
    checks = 0
    for name in args.graphs:
        weighted = any(p in ("sssp", "sswp") for p in args.problems)
        csr, query_source = datasets.load(name, weighted=weighted)
        sources = tuple(args.sources) if args.sources else \
            (0, int(query_source))
        for mode in (MemoryMode.UM_PREFETCH, MemoryMode.DEVICE):
            off_cfg = EtaGraphConfig(memory_mode=mode)
            on_cfg = EtaGraphConfig(memory_mode=mode, telemetry=True)
            with EngineSession(csr, off_cfg) as off, \
                    EngineSession(csr, on_cfg) as on:
                for problem in args.problems:
                    for source in sources:
                        r_off = off.query(problem, source)
                        r_on = on.query(problem, source)
                        checks += 1
                        where = f"{name}/{mode.value}/{problem}/src={source}"
                        if r_off.trace is not None:
                            failures.append(
                                f"{where}: telemetry-off run grew a trace"
                            )
                        if r_on.trace is None or len(r_on.trace) == 0:
                            failures.append(
                                f"{where}: telemetry-on run has no trace"
                            )
                        d_off, d_on = result_digest(r_off), result_digest(r_on)
                        if d_off != d_on:
                            failures.append(
                                f"{where}: telemetry-on digest {d_on} != "
                                f"telemetry-off digest {d_off}"
                            )
    if failures:
        print(f"{len(failures)} telemetry-identity violations:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"telemetry identity holds: {checks} query pairs on "
        f"{'/'.join(args.graphs)} hash-identical with telemetry off/on"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["trace"]:
        return _trace(argv[1:])
    if argv[:1] == ["summarize"]:
        return _summarize(argv[1:])
    if argv[:1] == ["validate"]:
        return _validate(argv[1:])
    if argv[:1] == ["identity"]:
        return _identity(argv[1:])
    if argv[:1] == ["slo"]:
        return _slo(argv[1:])
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
