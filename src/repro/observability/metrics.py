"""Metrics registry: named counters, gauges and histograms with labels.

The registry *wraps* the numbers the repo already measures — it does not
replace them.  :class:`~repro.gpu.profiler.KernelCounters` stays the
kernel-model's source of truth, the session keeps its memo counters, the
UM manager its residency bookkeeping, the bench runner its
``error_taxonomy`` — :func:`unified_snapshot` lifts all of them into one
labelled namespace behind a single :meth:`MetricsRegistry.snapshot`.

Series identity is ``name{label=value,...}`` with labels sorted by key.
Label cardinality is bounded per metric (:attr:`MetricsRegistry.
max_series`): once a metric has that many distinct label sets, further
new label sets are folded into an ``overflow="true"`` series and counted
in ``dropped_series`` — a registry can never be grown without bound by
unbounded label values (vertex ids, file paths, ...).

Metric name conventions (see ``docs/observability.md`` for the full
table): dot-separated namespaces, ``*_ms`` for simulated milliseconds,
``*_bytes`` for bytes; counters are monotonic sums, gauges are
last-write-wins levels, histograms carry ``count/sum/min/max`` plus
decade buckets.
"""

from __future__ import annotations

import math


def series_key(name: str, labels: dict) -> str:
    """Canonical series identity: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters / gauges / histograms behind one ``snapshot()``."""

    def __init__(self, max_series: int = 64):
        self.max_series = max_series
        #: Metric name -> kind ("counter" | "gauge" | "histogram").
        self._kinds: dict[str, str] = {}
        #: Metric name -> {series_key: value-or-summary}.
        self._series: dict[str, dict[str, object]] = {}
        #: New label sets refused by the cardinality bound.
        self.dropped_series = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _slot(self, name: str, kind: str, labels: dict) -> str:
        seen = self._kinds.get(name)
        if seen is None:
            self._kinds[name] = kind
            self._series[name] = {}
        elif seen != kind:
            raise ValueError(
                f"metric {name!r} is a {seen}, not a {kind}"
            )
        key = series_key(name, labels)
        series = self._series[name]
        if key not in series and len(series) >= self.max_series:
            self.dropped_series += 1
            key = series_key(name, {"overflow": "true"})
        return key

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add to a monotonic counter series."""
        key = self._slot(name, "counter", labels)
        series = self._series[name]
        series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a level (last write wins)."""
        key = self._slot(name, "gauge", labels)
        self._series[name][key] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into a histogram series."""
        key = self._slot(name, "histogram", labels)
        series = self._series[name]
        summary = series.get(key)
        if summary is None:
            summary = {"count": 0, "sum": 0.0,
                       "min": float("inf"), "max": float("-inf"),
                       "buckets": {}}
            series[key] = summary
        value = float(value)
        summary["count"] += 1
        summary["sum"] += value
        summary["min"] = min(summary["min"], value)
        summary["max"] = max(summary["max"], value)
        bucket = _decade_bucket(value)
        summary["buckets"][bucket] = summary["buckets"].get(bucket, 0) + 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic nested view of everything recorded.

        ``{"counters": {...}, "gauges": {...}, "histograms": {...},
        "dropped_series": n}`` with every mapping sorted by key.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._kinds):
            kind = self._kinds[name]
            series = self._series[name]
            bucket = out[kind + "s"]
            for key in sorted(series):
                value = series[key]
                if kind == "histogram":
                    value = dict(value)
                    value["buckets"] = {
                        k: value["buckets"][k]
                        for k in sorted(value["buckets"])
                    }
                bucket[key] = value
        out["dropped_series"] = self.dropped_series
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters/gauges/histograms into this
        one (counter values add, gauges take the other's level,
        histogram summaries combine)."""
        for name, kind in other._kinds.items():
            seen = self._kinds.get(name)
            if seen is None:
                self._kinds[name] = kind
                self._series[name] = {}
            elif seen != kind:
                raise ValueError(f"metric {name!r} is a {seen}, not a {kind}")
            series = self._series[name]
            for key, value in other._series[name].items():
                if key not in series and len(series) >= self.max_series:
                    self.dropped_series += 1
                    key = series_key(name, {"overflow": "true"})
                if kind == "counter":
                    series[key] = series.get(key, 0.0) + value
                elif kind == "gauge":
                    series[key] = value
                else:
                    mine = series.get(key)
                    if mine is None:
                        series[key] = {
                            **value, "buckets": dict(value["buckets"]),
                        }
                    else:
                        mine["count"] += value["count"]
                        mine["sum"] += value["sum"]
                        mine["min"] = min(mine["min"], value["min"])
                        mine["max"] = max(mine["max"], value["max"])
                        for b, n in value["buckets"].items():
                            mine["buckets"][b] = mine["buckets"].get(b, 0) + n


def _decade_bucket(value: float) -> str:
    """Power-of-ten bucket label: ``"<=1e+03"`` holds (1e2, 1e3]."""
    if value <= 0 or not math.isfinite(value):
        return "<=0"
    return f"<=1e{math.ceil(math.log10(value)):+03d}"


# ----------------------------------------------------------------------
# Wrappers over the existing measurement layers
# ----------------------------------------------------------------------

def add_kernel_counters(reg: MetricsRegistry, counters, **labels) -> None:
    """Lift a :class:`~repro.gpu.profiler.KernelCounters` accumulation
    into ``kernel.*`` counters plus derived-ratio gauges."""
    for field_name, value in counters.as_dict().items():
        reg.inc(f"kernel.{field_name}", float(value), **labels)
    for ratio_name, value in counters.derived_dict().items():
        reg.set_gauge(f"kernel.{ratio_name}", value, **labels)


def add_profiler(reg: MetricsRegistry, profiler, **labels) -> None:
    """Lift a :class:`~repro.gpu.profiler.Profiler` (kernel counters,
    PCIe copies, UM migrations) into the registry."""
    add_kernel_counters(reg, profiler.kernels, **labels)
    reg.inc("transfer.h2d_bytes", profiler.h2d_bytes, **labels)
    reg.inc("transfer.h2d_ms", profiler.h2d_time_ms, **labels)
    reg.inc("transfer.d2h_bytes", profiler.d2h_bytes, **labels)
    reg.inc("transfer.d2h_ms", profiler.d2h_time_ms, **labels)
    reg.inc("um.migration_ms", profiler.migration_time_ms, **labels)
    reg.inc("um.migrations", len(profiler.migration_sizes), **labels)
    for size in profiler.migration_sizes:
        reg.observe("um.migration_bytes", size, **labels)


def add_session(reg: MetricsRegistry, session) -> None:
    """Lift an :class:`~repro.core.session.EngineSession`'s own live
    counters (memo, setup, device/UM residency) into the registry."""
    reg.set_gauge("session.queries_served", session.queries_served)
    reg.set_gauge("session.setup_ms", session.setup_ms)
    reg.set_gauge("session.setup_transfer_bytes", session.setup_transfer_bytes)
    reg.set_gauge("memo.hits", session.memo_hits)
    reg.set_gauge("memo.misses", session.memo_misses)
    reg.set_gauge("memo.collisions", getattr(session, "memo_collisions", 0))
    reg.set_gauge("memo.entries", session.memo_entries)
    reg.set_gauge("memo.bytes", session.memo_bytes)
    reg.set_gauge("memory.device_bytes_in_use", session.memory.device_bytes_in_use)
    reg.set_gauge("memory.um_bytes_allocated", session.memory.um_bytes_allocated)
    if session.um is not None:
        reg.set_gauge("um.resident_bytes", session.um.resident_bytes())


def add_error_taxonomy(reg: MetricsRegistry, taxonomy: dict) -> None:
    """Lift a :func:`repro.bench.runner.error_taxonomy` dict into
    ``bench.cells`` counters labelled by outcome."""
    reg.inc("bench.cells", taxonomy.get("ok", 0), outcome="ok")
    reg.inc("bench.cells", taxonomy.get("oom", 0), outcome="oom")
    for error_type, n in sorted(taxonomy.get("errors", {}).items()):
        reg.inc("bench.cells", n, outcome="error", type=error_type)


def add_service(reg: MetricsRegistry, service) -> None:
    """Lift a :class:`~repro.serving.TraversalService`'s own registry
    (per-tenant request/latency/shed series) plus its live gauges."""
    reg.merge(service.metrics)
    reg.set_gauge("service.pool_size", service.pool.size)
    reg.set_gauge("service.pending", len(service.queue))
    reg.set_gauge("service.clock_ms", service.clock_ms)
    reg.set_gauge("service.requests_served", service.requests_served)
    reg.set_gauge("service.requests_shed", service.requests_shed)
    plane = getattr(service, "health", None)
    if plane is not None:
        # Self-healing plane (repro.serving.health): live lane scores,
        # breaker/hedge activity and the brownout level — the whole
        # plane, so one snapshot() captures the PR 9 state too.
        from repro.serving.health import BREAKER_STATES

        reg.set_gauge("service.health_aggregate", plane.aggregate)
        reg.set_gauge("service.brownout_level", float(plane.level))
        # Distinct names from the per-tenant ``service.hedges`` /
        # ``service.hedge_wins`` *counters* the service itself keeps —
        # a series can't be both a counter and a gauge.
        reg.set_gauge("service.health_hedges", plane.hedges)
        reg.set_gauge("service.health_hedge_wins", plane.hedge_wins)
        reg.set_gauge("service.health_events", len(plane.events))
        for lane in plane.lanes:
            reg.set_gauge("service.lane_health", lane.score,
                          lane=str(lane.index))
            reg.set_gauge("service.lane_state",
                          float(BREAKER_STATES.index(lane.state)),
                          lane=str(lane.index))
            reg.set_gauge("service.lane_opens", lane.opens,
                          lane=str(lane.index))
            reg.set_gauge("service.lane_closes", lane.closes,
                          lane=str(lane.index))
            reg.set_gauge("service.lane_observations", lane.observations,
                          lane=str(lane.index))
    monitor = getattr(service, "slo", None)
    if monitor is not None:
        # SLO burn-rate monitors: per-tenant objectives, hit rates,
        # fast/slow burn and the alert ladder.
        monitor.export(reg, now_ms=service.clock_ms)
    recorder = getattr(service, "recorder", None)
    if recorder is not None:
        reg.set_gauge("service.postmortems", len(recorder.dumps))
        reg.set_gauge("service.postmortems_suppressed",
                      recorder.suppressed)
        reg.set_gauge("service.recorder_entries", len(recorder.ring))


def add_run_outcome(reg: MetricsRegistry, outcome) -> None:
    """Lift a :class:`~repro.resilience.session.RunOutcome` into
    ``resilience.*`` counters."""
    reg.inc("resilience.queries", 1, placement=outcome.final_placement)
    reg.inc("resilience.attempts", outcome.num_attempts)
    reg.inc("resilience.degraded", int(outcome.degraded))
    reg.inc("resilience.backoff_ms", outcome.backoff_ms)
    reg.inc("resilience.faults_seen", len(outcome.faults_seen))


def unified_snapshot(
    *,
    session=None,
    profiler=None,
    taxonomy: dict | None = None,
    registry: MetricsRegistry | None = None,
    service=None,
) -> dict:
    """One ``snapshot()`` over any combination of the repo's existing
    measurement layers (plus an already-populated registry to merge)."""
    reg = MetricsRegistry()
    if registry is not None:
        reg.merge(registry)
    if session is not None:
        add_session(reg, session)
    if profiler is not None:
        add_profiler(reg, profiler)
    if taxonomy is not None:
        add_error_taxonomy(reg, taxonomy)
    if service is not None:
        add_service(reg, service)
    return reg.snapshot()
