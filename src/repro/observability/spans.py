"""Span tracing over the simulated clock.

A :class:`Tracer` records nested, attributed spans whose timestamps are
readings of the repo's *simulated* clocks (milliseconds since the start
of the traced query, plus :attr:`Tracer.base_ms` when an outer layer —
the resilience ladder — stitches several attempts onto one timeline).

Two invariants make the tracer safe to wire through the hot path:

* **Zero cost when disabled.**  Every instrumentation site is guarded by
  ``if tracer is not None``; the engine only creates a tracer when
  ``EtaGraphConfig(telemetry=True)`` is set or an external tracer is
  attached to the session.  With telemetry off, not a single extra
  object is allocated and results are bit-identical to an untraced run.
* **Observation, never perturbation.**  Spans *read* the simulated
  clock; they never advance it.  Telemetry-on runs therefore report the
  same labels and the same simulated timings as telemetry-off runs —
  the gate ``python -m repro.observability identity`` asserts this.

Span categories map to Perfetto tracks in the Chrome-trace exporter
(:mod:`repro.observability.export`): ``engine`` and ``resilience`` hold
the structural spans (query, iteration, attempt), while ``compute``,
``transfer`` and ``migration`` carry the activity intervals that
reproduce Fig. 4 as an interactive timeline.  ``service`` is the
serving frontend's track (:mod:`repro.serving`): one ``request`` span
per dispatched request — tenant, endpoint and worker lane in the attrs
— plus ``shed`` instants for load-shed requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Well-known span categories, in their exporter track order.  The
#: serving plane owns the last three: ``service`` carries request /
#: queue / dispatch / wave spans, ``alerts`` carries first-class
#: breaker, brownout and SLO-burn transitions, and ``hedge`` is the
#: spare-replica track — hedge-leg spans land there so they can never
#: overlap the primary lane's rows in Perfetto.
CATEGORIES = (
    "engine", "compute", "transfer", "migration", "resilience", "service",
    "alerts", "hedge",
)


@dataclass
class SpanRecord:
    """One finished span (or instant/complete event)."""

    sid: int
    parent: int | None
    name: str
    category: str
    start_ms: float
    end_ms: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, {self.category}, "
            f"{self.start_ms:.3f}..{self.end_ms:.3f} ms)"
        )


class _OpenSpan:
    """A started-but-unfinished span on the tracer stack."""

    __slots__ = ("sid", "parent", "name", "category", "start_ms", "attrs")

    def __init__(self, sid, parent, name, category, start_ms, attrs):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.category = category
        self.start_ms = start_ms
        self.attrs = attrs


class Tracer:
    """Collects spans; one per traced query (or per stitched serve).

    Times passed to :meth:`start` / :meth:`end` / :meth:`emit` are
    *local* simulated milliseconds; :attr:`base_ms` (set by an outer
    stitching layer) is added on record.  :attr:`cursor_ms` is a local
    write cursor for instrumented leaf modules (transfer, UM, kernels)
    that know durations but not absolute time: the caller parks the
    cursor at the current clock, and each :meth:`emit` without an
    explicit time lands at the cursor and advances it.
    """

    __slots__ = (
        "records", "base_ms", "cursor_ms", "max_end_ms", "_stack", "_next_sid",
    )

    def __init__(self):
        self.records: list[SpanRecord] = []
        #: Offset (ms) added to every recorded timestamp.
        self.base_ms = 0.0
        #: Local write cursor for duration-only emitters.
        self.cursor_ms = 0.0
        #: Largest absolute end time recorded so far.
        self.max_end_ms = 0.0
        self._stack: list[_OpenSpan] = []
        self._next_sid = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def start(self, name: str, category: str = "engine",
              t_ms: float = 0.0, **attrs) -> _OpenSpan:
        """Open a nested span at local time ``t_ms``; returns a token
        for :meth:`end`."""
        parent = self._stack[-1].sid if self._stack else None
        span = _OpenSpan(
            self._next_sid, parent, name, category,
            self.base_ms + t_ms, attrs,
        )
        self._next_sid += 1
        self._stack.append(span)
        return span

    def end(self, span: _OpenSpan, t_ms: float, **attrs) -> SpanRecord:
        """Close ``span`` at local time ``t_ms``.

        Any spans opened after it and still unfinished (an exception
        unwound through them) are closed at the same instant with an
        ``aborted`` marker, so the trace stays well-formed.
        """
        end_abs = self.base_ms + t_ms
        record = None
        while self._stack:
            top = self._stack.pop()
            extra = attrs if top is span else {"aborted": True}
            rec = self._record(top, end_abs, extra)
            if top is span:
                record = rec
                break
        if record is None:
            raise ValueError(f"span {span.name!r} is not open")
        return record

    def emit(self, name: str, category: str, dur_ms: float = 0.0,
             t_ms: float | None = None, **attrs) -> SpanRecord:
        """Record a complete event in one call.

        Without ``t_ms`` the event lands at :attr:`cursor_ms` and the
        cursor advances by ``dur_ms`` (consecutive duration-only events
        tile); with ``t_ms`` the cursor is untouched.
        """
        if t_ms is None:
            t_ms = self.cursor_ms
            self.cursor_ms += dur_ms
        parent = self._stack[-1].sid if self._stack else None
        span = _OpenSpan(
            self._next_sid, parent, name, category,
            self.base_ms + t_ms, attrs,
        )
        self._next_sid += 1
        return self._record(span, span.start_ms + dur_ms, {})

    def _record(self, span: _OpenSpan, end_abs: float, extra: dict) -> SpanRecord:
        if end_abs < span.start_ms:
            end_abs = span.start_ms
        attrs = dict(span.attrs)
        attrs.update(extra)
        rec = SpanRecord(
            sid=span.sid, parent=span.parent, name=span.name,
            category=span.category, start_ms=span.start_ms,
            end_ms=end_abs, attrs=attrs,
        )
        self.records.append(rec)
        if end_abs > self.max_end_ms:
            self.max_end_ms = end_abs
        return rec

    def graft(
        self,
        records: "list[SpanRecord]",
        *,
        base_ms: float = 0.0,
        parent: int | None = None,
        category: str | None = None,
        **extra_attrs,
    ) -> list[SpanRecord]:
        """Splice another tracer's finished records onto this timeline.

        This is how the serving frontend stitches a request-local trace
        (engine kernels, resilience attempts, a hedge leg) under its own
        ``request`` span: the sub-trace runs on a fresh tracer whose
        clock starts at zero, and grafting re-bases every timestamp by
        ``base_ms`` (the dispatch instant on the service clock),
        re-numbers span ids into this tracer's space, and re-parents the
        sub-trace's roots onto ``parent``.  ``category`` forces every
        grafted span onto one track (the hedge leg uses ``"hedge"`` so
        spare-replica spans can never overlap the primary's rows);
        ``extra_attrs`` are merged into every grafted span (lane tags).
        Purely additive: nothing else on this tracer moves.
        """
        id_map = {rec.sid: self._next_sid + i
                  for i, rec in enumerate(records)}
        self._next_sid += len(records)
        out = []
        for rec in records:
            attrs = dict(rec.attrs)
            attrs.update(extra_attrs)
            new = SpanRecord(
                sid=id_map[rec.sid],
                parent=(parent if rec.parent is None
                        else id_map.get(rec.parent, parent)),
                name=rec.name,
                category=category if category is not None else rec.category,
                start_ms=base_ms + rec.start_ms,
                end_ms=base_ms + rec.end_ms,
                attrs=attrs,
            )
            self.records.append(new)
            if new.end_ms > self.max_end_ms:
                self.max_end_ms = new.end_ms
            out.append(new)
        return out

    def unwind(self, t_ms: float, **attrs) -> None:
        """Close every still-open span at local time ``t_ms`` (error
        paths where the owner of the outermost span has lost track)."""
        end_abs = self.base_ms + t_ms
        while self._stack:
            self._record(self._stack.pop(), end_abs, dict(attrs))

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def trace(self, **meta) -> "Trace":
        """A :class:`Trace` view over everything recorded so far."""
        return Trace(records=list(self.records), meta=dict(meta))


@dataclass
class Trace:
    """A finished (or in-flight) recording: spans plus run metadata.

    This is the handle hung on :attr:`TraversalResult.trace
    <repro.core.engine.TraversalResult>`; exporters and the summarize
    CLI all consume it.
    """

    records: list[SpanRecord] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def spans(self, category: str | None = None,
              name: str | None = None) -> list[SpanRecord]:
        """Records sorted by (start time, creation order), optionally
        filtered by category and/or name."""
        out = [
            r for r in self.records
            if (category is None or r.category == category)
            and (name is None or r.name == name)
        ]
        out.sort(key=lambda r: (r.start_ms, r.sid))
        return out

    def categories(self) -> list[str]:
        """Distinct categories: well-known ones first (track order),
        then any others alphabetically."""
        present = {r.category for r in self.records}
        known = [c for c in CATEGORIES if c in present]
        return known + sorted(present - set(CATEGORIES))

    def children_of(self, sid: int | None) -> list[SpanRecord]:
        return sorted(
            (r for r in self.records if r.parent == sid),
            key=lambda r: (r.start_ms, r.sid),
        )

    def roots(self) -> list[SpanRecord]:
        return self.children_of(None)

    def busy_ms(self, category: str) -> float:
        """Union-covered time of one category's records (same interval
        arithmetic as :class:`repro.gpu.timeline.Timeline`)."""
        from repro.utils.intervals import union_length

        return union_length(
            [(r.start_ms, r.end_ms) for r in self.records
             if r.category == category]
        )

    @property
    def span_ms(self) -> float:
        if not self.records:
            return 0.0
        return (max(r.end_ms for r in self.records)
                - min(r.start_ms for r in self.records))

    # Exporters / rendering (lazy imports keep this module dependency-free).

    def to_chrome_trace(self) -> dict:
        from repro.observability.export import to_chrome_trace

        return to_chrome_trace(self)

    def to_jsonl(self) -> str:
        from repro.observability.export import to_jsonl

        return to_jsonl(self)

    def save_chrome(self, path) -> None:
        from repro.observability.export import write_chrome_trace

        write_chrome_trace(self, path)

    def save_jsonl(self, path) -> None:
        from repro.observability.export import write_jsonl

        write_jsonl(self, path)

    def summary(self, top: int = 10) -> str:
        from repro.observability.summarize import render_summary

        return render_summary(self, top=top)
