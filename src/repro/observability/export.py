"""Trace exporters: Chrome trace-event JSON and a JSONL event log.

The Chrome format (the ``traceEvents`` array of complete ``"ph": "X"``
events) loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``; span categories become named tracks, so a traced
query shows distinct compute / transfer / migration bands — Fig. 4 as an
interactive timeline.  The JSONL log is one structured event per line
(plus a leading ``meta`` line) for programmatic consumption.

Both exporters are deterministic: keys are sorted, timestamps are
rounded to nanosecond resolution, and track ids follow a fixed category
order — identical traces serialize to identical bytes, which is what
the golden-file tests in ``tests/test_observability.py`` pin down.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.spans import CATEGORIES, SpanRecord, Trace

#: Fixed Perfetto track (tid) per well-known category; categories not
#: listed here are assigned the next ids alphabetically per trace.
CATEGORY_TRACKS = {cat: i for i, cat in enumerate(CATEGORIES)}

_SCHEMA_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def _round_us(t_ms: float) -> float:
    """Milliseconds -> microseconds at fixed (nanosecond) resolution."""
    return round(t_ms * 1000.0, 3)


def track_map(categories) -> dict[str, int]:
    """Deterministic category -> tid assignment for one trace."""
    tracks = {}
    extra = sorted(c for c in categories if c not in CATEGORY_TRACKS)
    for cat in categories:
        if cat in CATEGORY_TRACKS:
            tracks[cat] = CATEGORY_TRACKS[cat]
    for i, cat in enumerate(extra):
        tracks[cat] = len(CATEGORY_TRACKS) + i
    return tracks


def complete_event(
    name: str,
    category: str,
    start_ms: float,
    dur_ms: float,
    *,
    tid: int | None = None,
    args: dict | None = None,
) -> dict:
    """One Chrome trace-event ``"ph": "X"`` (complete) event."""
    return {
        "name": name,
        "cat": category,
        "ph": "X",
        "ts": _round_us(start_ms),
        "dur": _round_us(dur_ms),
        "pid": 0,
        "tid": tid if tid is not None else CATEGORY_TRACKS.get(category, 0),
        "args": args or {},
    }


def _span_event(rec: SpanRecord, tid: int) -> dict:
    args = {"sid": rec.sid}
    if rec.parent is not None:
        args["parent"] = rec.parent
    args.update(rec.attrs)
    return complete_event(
        rec.name, rec.category, rec.start_ms, rec.duration_ms,
        tid=tid, args=args,
    )


def to_chrome_trace(trace: Trace) -> dict:
    """The full Chrome/Perfetto JSON object for one :class:`Trace`."""
    tracks = track_map(trace.categories())
    events = [
        {
            "name": "process_name", "cat": "__metadata", "ph": "M",
            "pid": 0, "tid": 0,
            "args": {"name": "repro simulated GPU"},
        },
    ]
    for cat, tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name", "cat": "__metadata", "ph": "M",
            "pid": 0, "tid": tid, "args": {"name": cat},
        })
        events.append({
            "name": "thread_sort_index", "cat": "__metadata", "ph": "M",
            "pid": 0, "tid": tid, "args": {"sort_index": tid},
        })
    events += [_span_event(r, tracks[r.category]) for r in trace.spans()]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(sorted(trace.meta.items(), key=lambda kv: kv[0])),
    }


def dumps_stable(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace churn."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(trace: Trace, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_stable(to_chrome_trace(trace)) + "\n")
    return path


def to_jsonl_records(trace: Trace) -> list[dict]:
    """One dict per line: a ``meta`` header then every span in timeline
    order."""
    out = [{"type": "meta", **{k: trace.meta[k] for k in sorted(trace.meta)}}]
    for r in trace.spans():
        out.append({
            "type": "span",
            "sid": r.sid,
            "parent": r.parent,
            "name": r.name,
            "category": r.category,
            "start_ms": round(r.start_ms, 6),
            "end_ms": round(r.end_ms, 6),
            "attrs": r.attrs,
        })
    return out


def to_jsonl(trace: Trace) -> str:
    return "\n".join(dumps_stable(rec) for rec in to_jsonl_records(trace)) + "\n"


def write_jsonl(trace: Trace, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(trace))
    return path


def intervals_to_events(intervals) -> list[dict]:
    """Chrome events from :class:`repro.gpu.timeline.Interval` records —
    the single code path shared by ``Timeline.to_trace_events`` and the
    span exporter, so Fig. 4 data and the telemetry timeline agree."""
    events = []
    for iv in intervals:
        args = {}
        if iv.nbytes:
            args["nbytes"] = float(iv.nbytes)
        events.append(complete_event(
            iv.label or iv.kind, iv.kind, iv.start_ms, iv.duration_ms,
            args=args,
        ))
    return events


# ----------------------------------------------------------------------
# Validation / loading (the obs-smoke CI gate, the summarize CLI)
# ----------------------------------------------------------------------

def validate_chrome_trace(obj) -> list[str]:
    """Schema problems in a Chrome-trace JSON object (empty = valid)."""
    problems = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        if ev.get("ph") == "M":
            continue  # metadata events carry no timing
        for key in _SCHEMA_KEYS:
            if key not in ev:
                problems.append(f"event {i} ({ev.get('name')!r}): missing {key!r}")
        ts, dur = ev.get("ts"), ev.get("dur")
        if isinstance(ts, (int, float)) and ts < 0:
            problems.append(f"event {i} ({ev.get('name')!r}): negative ts")
        if isinstance(dur, (int, float)) and dur < 0:
            problems.append(f"event {i} ({ev.get('name')!r}): negative dur")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems


def load_trace(path) -> Trace:
    """Rebuild a :class:`Trace` from either exporter's file."""
    path = Path(path)
    text = path.read_text()
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict) and "traceEvents" in whole:
        return _trace_from_chrome(whole)
    # JSONL: one object per line.
    records = []
    meta = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("type") == "meta":
            meta = {k: v for k, v in obj.items() if k != "type"}
        elif obj.get("type") == "span":
            records.append(SpanRecord(
                sid=obj["sid"], parent=obj.get("parent"),
                name=obj["name"], category=obj["category"],
                start_ms=obj["start_ms"], end_ms=obj["end_ms"],
                attrs=obj.get("attrs", {}),
            ))
    return Trace(records=records, meta=meta)


def _trace_from_chrome(obj: dict) -> Trace:
    records = []
    fallback_sid = 1_000_000
    for ev in obj.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        sid = args.pop("sid", None)
        parent = args.pop("parent", None)
        if sid is None:
            sid = fallback_sid
            fallback_sid += 1
        records.append(SpanRecord(
            sid=sid, parent=parent, name=ev["name"], category=ev["cat"],
            start_ms=ev["ts"] / 1000.0,
            end_ms=(ev["ts"] + ev.get("dur", 0.0)) / 1000.0,
            attrs=args,
        ))
    return Trace(records=records, meta=dict(obj.get("otherData", {})))
