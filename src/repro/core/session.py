"""Topology-resident engine sessions: place once, query many times.

A :class:`EngineSession` is the prepared form of the EtaGraph engine: one
topology placement (device copy, UM registration, or zero-copy pinning —
plus the ``cudaMemPrefetchAsync`` pass in the default mode) serves any
number of ``(problem, source)`` queries.  :class:`~repro.gpu.memory.
DeviceMemory`, :class:`~repro.gpu.um.UnifiedMemoryManager` and
:class:`~repro.gpu.cache.CacheHierarchy` state stay alive across queries,
so repeated traversals run against warm UM residency and warm caches —
the batch/serving regime the paper's related work (Congra, iBFS) studies
and the EMOGI-style warm-state effect the ROADMAP's serving goal needs.

Accounting is *measured*, not reconstructed:

* Every cost paid to move or register topology is accumulated into the
  session's :attr:`EngineSession.setup_ms` (and the bytes into
  :attr:`EngineSession.setup_transfer_bytes`) at the moment it happens.
* Each query's :class:`~repro.core.engine.TraversalResult` carries
  ``setup_ms`` — the slice of *this call's* ``total_ms`` that was
  topology setup (non-zero only for the query that triggered placement)
  — and ``query_ms = total_ms - setup_ms``.  A warm query's transfer
  time therefore reflects only pages actually migrated for that query
  (labels initialization, faults under oversubscription), nothing else.

``EtaGraphEngine.run`` is a session-of-one built on this class, so the
one-shot path and the first query of a fresh session are the same code —
bit-identical labels and identical clock arithmetic.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.algorithms.base import TraversalProblem, get_problem
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.frontier import FrontierBuffers
from repro.core.smp import plan_prefetch
from repro.core.stats import IterationStats, TraversalStats
from repro.core.udc import degree_cut
from repro.errors import (
    ConfigError,
    ConvergenceError,
    InvalidLaunchError,
    SessionClosedError,
)
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu import kernel as gpukernel
from repro.gpu.kernel import simulate_streaming_kernel, simulate_vertex_kernel
from repro.gpu.memory import DeviceArray, DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.timeline import Timeline
from repro.gpu.transfer import d2h_copy, direct_access_read, h2d_copy
from repro.gpu.um import UnifiedMemoryManager
from repro.graph.compressed import CompressedCSRGraph
from repro.graph.csr import CSRGraph
from repro.utils.ragged import ragged_gather_indices
from repro.utils.sorting import sorted_unique


class _FrontierExpansion:
    """Memoized label-independent expansion of one frontier.

    Every field is a pure function of (topology, config, active-set
    content, array placement): the shadow slices, their flat CSR edge
    indices, neighbor ids, sorted unique destinations, per-edge weights
    and the kernel's :class:`~repro.gpu.traceplan.TracePlan` — in the
    spirit of :meth:`~repro.core.udc.ShadowTable.select`, but on demand
    and for every per-iteration derivation, not just the degree cut.
    Label-dependent values (candidates, update counts) are never stored,
    so reusing an entry is bit-identical to recomputing it.

    ``trace_plan`` and ``src_ids`` are filled lazily: the plan on the
    first kernel launch over this frontier, the per-edge source ids only
    if a parent-tracking query needs them.

    ``active_bytes`` holds the exact bytes of the active set the entry
    was built from: a memo hit is only trusted after these bytes match
    the looked-up frontier, so a digest collision degrades to a miss
    instead of silently serving another frontier's expansion.
    """

    __slots__ = (
        "shadows", "ids64", "edge_idx", "nbr", "dests", "w_per_edge",
        "trace_plan", "src_ids", "active_bytes",
    )

    def __init__(self, *, shadows, ids64, edge_idx, nbr, dests, w_per_edge,
                 active_bytes=b""):
        self.shadows = shadows
        self.ids64 = ids64
        self.edge_idx = edge_idx
        self.nbr = nbr
        self.dests = dests
        self.w_per_edge = w_per_edge
        self.trace_plan = None
        self.src_ids = None
        self.active_bytes = active_bytes

    @property
    def nbytes(self) -> int:
        total = (
            self.shadows.nbytes + self.ids64.nbytes + self.edge_idx.nbytes
            + self.nbr.nbytes + self.dests.nbytes + len(self.active_bytes)
        )
        if self.w_per_edge is not None:
            total += self.w_per_edge.nbytes
        if self.trace_plan is not None:
            total += self.trace_plan.nbytes
        if self.src_ids is not None:
            total += self.src_ids.nbytes
        return total


class EngineSession:
    """A prepared (graph, config, device) binding serving many queries.

    Construction is cheap: topology is placed lazily by the first query
    (or eagerly via :meth:`prepare`).  Use as a context manager or call
    :meth:`close` to release the simulated device memory::

        with EngineSession(graph) as session:
            hot = session.query("bfs", 0)      # pays topology placement
            warm = session.query("bfs", 42)    # topology already resident
            assert warm.setup_ms == 0.0
    """

    def __init__(
        self,
        csr: CSRGraph | CompressedCSRGraph,
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
        *,
        injector=None,
    ):
        #: What the caller asked to serve: dense CSR or the compressed
        #: topology.  Placement moves (and space-accounts) *this*.
        self.topology = csr
        #: Whether the resident topology is the compressed format (the
        #: payload + row-byte-offset arrays instead of dense words).
        self.compressed = isinstance(csr, CompressedCSRGraph)
        # Traversal itself always runs against the exact dense view —
        # compression changes what moves over the bus, never the labels.
        # ``decode()`` is cached on the compressed graph, so sessions
        # sharing one topology share one decode.
        self.csr = csr.decode() if self.compressed else csr
        self.config = config or EtaGraphConfig()
        self.device = device

        #: Optional :class:`repro.resilience.faults.FaultInjector`.  When
        #: set, it is consulted at every device touchpoint (allocation,
        #: PCIe copy, UM migration, kernel launch, memo lookup) and may
        #: raise typed faults on its schedule.  ``None`` (the default) is
        #: a guaranteed no-op: results and timings are bit-identical to a
        #: session built without the parameter.
        self.injector = injector
        #: Optional externally-owned :class:`repro.observability.Tracer`.
        #: When set, every query records its spans into it (the caller
        #: keeps the tracer across attempts/errors — how the resilience
        #: ladder and the bench runner capture partial traces).  When
        #: ``None`` and ``config.telemetry`` is true, each query creates
        #: its own tracer and hangs the trace off the result.  Spans only
        #: *read* the simulated clock; results are bit-identical either
        #: way.
        self.tracer = None
        self.memory = DeviceMemory(device)
        self.memory.injector = injector
        self.caches = CacheHierarchy(device)
        self.um = (
            UnifiedMemoryManager(device, self.memory)
            if self.config.memory_mode.uses_um else None
        )
        if self.um is not None:
            self.um.injector = injector

        #: Measured topology-placement time (ms) paid so far: UM page
        #: registration, zero-copy pinning, H2D topology copies, prefetch
        #: passes and the out-of-core shadow-table staging.
        self.setup_ms = 0.0
        #: Bytes of topology actually moved over PCIe during setup.
        self.setup_transfer_bytes = 0
        #: Completed queries served by this session.
        self.queries_served = 0
        #: Frontier-memo counters: a hit means a query iteration reused a
        #: previously computed degree cut / edge expansion / trace plan.
        self.memo_hits = 0
        self.memo_misses = 0
        #: Digest collisions caught by the exact active-set byte check:
        #: a colliding hit is demoted to a miss instead of serving
        #: another frontier's expansion.
        self.memo_collisions = 0
        self._frontier_memo: OrderedDict[tuple, _FrontierExpansion] = \
            OrderedDict()

        # SMP needs K words of shared memory per thread: shrink the block
        # to fit, or fall back to the plain kernel when even one warp's
        # buffers exceed an SM (physically impossible prefetch).  Pure
        # function of (device, config), so resolved once per session.
        from repro.gpu.sharedmem import max_smp_block_threads

        self._smp = self.config.smp
        self._threads_per_block = self.config.threads_per_block
        if self._smp:
            fit = max_smp_block_threads(device, self.config.degree_limit)
            if fit == 0:
                self._smp = False
            else:
                self._threads_per_block = min(self._threads_per_block, fit)

        # Session-resident state, created by the first query that needs it.
        self._offsets_arr: DeviceArray | None = None
        self._cols_arr: DeviceArray | None = None
        self._weights_arr: DeviceArray | None = None
        self._labels_arr: DeviceArray | None = None
        self._wave_masks_arr: DeviceArray | None = None
        self._parents_arr: DeviceArray | None = None
        self._frontier: FrontierBuffers | None = None
        self._shadow_table = None
        self._prefetched: set[str] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release all simulated device allocations; the session is dead."""
        if self._closed:
            return
        self.memory.free_all()
        self._closed = True

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def warm(self) -> bool:
        """Whether topology is already placed (queries skip setup)."""
        return self._offsets_arr is not None

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "warm" if self.warm else "cold"
        )
        return (
            f"EngineSession({self.csr!r}, "
            f"memory={self.config.memory_mode.value}, {state}, "
            f"{self.queries_served} queries, setup {self.setup_ms:.3f} ms)"
        )

    # ------------------------------------------------------------------
    # Topology placement (the once-per-session work)
    # ------------------------------------------------------------------

    def _topo_kind(self) -> str:
        if self.config.memory_mode.uses_um:
            return "um"
        if self.config.memory_mode.host_resident:
            return "zerocopy"
        return "device"

    def _topo_arrays(self) -> list[DeviceArray]:
        return [
            a for a in (self._offsets_arr, self._cols_arr, self._weights_arr)
            if a is not None
        ]

    def _install(
        self,
        arrays: list[DeviceArray],
        prof: Profiler,
        timeline: Timeline,
        clock: float,
        tr=None,
    ) -> float:
        """Register (UM), pin (zero-copy) or copy (device) new topology
        arrays; advances the query clock and the session setup meter."""
        spec = self.device
        span = None
        if tr is not None:
            span = tr.start("install_topology", "engine", clock,
                            kind=self._topo_kind(), arrays=len(arrays))
            tr.cursor_ms = clock
        if self.um is not None:
            for arr in arrays:
                self.um.register(arr)
                # cudaMallocManaged setup cost (page-table registration).
                dt = spec.um_alloc_overhead_us * 1e-3
                clock += dt
                self.setup_ms += dt
                if tr is not None:
                    tr.emit("um.register", "engine", dt, array=arr.name)
        elif self.config.memory_mode.host_resident:
            # Pinning + mapping the host buffers (cudaHostAlloc path);
            # zero-copy and direct access both serve reads from here.
            dt = len(arrays) * spec.um_alloc_overhead_us * 1e-3
            clock += dt
            self.setup_ms += dt
            if tr is not None:
                tr.emit("pin_host", "engine", dt)
        else:
            # cudaMemcpy of the whole topology before the first kernel.
            for arr in arrays:
                t = h2d_copy(spec, prof, arr.nbytes, injector=self.injector,
                             tracer=tr, label=arr.name)
                timeline.add("transfer", clock, clock + t, nbytes=arr.nbytes,
                             label=arr.name)
                clock += t
                self.setup_ms += t
                self.setup_transfer_bytes += arr.nbytes
        if span is not None:
            tr.end(span, clock)
        return clock

    def _place_topology(
        self,
        problem: TraversalProblem,
        prof: Profiler,
        timeline: Timeline,
        clock: float,
        tr=None,
    ) -> float:
        """Allocate + install topology arrays still missing for ``problem``.

        Compressed sessions place the *compressed* arrays — the varint
        payload rides under the ``column_indices`` name and the row byte
        offsets under ``row_offsets``, so every downstream consumer
        (trace plans, UM residency, transfer accounting) sizes itself
        off the bytes that would actually move on real hardware.
        """
        csr = self.csr
        kind = self._topo_kind()
        new: list[DeviceArray] = []
        if self._offsets_arr is None:
            topo = self.topology.device_arrays()
            self._offsets_arr = self.memory.alloc(
                "row_offsets", topo["row_offsets"], kind=kind
            )
            self._cols_arr = self.memory.alloc(
                "column_indices", topo["column_indices"], kind=kind
            )
            new += [self._offsets_arr, self._cols_arr]
        if problem.needs_weights and self._weights_arr is None:
            # A weighted query joining a session warmed by unweighted ones
            # places the weights then; the cost lands on that query.
            self._weights_arr = self.memory.alloc(
                "edge_weights", csr.edge_weights, kind=kind
            )
            new.append(self._weights_arr)
        if new:
            clock = self._install(new, prof, timeline, clock, tr)
        return clock

    def _prefetch_topology(
        self, prof: Profiler, timeline: Timeline, clock: float, tr=None
    ) -> float:
        """One ``cudaMemPrefetchAsync`` pass per topology array, once per
        session (warm queries under oversubscription re-fault in the
        traversal loop instead — that movement is theirs, not setup's)."""
        if self.config.memory_mode is not MemoryMode.UM_PREFETCH:
            return clock
        for arr in self._topo_arrays():
            if arr.name in self._prefetched:
                continue
            self._prefetched.add(arr.name)
            if tr is not None:
                tr.cursor_ms = clock
            batch = self.um.prefetch(arr, prof, tr)
            if batch.time_ms:
                timeline.add("transfer", clock, clock + batch.time_ms,
                             nbytes=batch.bytes_moved,
                             label=f"prefetch-{arr.name}")
                clock += batch.time_ms
                self.setup_ms += batch.time_ms
                self.setup_transfer_bytes += batch.bytes_moved
        return clock

    def _place_shadow_table(
        self, prof: Profiler, timeline: Timeline, clock: float, tr=None
    ) -> float:
        """Out-of-core UDC: the precomputed shadow table is derived from
        topology alone, so it is session-resident and staged once."""
        if self.config.udc_mode != "out_of_core" or \
                self._shadow_table is not None:
            return clock
        from repro.core.udc import ShadowTable

        csr = self.csr
        shadow_table = ShadowTable(csr.row_offsets, self.config.degree_limit)
        # The table is device-resident: 3 words per shadow vertex plus
        # per-vertex ranges — this allocation is the space price of
        # skipping the per-iteration transform (and can OOM).
        self.memory.alloc_empty(
            "shadow_table", 3 * max(len(shadow_table), 1), np.int32
        )
        self.memory.alloc_empty(
            "shadow_ranges", 2 * max(csr.num_vertices, 1), np.int32
        )
        if tr is not None:
            tr.cursor_ms = clock
        t = h2d_copy(self.device, prof, (3 * len(shadow_table)
                                         + 2 * csr.num_vertices) * 4,
                     injector=self.injector, tracer=tr, label="shadow-table")
        timeline.add("transfer", clock, clock + t, label="shadow-table")
        clock += t
        self.setup_ms += t
        self.setup_transfer_bytes += (3 * len(shadow_table)
                                      + 2 * csr.num_vertices) * 4
        self._shadow_table = shadow_table
        return clock

    def prepare(self, problem: TraversalProblem | str = "bfs") -> float:
        """Place (and prefetch) topology now instead of at first query.

        ``problem`` decides whether edge weights are part of the resident
        topology.  Returns the cumulative measured :attr:`setup_ms`.
        Idempotent: repeated calls install only what is still missing.
        """
        self._check_open()
        if isinstance(problem, str):
            problem = get_problem(problem)
        problem.check_graph(self.csr)
        prof = Profiler()
        timeline = Timeline()
        clock = self._place_topology(problem, prof, timeline, 0.0)
        clock = self._prefetch_topology(prof, timeline, clock)
        self._place_shadow_table(prof, timeline, clock)
        return self.setup_ms

    # ------------------------------------------------------------------
    # Per-query working buffers (reused, reset between queries)
    # ------------------------------------------------------------------

    def _labels_buffer(self, labels_host: np.ndarray) -> DeviceArray:
        arr = self._labels_arr
        if arr is not None and arr.data.dtype == labels_host.dtype \
                and arr.data.shape == labels_host.shape:
            arr.data[:] = labels_host
            return arr
        if arr is not None:
            self.memory.free(arr)
        self._labels_arr = self.memory.alloc("labels", labels_host.copy())
        return self._labels_arr

    def _wave_mask_buffer(self, masks_host: np.ndarray) -> DeviceArray:
        """Session-resident uint64 lane-mask buffer for MSBFS waves
        (:mod:`repro.core.msbfs`): one 64-bit word per vertex, reused —
        never reallocated — across waves, so memoized wave trace plans
        keep stable device addresses."""
        arr = self._wave_masks_arr
        if arr is not None and arr.data.shape == masks_host.shape:
            arr.data[:] = masks_host
            return arr
        if arr is not None:
            self.memory.free(arr)
        self._wave_masks_arr = self.memory.alloc(
            "wave_masks", masks_host.copy()
        )
        return self._wave_masks_arr

    def _frontier_buffers(self) -> FrontierBuffers:
        if self._frontier is None:
            self._frontier = FrontierBuffers(
                self.memory, self.csr.num_vertices, self.csr.num_edges,
                self.config.degree_limit,
            )
        return self._frontier

    def _parents_buffer(self) -> DeviceArray | None:
        if not self.config.track_parents:
            return None
        from repro.algorithms.paths import NO_PARENT

        if self._parents_arr is None:
            self._parents_arr = self.memory.alloc_full(
                "parents", max(self.csr.num_vertices, 1), NO_PARENT, np.int32
            )
        else:
            self._parents_arr.data[:] = NO_PARENT
        return self._parents_arr

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("session is closed")

    def _adj_byte_ranges(
        self, starts: np.ndarray, degrees: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resident-topology byte ranges backing the adjacency slices
        ``[start, start + degree)`` — varint payload bytes for a
        compressed session, ``4 * start / 4 * degree`` dense words
        otherwise.  This is the single point where every out-of-core
        placement (UM faulting, zero-copy, direct access) learns how
        many bytes a frontier expansion actually moves."""
        if self.compressed:
            return self.topology.edge_byte_ranges(starts, degrees)
        return (
            np.asarray(starts, dtype=np.int64) * 4,
            np.asarray(degrees, dtype=np.int64) * 4,
        )

    # ------------------------------------------------------------------
    # Frontier memo
    # ------------------------------------------------------------------

    @property
    def memo_entries(self) -> int:
        return len(self._frontier_memo)

    def invalidate_memo(self) -> None:
        """Drop every frontier-memo entry (subsequent lookups miss and
        recompute).  Memoized values are label-independent, so results
        are bit-identical before and after — this exists for operators
        (bounding host memory) and for fault injection."""
        self._frontier_memo.clear()

    @property
    def memo_bytes(self) -> int:
        """Host memory currently retained by the frontier memo."""
        return sum(e.nbytes for e in self._frontier_memo.values())

    def metrics_snapshot(self) -> dict:
        """This session's live counters (memo, setup, residency) as one
        :meth:`repro.observability.MetricsRegistry.snapshot` dict."""
        from repro.observability.metrics import unified_snapshot

        return unified_snapshot(session=self)

    def _memo_key(
        self,
        active_bytes: bytes,
        num_active: int,
        labels_arr: DeviceArray,
        weights_arr: DeviceArray | None,
        wave_lanes: int = 0,
    ) -> tuple:
        # Content hash of the active set plus the placement facts the
        # memoized values depend on: the labels array (reallocated when a
        # query switches label dtype, which would invalidate the trace
        # plan's addresses) and whether weights join the trace.  Topology
        # arrays and config are fixed for the session's lifetime.
        # ``wave_lanes`` separates MSBFS wave entries (whose trace plans
        # gather 8-byte masks instead of 4-byte labels) from sequential
        # ones even if the mask buffer were to land at a recycled
        # address; the expansion itself is mask-content independent, so
        # the lane count — not the mask bits — is the right key.
        # The placement mode and compression flag are part of the key
        # even though they are session-fixed: the bump allocator is
        # deterministic, so two sessions over the same graph hand
        # identical base addresses to differently-placed topologies —
        # any future sharing of memo entries across sessions (a pool, a
        # serialized cache) must never let a dense-device trace plan
        # serve a compressed or direct-access frontier.
        digest = hashlib.blake2b(active_bytes, digest_size=16).digest()
        return (
            digest,
            num_active,
            labels_arr.base_address,
            labels_arr.itemsize,
            weights_arr.base_address if weights_arr is not None else -1,
            wave_lanes,
            self.config.memory_mode.value,
            self.compressed,
        )

    def _memo_get(
        self, key: tuple, active_bytes: bytes
    ) -> _FrontierExpansion | None:
        entry = self._frontier_memo.get(key)
        if entry is not None and entry.active_bytes != active_bytes:
            # Digest collision: the stored expansion belongs to a
            # different frontier.  Serve a miss (the caller recomputes
            # and overwrites the slot) instead of wrong reuse.
            self.memo_collisions += 1
            self.memo_misses += 1
            return None
        if entry is not None:
            self._frontier_memo.move_to_end(key)
            self.memo_hits += 1
        else:
            self.memo_misses += 1
        return entry

    def _memo_put(self, key: tuple, entry: _FrontierExpansion) -> None:
        memo = self._frontier_memo
        memo[key] = entry
        while len(memo) > self.config.frontier_memo_entries:
            memo.popitem(last=False)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(
        self,
        problem: TraversalProblem | str,
        source: int,
        *,
        target: int | None = None,
        max_iterations: int | None = None,
    ):
        """Run one traversal against the session's resident topology.

        Semantics match :meth:`repro.core.engine.EtaGraphEngine.run`
        exactly (same labels, same validation); only the cost accounting
        differs: topology setup is paid at most once per session, and
        the returned result's ``setup_ms`` records the slice of it paid
        during *this* call.

        ``max_iterations`` tightens (or loosens) the config's iteration
        budget for *this query only* — the per-request budget hook the
        resilience and serving layers use without rebuilding the
        session's resident state.  ``None`` keeps the config's budget.
        """
        from repro.core.engine import TraversalResult

        self._check_open()
        if isinstance(problem, str):
            problem = get_problem(problem)
        if max_iterations is not None and max_iterations < 1:
            raise ConfigError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        problem.check_graph(self.csr)
        if target is not None:
            if problem.name != "bfs":
                raise ConfigError(
                    "early-exit target is only sound for BFS "
                    f"(got {problem.name})"
                )
            if not 0 <= target < self.csr.num_vertices:
                raise InvalidLaunchError(f"target {target} out of range")
        cfg = self.config
        csr = self.csr
        spec = self.device

        if not 0 <= source < csr.num_vertices:
            raise InvalidLaunchError(
                f"source {source} out of range [0, {csr.num_vertices})"
            )

        mem = self.memory
        caches = self.caches
        um = self.um
        prof = Profiler()
        timeline = Timeline()
        check_udc_partition = check_traversal_result = None
        if cfg.check_invariants:
            # Imported lazily: repro.testing imports this module.
            from repro.testing.invariants import (
                check_traversal_result, check_udc_partition,
            )
        clock = 0.0
        setup_before = self.setup_ms
        smp = self._smp
        threads_per_block = self._threads_per_block

        # Telemetry (repro.observability): an attached tracer wins; else
        # config.telemetry creates one per query.  Every site below is
        # guarded by ``tr is not None`` — with telemetry off this costs
        # nothing, and with it on the spans only *read* ``clock``.
        tr = self.tracer
        if tr is None and cfg.telemetry:
            from repro.observability.spans import Tracer

            tr = Tracer()
        q_span = None
        if tr is not None:
            q_span = tr.start(
                "query", "engine", clock,
                problem=problem.name, source=source,
                memory_mode=cfg.memory_mode.value,
                vertices=csr.num_vertices, edges=csr.num_edges,
                warm=self.warm,
            )

        # --- topology placement (first query only) -----------------------
        clock = self._place_topology(problem, prof, timeline, clock, tr)
        offsets_arr = self._offsets_arr
        cols_arr = self._cols_arr
        weights_arr = self._weights_arr if problem.needs_weights else None
        topo_arrays = self._topo_arrays()

        # --- working state on device ------------------------------------
        labels_host = problem.initial_labels(csr.num_vertices, source)
        labels_arr = self._labels_buffer(labels_host)
        labels = labels_arr.data
        frontier = self._frontier_buffers()
        parents_arr = self._parents_buffer()
        parents = parents_arr.data if parents_arr is not None else None
        if tr is not None:
            tr.cursor_ms = clock
        t = h2d_copy(spec, prof, labels_arr.nbytes, injector=self.injector,
                     tracer=tr, label="labels-init")
        timeline.add("transfer", clock, clock + t, nbytes=labels_arr.nbytes,
                     label="labels-init")
        clock += t

        oversubscribed = False
        if um is not None:
            um_bytes = sum(a.nbytes for a in topo_arrays)
            oversubscribed = um_bytes > um.resident_budget_pages * spec.page_bytes

        clock = self._prefetch_topology(prof, timeline, clock, tr)

        # --- optional out-of-core UDC table ------------------------------
        clock = self._place_shadow_table(prof, timeline, clock, tr)
        shadow_table = self._shadow_table

        # --- traversal loop ----------------------------------------------
        seeds = problem.initial_frontier(csr.num_vertices, source)
        stats = TraversalStats(
            num_vertices=csr.num_vertices, seed_count=len(seeds)
        )
        visited = np.zeros(csr.num_vertices, dtype=bool)
        visited[seeds] = True
        frontier.seed_many(seeds)
        offsets = csr.row_offsets
        cols = csr.column_indices
        weights = csr.edge_weights if problem.needs_weights else None

        iteration = 0
        iteration_limit = (
            cfg.max_iterations if max_iterations is None else max_iterations
        )
        while not frontier.is_empty:
            if iteration >= iteration_limit:
                raise ConvergenceError(
                    f"{problem.name} did not converge within "
                    f"{iteration_limit} iterations"
                )
            active = frontier.active
            frontier.reset()  # the paper's per-iteration reset-and-reuse

            it_span = None
            if tr is not None:
                it_span = tr.start("iteration", "engine", clock,
                                   index=iteration, active=len(active))
                tr.cursor_ms = clock

            # Frontier memo: an already-seen active set reuses its whole
            # label-independent expansion (degree cut, edge gather, trace
            # plan).  The transform kernel below still runs — its cache
            # traffic and cost are paid every iteration either way.
            entry = key = None
            active_bytes = b""
            if cfg.frontier_memo_entries > 0:
                if self.injector is not None:
                    self.injector.on_memo_lookup(self)
                active_bytes = np.ascontiguousarray(active).tobytes()
                key = self._memo_key(
                    active_bytes, len(active), labels_arr, weights_arr
                )
                entry = self._memo_get(key, active_bytes)
            memo_hit = entry is not None

            # actSet2virtActSet kernel: gather offsets, emit 3-tuples —
            # or, out-of-core, a plain range gather from the shadow table.
            if shadow_table is not None:
                shadows = entry.shadows if entry is not None \
                    else shadow_table.select(active)
                transform = simulate_streaming_kernel(
                    spec, caches,
                    read_bytes=2 * len(active) * 4,
                    write_bytes=len(shadows) * 4,
                    n_threads=len(active),
                    instr_per_thread=8.0,
                    tracer=tr, trace_name="transform",
                )
            else:
                shadows = entry.shadows if entry is not None \
                    else degree_cut(active, offsets, cfg.degree_limit)
                transform = simulate_streaming_kernel(
                    spec, caches,
                    read_bytes=len(active) * 4,
                    write_bytes=3 * len(shadows) * 4,
                    n_threads=len(active),
                    instr_per_thread=14.0,
                    scatter_base_address=offsets_arr.base_address,
                    scatter_indices=np.asarray(active, dtype=np.int64),
                    tracer=tr, trace_name="transform",
                )
            prof.record_kernel(transform.counters)
            transform_ms = transform.time_ms
            if check_udc_partition is not None:
                check_udc_partition(shadows, active, offsets, cfg.degree_limit)

            # On-demand UM: fault in the pages this iteration reads.
            migration_ms = 0.0
            migration_bytes = 0
            zero_copy_ms = 0.0
            direct_ms = 0.0
            direct_bytes = 0
            if cfg.memory_mode is MemoryMode.ZERO_COPY and len(shadows):
                # Every topology read crosses PCIe, every iteration, at
                # the poor efficiency of fine-grained bus reads.  This is
                # what makes UM strictly better for read-only topology
                # (Section IV-B).  Compressed topology shrinks the
                # adjacency stream to its payload bytes; weights stay
                # dense.
                _, zc_lens = self._adj_byte_ranges(
                    shadows.starts, shadows.degrees
                )
                zc_bytes = (len(active) * 2 * offsets_arr.itemsize
                            + int(zc_lens.sum()))
                if weights_arr is not None:
                    zc_bytes += shadows.total_edges * 4
                zero_copy_ms = spec.bytes_time_ms(
                    zc_bytes, spec.pcie_bandwidth_gbps * 0.35
                )
                timeline.add("transfer", clock, clock + zero_copy_ms,
                             nbytes=zc_bytes, label=f"zerocopy-{iteration}")
                if tr is not None:
                    tr.emit("zerocopy", "transfer", zero_copy_ms, t_ms=clock,
                            nbytes=float(zc_bytes))
            if cfg.memory_mode is MemoryMode.DIRECT_ACCESS and len(shadows):
                # EMOGI-style direct access: the kernel's topology loads
                # cross PCIe as deduplicated 128-byte sector reads
                # covering exactly the offsets entries and adjacency
                # bytes this frontier expands — never a whole 4 KiB UM
                # page.  Base addresses keep the three arrays' sectors
                # distinct.
                off_item = offsets_arr.itemsize
                ids64 = np.asarray(active, dtype=np.int64)
                range_starts = [offsets_arr.base_address + ids64 * off_item]
                range_lens = [np.full(len(ids64), 2 * off_item,
                                      dtype=np.int64)]
                adj_starts, adj_lens = self._adj_byte_ranges(
                    shadows.starts, shadows.degrees
                )
                range_starts.append(cols_arr.base_address + adj_starts)
                range_lens.append(adj_lens)
                if weights_arr is not None:
                    range_starts.append(
                        weights_arr.base_address
                        + shadows.starts.astype(np.int64) * 4
                    )
                    range_lens.append(shadows.degrees.astype(np.int64) * 4)
                if tr is not None:
                    tr.cursor_ms = clock
                direct_ms, direct_bytes = direct_access_read(
                    spec, prof,
                    np.concatenate(range_starts),
                    np.concatenate(range_lens),
                    injector=self.injector, tracer=tr,
                    label=f"direct-access-{iteration}",
                )
                if direct_ms:
                    timeline.add("transfer", clock, clock + direct_ms,
                                 nbytes=direct_bytes,
                                 label=f"direct-{iteration}")
            if um is not None and cfg.memory_mode is MemoryMode.UM_ON_DEMAND:
                # Migration overlaps the kernel, so its trace events tile
                # from the iteration start, not from the cursor's
                # post-transform position.
                if tr is not None:
                    tr.cursor_ms = clock
                off_item = offsets_arr.itemsize
                batches = [
                    um.touch_byte_ranges(
                        offsets_arr,
                        np.asarray(active, dtype=np.int64) * off_item,
                        np.full(len(active), 2 * off_item, dtype=np.int64),
                        prof, tr,
                    )
                ]
                if len(shadows):
                    starts_b, lens_b = self._adj_byte_ranges(
                        shadows.starts, shadows.degrees
                    )
                    batches.append(
                        um.touch_byte_ranges(cols_arr, starts_b, lens_b,
                                             prof, tr)
                    )
                    if weights_arr is not None:
                        # Weights stay dense float32 whatever the
                        # topology encoding.
                        batches.append(
                            um.touch_byte_ranges(
                                weights_arr,
                                shadows.starts.astype(np.int64) * 4,
                                shadows.degrees.astype(np.int64) * 4,
                                prof, tr,
                            )
                        )
                migration_ms = sum(b.time_ms for b in batches)
                migration_bytes = sum(b.bytes_moved for b in batches)
            elif um is not None and cfg.memory_mode is MemoryMode.UM_PREFETCH \
                    and oversubscribed and len(shadows):
                # Prefetched but oversubscribed: evicted pages re-fault.
                if tr is not None:
                    tr.cursor_ms = clock
                starts_b, lens_b = self._adj_byte_ranges(
                    shadows.starts, shadows.degrees
                )
                batches = [um.touch_byte_ranges(cols_arr, starts_b, lens_b,
                                                prof, tr)]
                if weights_arr is not None:
                    batches.append(
                        um.touch_byte_ranges(
                            weights_arr,
                            shadows.starts.astype(np.int64) * 4,
                            shadows.degrees.astype(np.int64) * 4,
                            prof, tr,
                        )
                    )
                migration_ms = sum(b.time_ms for b in batches)
                migration_bytes = sum(b.bytes_moved for b in batches)

            if len(shadows) == 0:
                clock += transform_ms
                stats.record(IterationStats(
                    index=iteration, active_vertices=len(active),
                    shadow_vertices=0, edges_scanned=0, updates=0,
                    newly_visited=0, kernel_ms=0.0, transform_ms=transform_ms,
                    transfer_ms=migration_ms, elapsed_end_ms=clock,
                ))
                if it_span is not None:
                    tr.end(it_span, clock, shadows=0, edges=0, updates=0)
                iteration += 1
                continue

            # --- functional step (exact label propagation) ---------------
            if entry is None:
                edge_idx = ragged_gather_indices(
                    shadows.starts, shadows.degrees
                )
                nbr = cols[edge_idx].astype(np.int64)
                entry = _FrontierExpansion(
                    shadows=shadows,
                    ids64=shadows.ids.astype(np.int64),
                    edge_idx=edge_idx,
                    nbr=nbr,
                    dests=sorted_unique(nbr),
                    w_per_edge=(
                        weights[edge_idx] if weights is not None else None
                    ),
                    active_bytes=active_bytes,
                )
                if key is not None:
                    self._memo_put(key, entry)
            nbr = entry.nbr
            dests = entry.dests
            src_per_edge = np.repeat(labels[entry.ids64], shadows.degrees)
            cand = problem.candidates(src_per_edge, entry.w_per_edge)
            attempted = int(problem.improves(cand, labels[nbr]).sum())

            before = labels[dests].copy()
            problem.scatter_reduce(labels, nbr, cand)
            changed = dests[labels[dests] != before]
            newly = changed[~visited[changed]]
            visited[changed] = True

            if parents is not None and len(changed):
                # The winning atomic's thread records its own id: any
                # edge whose candidate equals the final label witnesses
                # the update.
                changed_mask = np.zeros(csr.num_vertices, dtype=bool)
                changed_mask[changed] = True
                witness = (cand == labels[nbr]) & changed_mask[nbr]
                if entry.src_ids is None:
                    entry.src_ids = np.repeat(entry.ids64, shadows.degrees)
                parents[nbr[witness]] = entry.src_ids[witness]

            # --- kernel cost --------------------------------------------
            if entry.trace_plan is None:
                smp_plan = (
                    plan_prefetch(shadows, offsets, cfg.degree_limit)
                    if smp else None
                )
                entry.trace_plan = gpukernel.build_vertex_trace(
                    spec,
                    starts=shadows.starts,
                    degrees=shadows.degrees,
                    adj_array=cols_arr,
                    neighbor_ids=nbr,
                    label_array=labels_arr,
                    weight_array=weights_arr,
                    meta_array=frontier.virt_act_set,
                    meta_words_per_thread=3,
                    smp=smp,
                    smp_planned_words=(
                        smp_plan.planned_words if smp_plan else None
                    ),
                    trace_cap=gpukernel.TRACE_CAP,
                )
            if self.injector is not None:
                # The ECC check point: an injected bit flip lands in the
                # device labels and aborts the launch with a typed
                # DataCorruptionError before results can be consumed.
                self.injector.on_kernel_launch(labels)
            if tr is not None:
                # The vertex kernel issues after the transform kernel.
                tr.cursor_ms = clock + transform_ms
            timing = simulate_vertex_kernel(
                spec, caches,
                starts=shadows.starts,
                degrees=shadows.degrees,
                adj_array=cols_arr,
                neighbor_ids=nbr,
                label_array=labels_arr,
                weight_array=weights_arr,
                meta_array=frontier.virt_act_set,
                meta_words_per_thread=3,
                smp=smp,
                degree_limit=cfg.degree_limit,
                updates=attempted,
                instr_per_edge=problem.instr_per_edge,
                threads_per_block=threads_per_block,
                plan=entry.trace_plan,
                tracer=tr,
            )
            prof.record_kernel(timing.counters)
            kernel_ms = timing.time_ms
            compute_ms = transform_ms + kernel_ms

            # --- iteration advance: fine-grained overlap -----------------
            # On-demand faults mostly *stall* the kernel (the SM idles on
            # the faulting warps), so migration time is largely serial;
            # ``overlap_efficiency`` is the hidden fraction.  The kernel
            # interval spans the whole iteration — it is resident (and
            # partially stalled) while the DMA proceeds, which is what
            # Fig. 4's concurrent activity bands show.
            if migration_ms > 0:
                hidden = cfg.overlap_efficiency * min(compute_ms, migration_ms)
                iter_ms = compute_ms + migration_ms - hidden
                timeline.add("compute", clock, clock + iter_ms)
                timeline.add("transfer", clock, clock + migration_ms,
                             nbytes=migration_bytes, label=f"iter-{iteration}")
            elif zero_copy_ms > 0 or direct_ms > 0:
                # Zero-copy and direct-access reads are the kernel's own
                # loads: fully pipelined, so the slower of the two
                # pipelines governs.  At most one of the two is nonzero
                # (they are exclusive placements).
                iter_ms = max(compute_ms, zero_copy_ms + direct_ms)
                timeline.add("compute", clock, clock + iter_ms)
            else:
                iter_ms = compute_ms
                timeline.add("compute", clock, clock + compute_ms)
            clock += iter_ms

            stats.record(IterationStats(
                index=iteration,
                active_vertices=len(active),
                shadow_vertices=len(shadows),
                edges_scanned=shadows.total_edges,
                updates=attempted,
                newly_visited=len(newly),
                kernel_ms=kernel_ms,
                transform_ms=transform_ms,
                transfer_ms=migration_ms,
                elapsed_end_ms=clock,
            ))
            if it_span is not None:
                tr.end(
                    it_span, clock,
                    shadows=len(shadows), edges=shadows.total_edges,
                    updates=attempted, newly_visited=len(newly),
                    memo="hit" if memo_hit else "miss",
                )

            frontier.publish(changed)
            iteration += 1
            if target is not None and visited[target]:
                break

        total_ms = clock
        if tr is not None:
            tr.cursor_ms = clock
        d2h_ms = d2h_copy(spec, prof, labels_arr.nbytes,
                          injector=self.injector,
                          tracer=tr, label="labels-d2h")
        setup_this_call = self.setup_ms - setup_before

        trace = None
        if tr is not None:
            tr.end(q_span, total_ms + d2h_ms,
                   iterations=iteration, total_ms=total_ms, d2h_ms=d2h_ms)
            trace = tr.trace(
                problem=problem.name, source=source,
                graph=f"{csr.num_vertices}v-{csr.num_edges}e",
                memory_mode=cfg.memory_mode.value,
            )

        result = TraversalResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            total_ms=total_ms,
            kernel_ms=prof.kernels.elapsed_ms,
            transfer_ms=prof.h2d_time_ms + prof.migration_time_ms,
            d2h_ms=d2h_ms,
            stats=stats,
            timeline=timeline,
            profiler=prof,
            config=cfg,
            device_bytes=mem.device_bytes_in_use,
            um_bytes=mem.um_bytes_allocated,
            oversubscribed=oversubscribed,
            setup_ms=setup_this_call,
            trace=trace,
            extras={
                "smp_effective": smp,
                "threads_per_block": threads_per_block,
                "parents": parents.copy() if parents is not None else None,
                "early_exit": target is not None,
                "session_query_index": self.queries_served,
                "warm_start": self.queries_served > 0 and setup_this_call == 0.0,
            },
        )
        self.queries_served += 1
        if check_traversal_result is not None:
            # Early-exit runs legitimately leave labels beyond the target
            # unsettled, so the label/stats cross-check only applies to
            # full traversals.
            check_traversal_result(
                result, problem=problem if target is None else None
            )
        return result
