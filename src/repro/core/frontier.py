"""Active set and virtual active set device buffers (Section IV-A).

The paper tracks active vertices with "a simple device array [using]
atomic operations to add elements".  This module owns the allocation and
reuse discipline of those arrays:

* ``act_set`` — at most |V| vertex ids (int32),
* ``virt_act_set`` — the UDC output, 3 words per entry, sized once at the
  worst case |V| + |E|/K and reset (not reallocated) each iteration,
* ``in_frontier`` — one byte per vertex to deduplicate atomic appends.

Keeping the sizes explicit here is what lets the engine's device
footprint — and the oversubscription behaviour on uk-2006 — emerge from
real allocations.
"""

from __future__ import annotations

import numpy as np

from repro.core.udc import worst_case_shadow_count
from repro.errors import InvalidLaunchError
from repro.gpu.memory import DeviceArray, DeviceMemory
from repro.graph.csr import VERTEX_DTYPE


class FrontierBuffers:
    """Device-resident frontier storage for one traversal."""

    def __init__(
        self,
        memory: DeviceMemory,
        num_vertices: int,
        num_edges: int,
        degree_limit: int,
    ):
        self.num_vertices = num_vertices
        self.capacity_shadows = worst_case_shadow_count(
            num_vertices, num_edges, degree_limit
        )
        self.act_set: DeviceArray = memory.alloc_empty(
            "act_set", max(num_vertices, 1), VERTEX_DTYPE
        )
        # 3-tuple per shadow vertex: (id, start, end) — Section IV-A.
        self.virt_act_set: DeviceArray = memory.alloc_empty(
            "virt_act_set", 3 * self.capacity_shadows, VERTEX_DTYPE
        )
        self.in_frontier: DeviceArray = memory.alloc_full(
            "in_frontier", max(num_vertices, 1), 0, np.uint8
        )
        self._current = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Host-side mirror of the frontier contents
    # ------------------------------------------------------------------

    @property
    def active(self) -> np.ndarray:
        """Vertex ids active in the upcoming iteration."""
        return self._current

    def seed(self, source: int) -> None:
        if not 0 <= source < self.num_vertices:
            raise InvalidLaunchError(
                f"source {source} out of range [0, {self.num_vertices})"
            )
        self._current = np.array([source], dtype=np.int64)

    def seed_many(self, vertices: np.ndarray) -> None:
        """Seed a multi-source / all-active initial frontier."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) and (
            vertices.min() < 0 or vertices.max() >= self.num_vertices
        ):
            raise InvalidLaunchError("seed vertex out of range")
        if len(vertices) > self.num_vertices:
            raise InvalidLaunchError("frontier larger than vertex count")
        self._current = vertices

    def publish(self, updated_vertices: np.ndarray) -> None:
        """Install the next frontier (the kernel's atomic appends).

        ``updated_vertices`` must already be deduplicated — the engine
        dedupes through the ``in_frontier`` byte map exactly like the
        device kernel does.
        """
        updated = np.asarray(updated_vertices, dtype=np.int64)
        if len(updated) > self.num_vertices:
            raise InvalidLaunchError("frontier larger than vertex count")
        self._current = updated

    def reset(self) -> None:
        """Reset between iterations — memory is reused, never reallocated."""
        self._current = np.empty(0, dtype=np.int64)

    @property
    def is_empty(self) -> bool:
        return len(self._current) == 0

    def device_bytes(self) -> int:
        return (
            self.act_set.nbytes + self.virt_act_set.nbytes + self.in_frontier.nbytes
        )
