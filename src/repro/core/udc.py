"""Unified Degree Cut (Section III).

UDC maps each active vertex ``v`` with edge set ``E_v`` to a set of
*shadow vertices* — same vertex id, disjoint consecutive slices of the
CSR adjacency, each of out-degree <= K (Definition 3).  The transformation
is *in-core and on the fly*: it consumes nothing but the active set and
the unmodified CSR row offsets, allocates no per-graph auxiliary arrays
(that is its advantage over Tigr's VST, Table I) and runs as a small
per-iteration kernel (``actSet2virtActSet`` in Procedure 1).

Everything here is vectorized: one ``np.repeat`` plus a ragged arange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import OFFSET_DTYPE, VERTEX_DTYPE
from repro.utils.ragged import ragged_arange


@dataclass(frozen=True)
class ShadowVertices:
    """The virtual active set: one entry per shadow vertex.

    Mirrors the paper's 3-tuple layout — ``(ID, Start Index, End Index)``
    — except the end index is stored as a degree (end = start + degree),
    which is the same information in the same space.
    """

    ids: np.ndarray  # original vertex id of each shadow vertex (int32)
    starts: np.ndarray  # first CSR edge index of the slice (int64)
    degrees: np.ndarray  # slice length, <= K (int64)

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def total_edges(self) -> int:
        return int(self.degrees.sum())

    @property
    def nbytes(self) -> int:
        """Host memory held by the three columns (for memo budgeting)."""
        return self.ids.nbytes + self.starts.nbytes + self.degrees.nbytes

    def ends(self) -> np.ndarray:
        """Exclusive end edge-index of each slice (the paper's 3rd field)."""
        return self.starts + self.degrees

    def validate_against(self, row_offsets: np.ndarray, k: int) -> None:
        """Check the Definition 3 invariants (used by tests)."""
        if len(self.ids) == 0:
            return
        if self.degrees.max() > k:
            raise AssertionError("shadow vertex exceeds degree limit")
        if self.degrees.min() < 1:
            raise AssertionError("empty shadow vertex")
        lo = row_offsets[self.ids]
        hi = row_offsets[self.ids + 1]
        if np.any(self.starts < lo) or np.any(self.ends() > hi):
            raise AssertionError("shadow slice escapes its owner's adjacency")


def degree_cut(
    active_vertices: np.ndarray,
    row_offsets: np.ndarray,
    degree_limit: int,
) -> ShadowVertices:
    """Transform an active set into its virtual active set.

    Vertices with out-degree 0 produce no shadow vertices — the natural
    filtering the paper highlights ("all the invoked GPU threads are doing
    useful work").  A vertex with out-degree <= K is its own single shadow
    vertex (Fig. 3's vertex 4); larger vertices are cut into
    ``ceil(degree / K)`` shadows over disjoint slices (Fig. 3's vertex 1).
    """
    if degree_limit < 1:
        raise ConfigError(f"degree_limit must be >= 1, got {degree_limit}")
    active = np.asarray(active_vertices, dtype=np.int64)
    if len(active) == 0:
        return _empty()

    first_edge = row_offsets[active].astype(np.int64)
    degrees = row_offsets[active + 1].astype(np.int64) - first_edge
    parts = -(-degrees // degree_limit)  # ceil; 0 for degree-0 vertices

    n_shadow = int(parts.sum())
    if n_shadow == 0:
        return _empty()

    ids = np.repeat(active, parts).astype(VERTEX_DTYPE)
    within = ragged_arange(parts)
    starts = np.repeat(first_edge, parts) + within * degree_limit
    ends = np.minimum(starts + degree_limit, np.repeat(first_edge + degrees, parts))
    return ShadowVertices(ids=ids, starts=starts, degrees=ends - starts)


def _empty() -> ShadowVertices:
    return ShadowVertices(
        ids=np.empty(0, dtype=VERTEX_DTYPE),
        starts=np.empty(0, dtype=np.int64),
        degrees=np.empty(0, dtype=np.int64),
    )


class ShadowTable:
    """Out-of-core UDC: shadow vertices for *all* vertices, precomputed.

    Section III-A's alternative placement of the transformation: instead
    of cutting the active set on the fly each iteration, cut everything
    once at load time and keep a device-resident table.  Selection per
    iteration then reduces to a gather over per-vertex ranges.  The cost
    is the table itself — ``3|N| + 2|V|`` extra words, which is exactly
    the space UDC's in-core default exists to avoid (cf. VST in Table I).
    """

    def __init__(self, row_offsets: np.ndarray, degree_limit: int):
        num_vertices = len(row_offsets) - 1
        self.degree_limit = int(degree_limit)
        self.all = degree_cut(
            np.arange(num_vertices, dtype=np.int64), row_offsets, degree_limit
        )
        counts = np.bincount(
            self.all.ids.astype(np.int64), minlength=num_vertices
        )
        first = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=first[1:])
        self.first_shadow = first[:-1]
        self.shadow_count = counts.astype(np.int64)

    def __len__(self) -> int:
        return len(self.all)

    def select(self, active_vertices: np.ndarray) -> ShadowVertices:
        """Shadow vertices of the given active set (a range gather)."""
        active = np.asarray(active_vertices, dtype=np.int64)
        counts = self.shadow_count[active]
        idx = np.repeat(self.first_shadow[active], counts) + ragged_arange(counts)
        return ShadowVertices(
            ids=self.all.ids[idx],
            starts=self.all.starts[idx],
            degrees=self.all.degrees[idx],
        )

    def table_words(self) -> int:
        """Device words the precomputed table occupies (3|N| + 2|V|)."""
        return 3 * len(self.all) + 2 * len(self.shadow_count)


def worst_case_shadow_count(num_vertices: int, num_edges: int, k: int) -> int:
    """Upper bound on |virtual active set| for sizing its device buffer.

    Every vertex contributes at most ``ceil(d/K) <= 1 + d/K`` shadows, so
    the bound is ``|V| + |E| / K``.  EtaGraph allocates the buffer once at
    this size and reuses it every iteration (Section IV-A).
    """
    if k < 1:
        raise ConfigError(f"degree_limit must be >= 1, got {k}")
    return int(num_vertices + num_edges // k + 1)
