"""EtaGraph configuration.

The three ablation axes of the paper's Fig. 6 are all here:

* ``smp`` — Shared Memory Prefetch on/off ("w/o SMP"),
* ``memory_mode`` — UM with prefetch (EtaGraph), UM on-demand
  ("EtaGraph w/o UMP"), or plain device memory ("w/o UM"),
* ``degree_limit`` — the K of Unified Degree Cut.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class MemoryMode(enum.Enum):
    """Where graph topology lives and how it reaches the GPU."""

    #: Unified Memory + ``cudaMemPrefetchAsync`` (the default EtaGraph).
    UM_PREFETCH = "um_prefetch"
    #: Unified Memory, on-demand page migration ("EtaGraph w/o UMP").
    UM_ON_DEMAND = "um_on_demand"
    #: ``cudaMalloc`` + upfront ``cudaMemcpy`` ("w/o UM" ablation).
    DEVICE = "device"
    #: Pinned host memory accessed over PCIe on every use (Section IV-B
    #: discusses and rejects this: read-only topology re-pays the bus on
    #: every iteration, so UM dominates it for traversal).
    ZERO_COPY = "zero_copy"
    #: Pinned host memory read at 128-byte-sector granularity, touching
    #: only the bytes each frontier actually expands (EMOGI's direct
    #: access).  Unlike ``ZERO_COPY``'s whole-stream bus reads and UM's
    #: 4 KiB page migrations, sparse frontiers pay for exactly their
    #: sectors — the out-of-core placement that wins when the working
    #: set per iteration is far below a page-granular footprint.
    DIRECT_ACCESS = "direct_access"

    @property
    def uses_um(self) -> bool:
        return self in (MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND)

    @property
    def host_resident(self) -> bool:
        """Topology stays in pinned host memory (no device copy, no UM
        residency): the zero-copy and direct-access placements."""
        return self in (MemoryMode.ZERO_COPY, MemoryMode.DIRECT_ACCESS)


@dataclass(frozen=True)
class EtaGraphConfig:
    """Tunable parameters of the EtaGraph engine."""

    #: Degree Limit K (Section III-A): out-degree bound of shadow vertices.
    #: 32 keeps a 256-thread block's SMP buffers at 32 KiB — three resident
    #: blocks per SM on the 1080 Ti.
    degree_limit: int = 32
    #: Shared Memory Prefetch (Section V).
    smp: bool = True
    memory_mode: MemoryMode = MemoryMode.UM_PREFETCH
    threads_per_block: int = 256
    #: Iteration safety net; traversal of any real input converges long
    #: before this (Table IV tops out at 200).
    max_iterations: int = 100_000
    #: Fraction of an iteration's on-demand migration time hidden behind
    #: kernel execution (Section IV-B's fine-grained overlap).  Faults
    #: stall the touching warps, so most of the migration is effectively
    #: serial even though the DMA and the kernel coexist on the timeline.
    overlap_efficiency: float = 0.3
    #: UDC placement (Section III-A): "in_core" transforms the active set
    #: on the GPU every iteration (the paper's choice — zero extra
    #: memory); "out_of_core" precomputes all shadow vertices ahead of
    #: time in a device-resident table, trading memory for skipping the
    #: per-iteration transform kernel (VST-like, without the raw-data
    #: copy).
    udc_mode: str = "in_core"
    #: Record a parent pointer per vertex (one extra |V|-word device
    #: array and one extra store per label update); enables
    #: :func:`repro.algorithms.paths.reconstruct_path` on the result.
    track_parents: bool = False
    #: Bound on the per-session frontier memo (entries): repeated batch
    #: queries hitting an already-seen frontier reuse its degree-cut
    #: result, edge expansion and kernel :class:`~repro.gpu.traceplan.
    #: TracePlan` instead of recomputing them.  Purely a simulator-side
    #: speedup — memoized values are label-independent, so results and
    #: simulated timings are bit-identical with the memo on or off.
    #: 0 disables memoization.
    frontier_memo_entries: int = 128
    #: Run :mod:`repro.testing.invariants` checks inline on the hot path:
    #: every iteration's shadow slices are verified to exactly partition
    #: their owners' adjacencies, and the finished result's timeline,
    #: statistics and profiler counters are cross-checked.  Off by
    #: default (it costs a sort per iteration); the differential runner
    #: and the fuzz CLI turn it on so correctness sweeps exercise the
    #: real engine path, not a mirror of it.
    check_invariants: bool = False
    #: Record a span trace of every query (:mod:`repro.observability`):
    #: setup phases, per-iteration transform/kernel/transfer/migration
    #: activity, all timestamped on the *simulated* clock.  The trace
    #: hangs off :attr:`TraversalResult.trace <repro.core.engine.
    #: TraversalResult>`.  Off by default and zero-cost when off; on, it
    #: observes without perturbing — labels and simulated timings stay
    #: bit-identical (``python -m repro.observability identity``).
    telemetry: bool = False

    def __post_init__(self):
        if self.degree_limit < 1:
            raise ConfigError(f"degree_limit must be >= 1, got {self.degree_limit}")
        if self.threads_per_block < 32:
            raise ConfigError("threads_per_block must be at least one warp")
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if not 0.0 <= self.overlap_efficiency <= 1.0:
            raise ConfigError("overlap_efficiency must be in [0, 1]")
        if self.frontier_memo_entries < 0:
            raise ConfigError(
                f"frontier_memo_entries must be >= 0, "
                f"got {self.frontier_memo_entries}"
            )
        if self.udc_mode not in ("in_core", "out_of_core"):
            raise ConfigError(
                f"udc_mode must be 'in_core' or 'out_of_core', "
                f"got {self.udc_mode!r}"
            )

    def without_smp(self) -> "EtaGraphConfig":
        from dataclasses import replace

        return replace(self, smp=False)

    def with_memory_mode(self, mode: MemoryMode | str) -> "EtaGraphConfig":
        from dataclasses import replace

        if isinstance(mode, str):
            mode = MemoryMode(mode)
        return replace(self, memory_mode=mode)

    def with_track_parents(self, track: bool = True) -> "EtaGraphConfig":
        """This configuration with parent tracking toggled — the variant
        the serving layer's shortest-path pool runs (path reconstruction
        needs per-vertex parent pointers)."""
        from dataclasses import replace

        return replace(self, track_parents=track)
