"""Direction-optimized BFS (Beamer et al., SC'12) on EtaGraph machinery.

The paper cites direction-optimizing BFS as the classic algorithm-level
optimization for traversal; this module provides it as an extension:
when the frontier grows past a threshold, iterations switch from *push*
(top-down, UDC shadow vertices over out-edges) to *pull* (bottom-up:
every unvisited vertex scans its in-edges and adopts a parent from the
frontier, exiting at the first hit).  Pull iterations read the CSC,
which is built once and transferred alongside the CSR — the extra memory
is the price of the hybrid, and :class:`DOBFSResult` reports it.

The switch heuristic is Beamer's: pull when the frontier's out-edge
count exceeds ``|E| / alpha``; push again when the frontier shrinks
below ``|V| / beta``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EtaGraphConfig
from repro.core.frontier import FrontierBuffers
from repro.core.udc import degree_cut
from repro.errors import ConfigError, ConvergenceError, InvalidLaunchError
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.kernel import simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import d2h_copy, h2d_copy
from repro.graph.csc import CSCGraph
from repro.graph.csr import CSRGraph
from repro.utils.ragged import ragged_gather_indices


@dataclass
class DOBFSResult:
    """BFS levels plus the hybrid's execution record."""

    labels: np.ndarray
    source: int
    iterations: int
    total_ms: float
    kernel_ms: float
    #: "push" / "pull" per iteration.
    directions: list[str] = field(default_factory=list)
    device_bytes: int = 0
    profiler: Profiler | None = None

    @property
    def pull_iterations(self) -> int:
        return sum(1 for d in self.directions if d == "pull")


def direction_optimized_bfs(
    csr: CSRGraph,
    source: int,
    *,
    alpha: float = 15.0,
    beta: float = 18.0,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> DOBFSResult:
    """Hybrid push/pull BFS from ``source``.

    Returns the same levels as plain BFS; only the execution schedule —
    and hence the simulated cost — differs.
    """
    if alpha <= 0 or beta <= 0:
        raise ConfigError("alpha and beta must be positive")
    if not 0 <= source < csr.num_vertices:
        raise InvalidLaunchError(f"source {source} out of range")
    cfg = config or EtaGraphConfig()
    spec = device

    mem = DeviceMemory(spec)
    caches = CacheHierarchy(spec)
    prof = Profiler()
    clock = 0.0

    csc = CSCGraph.from_csr(csr)

    offsets_arr = mem.alloc("row_offsets", csr.row_offsets)
    cols_arr = mem.alloc("column_indices", csr.column_indices)
    csc_offsets_arr = mem.alloc("csc_offsets", csc.col_offsets)
    csc_rows_arr = mem.alloc("csc_rows", csc.row_indices)
    labels_arr = mem.alloc(
        "labels", np.full(csr.num_vertices, np.inf, dtype=np.float32)
    )
    frontier = FrontierBuffers(
        mem, csr.num_vertices, csr.num_edges, cfg.degree_limit
    )
    for arr in (offsets_arr, cols_arr, csc_offsets_arr, csc_rows_arr,
                labels_arr):
        clock += h2d_copy(spec, prof, arr.nbytes)

    labels = labels_arr.data
    labels[source] = 0.0
    offsets = csr.row_offsets
    cols = csr.column_indices
    in_offsets = csc.col_offsets
    in_rows = csc.row_indices
    in_degrees = csc.in_degrees().astype(np.int64)

    kernel_ms = 0.0
    directions: list[str] = []
    active = np.array([source], dtype=np.int64)
    level = 0
    pulling = False
    while len(active):
        if level >= cfg.max_iterations:
            raise ConvergenceError("DOBFS exceeded the iteration budget")
        frontier_edges = int(
            (offsets[active + 1].astype(np.int64)
             - offsets[active].astype(np.int64)).sum()
        )
        if not pulling and frontier_edges > csr.num_edges / alpha:
            pulling = True
        elif pulling and len(active) < csr.num_vertices / beta:
            pulling = False

        if pulling:
            directions.append("pull")
            changed, timing = _pull_iteration(
                spec, caches, cfg, labels, level, in_offsets, in_rows,
                in_degrees, csc_rows_arr, labels_arr, frontier,
            )
        else:
            directions.append("push")
            changed, timing = _push_iteration(
                spec, caches, cfg, labels, level, active, offsets, cols,
                cols_arr, labels_arr, frontier,
            )
        if timing is not None:
            prof.record_kernel(timing.counters)
            kernel_ms += timing.time_ms
            clock += timing.time_ms
        active = changed
        level += 1

    total_ms = clock
    d2h_copy(spec, prof, labels_arr.nbytes)
    return DOBFSResult(
        labels=labels.copy(),
        source=source,
        iterations=level,
        total_ms=total_ms,
        kernel_ms=kernel_ms,
        directions=directions,
        device_bytes=mem.device_bytes_in_use,
        profiler=prof,
    )


def _push_iteration(spec, caches, cfg, labels, level, active, offsets, cols,
                    cols_arr, labels_arr, frontier):
    """Standard EtaGraph-style top-down expansion of the frontier."""
    shadows = degree_cut(active, offsets, cfg.degree_limit)
    if len(shadows) == 0:
        return np.empty(0, dtype=np.int64), None
    edge_idx = ragged_gather_indices(shadows.starts, shadows.degrees)
    nbr = cols[edge_idx].astype(np.int64)
    fresh = np.unique(nbr[np.isinf(labels[nbr])])
    labels[fresh] = level + 1
    timing = simulate_vertex_kernel(
        spec, caches,
        starts=shadows.starts,
        degrees=shadows.degrees,
        adj_array=cols_arr,
        neighbor_ids=nbr,
        label_array=labels_arr,
        meta_array=frontier.virt_act_set,
        meta_words_per_thread=3,
        smp=cfg.smp,
        degree_limit=cfg.degree_limit,
        updates=len(fresh),
        instr_per_edge=8.0,
        threads_per_block=cfg.threads_per_block,
    )
    return fresh, timing


def _pull_iteration(spec, caches, cfg, labels, level, in_offsets, in_rows,
                    in_degrees, csc_rows_arr, labels_arr, frontier):
    """Bottom-up step: unvisited vertices look for a frontier parent."""
    unvisited = np.flatnonzero(np.isinf(labels)).astype(np.int64)
    if len(unvisited) == 0:
        return np.empty(0, dtype=np.int64), None
    starts = in_offsets[unvisited].astype(np.int64)
    degs = in_offsets[unvisited + 1].astype(np.int64) - starts
    edge_idx = ragged_gather_indices(starts, degs)
    parents = in_rows[edge_idx].astype(np.int64)
    hit = labels[parents] == level
    owner = np.repeat(np.arange(len(unvisited)), degs)
    found_local = np.unique(owner[hit])
    found = unvisited[found_local]
    labels[found] = level + 1

    # Cost: each pull thread scans in-edges until its first hit; threads
    # that find a parent early stop (model: ~35% of their in-degree on
    # average), the rest scan everything.
    scanned = degs.copy()
    scanned[found_local] = np.maximum(1, (scanned[found_local] * 0.35)
                                      .astype(np.int64))
    # Build a neighbor sample consistent with the scanned counts for the
    # label-gather stream.
    scan_idx = ragged_gather_indices(starts, scanned)
    timing = simulate_vertex_kernel(
        spec, caches,
        starts=starts,
        degrees=scanned,
        adj_array=csc_rows_arr,
        neighbor_ids=in_rows[scan_idx].astype(np.int64),
        label_array=labels_arr,
        meta_array=frontier.act_set,
        meta_words_per_thread=1,
        smp=False,  # pull's early exit defeats fixed-length prefetch
        updates=len(found),
        instr_per_edge=7.0,
        threads_per_block=cfg.threads_per_block,
    )
    return found, timing
