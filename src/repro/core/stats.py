"""Per-iteration traversal statistics.

These records back four of the paper's artifacts directly:

* Table IV — activation percentage and iteration count,
* Fig. 2 — active vertices per iteration + cumulative distribution,
* Fig. 5 — visited vertices over (simulated) time,
* Fig. 4 — per-iteration compute/transfer durations feed the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class IterationStats:
    """Everything measured about one traversal iteration."""

    index: int
    active_vertices: int
    shadow_vertices: int
    edges_scanned: int
    updates: int
    newly_visited: int
    kernel_ms: float
    transform_ms: float
    transfer_ms: float
    elapsed_end_ms: float  # cumulative simulated time at iteration end


@dataclass
class TraversalStats:
    """Accumulated statistics for one complete traversal."""

    num_vertices: int
    #: Size of the initial frontier (1 for single-source traversal,
    #: |V| for all-active problems like connected components).
    seed_count: int = 1
    iterations: list[IterationStats] = field(default_factory=list)

    def record(self, stats: IterationStats) -> None:
        self.iterations.append(stats)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_edges_scanned(self) -> int:
        return sum(s.edges_scanned for s in self.iterations)

    @property
    def total_visited(self) -> int:
        """Vertices ever visited, including the initial frontier."""
        return self.seed_count + sum(s.newly_visited for s in self.iterations)

    def activation_fraction(self) -> float:
        """Table IV "Act. %": share of vertices ever active."""
        if self.num_vertices == 0:
            return 0.0
        return self.total_visited / self.num_vertices

    # ------------------------------------------------------------------
    # Figure series
    # ------------------------------------------------------------------

    def active_per_iteration(self) -> np.ndarray:
        """Fig. 2 bars: |active set| at each iteration."""
        return np.array([s.active_vertices for s in self.iterations], dtype=np.int64)

    def cumulative_active_fraction(self) -> np.ndarray:
        """Fig. 2 line: cumulative share of all activations over iterations."""
        active = self.active_per_iteration().astype(np.float64)
        total = active.sum()
        if total == 0:
            return active
        return np.cumsum(active) / total

    def visited_over_time(self) -> list[tuple[float, int]]:
        """Fig. 5 series: (elapsed ms, cumulative visited vertices)."""
        out = []
        visited = 1
        for s in self.iterations:
            visited += s.newly_visited
            out.append((s.elapsed_end_ms, visited))
        return out

    def visited_growth_linearity(self) -> float:
        """R^2 of visited-vs-time linear fit (Fig. 5's "nearly linear").

        Returns 1.0 for degenerate series (<3 points), where linearity is
        vacuous.
        """
        series = self.visited_over_time()
        if len(series) < 3:
            return 1.0
        t = np.array([p[0] for p in series])
        v = np.array([p[1] for p in series], dtype=np.float64)
        if np.ptp(t) == 0 or np.ptp(v) == 0:
            return 1.0
        coeffs = np.polyfit(t, v, 1)
        residuals = v - np.polyval(coeffs, t)
        ss_res = float((residuals**2).sum())
        ss_tot = float(((v - v.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
