"""Multi-source wave BFS (MSBFS): one traversal pass serves many sources.

Every query in :func:`repro.core.multi.run_batch` and the serving layer
used to be one full traversal — N sources meant N edge expansions, N
``TracePlan`` builds and N cache passes over largely the same topology.
The iBFS line of work and GraphBLAST's linear-algebra framing both make
the same observation: level-synchronous BFS from ``w <= 64`` sources is
*one* traversal over a bit-packed frontier, where each vertex carries a
``uint64`` lane mask (bit ``i`` set = "vertex is in source ``i``'s
current frontier") and an edge propagates its source's whole mask with a
single ``OR`` — the warp-ballot idiom lifted to the frontier itself.

:func:`run_wave` drives a wave through an existing
:class:`~repro.core.session.EngineSession`, reusing its resident
topology, caches, UM state and frontier memo (wave memo entries carry a
``wave_lanes`` key component so they never collide with sequential
entries).  Each wave iteration performs exactly **one** ``actSet2virt``
transform, **one** edge expansion, **one** ``TracePlan`` build (at most
one sort) and **one** cache/coalescing pass — for all lanes at once.
The kernel's gathered operand is the 8-byte lane mask instead of the
4-byte label, and the cost model sees exactly that.

Exactness contract: the per-source levels a wave produces are
**bit-identical** to running each source through
:meth:`EngineSession.query` sequentially.  BFS levels are small exact
integers in float32, a vertex's level is the first iteration whose
frontier reaches it, and lane propagation is a pure OR-reduce — no lane
can observe another lane's state, so the union schedule changes nothing
per source.  ``tests/test_msbfs.py`` and the ``etagraph-msbfs``
differential engine gate this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import get_problem
from repro.core.config import MemoryMode
from repro.core.session import EngineSession, _FrontierExpansion
from repro.core.stats import IterationStats, TraversalStats
from repro.core.smp import plan_prefetch
from repro.core.udc import degree_cut
from repro.errors import ConfigError, ConvergenceError, InvalidLaunchError
from repro.gpu import kernel as gpukernel
from repro.gpu.kernel import simulate_streaming_kernel, simulate_vertex_kernel
from repro.gpu.profiler import Profiler
from repro.gpu.timeline import Timeline
from repro.gpu.transfer import d2h_copy, h2d_copy
from repro.utils.ragged import ragged_gather_indices
from repro.utils.sorting import sorted_unique

#: Lane capacity of one wave: one bit per source in a uint64 mask.
WAVE_LANES = 64

_ONE = np.uint64(1)


@dataclass
class WaveResult:
    """Outcome of one MSBFS wave: per-source levels + the shared
    measurement record of the single fused traversal."""

    #: The wave's sources, lane ``i`` = ``sources[i]``.
    sources: np.ndarray
    #: ``(width, num_vertices)`` float32 — row ``i`` is bit-identical to
    #: ``session.query("bfs", sources[i]).labels``.
    levels: np.ndarray
    total_ms: float
    kernel_ms: float
    transfer_ms: float
    d2h_ms: float
    setup_ms: float
    stats: TraversalStats
    timeline: Timeline
    profiler: Profiler
    config: object
    oversubscribed: bool = False
    trace: object | None = None
    extras: dict = field(default_factory=dict)

    @property
    def width(self) -> int:
        return len(self.sources)

    @property
    def iterations(self) -> int:
        return self.stats.num_iterations

    @property
    def query_ms(self) -> float:
        return self.total_ms - self.setup_ms

    def labels_for(self, lane: int) -> np.ndarray:
        """Source ``lane``'s BFS levels (a fresh float32 copy)."""
        return self.levels[lane].copy()

    def to_results(self) -> list:
        """Per-source :class:`~repro.core.engine.TraversalResult` views.

        The wave's cost is *shared*: each synthesized result carries an
        even ``1/width`` slice of the wave's query time (setup rides on
        lane 0, mirroring ``run_batch``'s first-query accounting), and
        all lanes share the wave's stats/timeline/profiler objects.
        Labels are exact per source; timings are an attribution, which
        is what batch amortization accounting needs.
        """
        from repro.core.engine import TraversalResult

        width = self.width
        share = self.query_ms / width
        out = []
        for lane, source in enumerate(self.sources):
            out.append(TraversalResult(
                labels=self.labels_for(lane),
                source=int(source),
                problem_name="bfs",
                total_ms=share + (self.setup_ms if lane == 0 else 0.0),
                kernel_ms=self.kernel_ms / width,
                transfer_ms=self.transfer_ms / width,
                d2h_ms=self.d2h_ms / width,
                stats=self.stats,
                timeline=self.timeline,
                profiler=self.profiler,
                config=self.config,
                device_bytes=self.extras.get("device_bytes", 0),
                um_bytes=self.extras.get("um_bytes", 0),
                oversubscribed=self.oversubscribed,
                setup_ms=self.setup_ms if lane == 0 else 0.0,
                trace=self.trace if lane == 0 else None,
                extras={
                    "wave": True,
                    "wave_width": width,
                    "wave_lane": lane,
                    "wave_iterations": self.iterations,
                },
            ))
        return out

    def __repr__(self) -> str:
        return (
            f"WaveResult({self.width} sources, {self.iterations} iters, "
            f"{self.total_ms:.3f} ms)"
        )


def _validate_sources(session: EngineSession, sources) -> np.ndarray:
    sources = np.asarray(sources, dtype=np.int64).ravel()
    if len(sources) == 0:
        raise ConfigError("empty wave: at least one source required")
    if len(sources) > WAVE_LANES:
        raise ConfigError(
            f"wave width {len(sources)} exceeds the {WAVE_LANES}-lane "
            "mask capacity; chunk sources into waves "
            "(run_batch(strategy='wave') does this)"
        )
    n = session.csr.num_vertices
    bad = sources[(sources < 0) | (sources >= n)]
    if len(bad):
        raise InvalidLaunchError(
            f"wave source {int(bad[0])} out of range [0, {n})"
        )
    return sources


def run_wave(
    session: EngineSession,
    sources,
    *,
    max_iterations: int | None = None,
) -> WaveResult:
    """Run BFS from up to 64 sources as one bit-packed wave traversal.

    The wave rides ``session``'s resident topology and frontier memo.
    Per-source levels are bit-identical to sequential
    :meth:`EngineSession.query` BFS runs; the cost record covers the
    single fused traversal.  ``max_iterations`` bounds the *wave's*
    iteration count (the union frontier converges when the deepest lane
    does), mapping to :class:`~repro.errors.ConvergenceError` exactly
    like a sequential query.
    """
    session._check_open()
    sources = _validate_sources(session, sources)
    if max_iterations is not None and max_iterations < 1:
        raise ConfigError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    problem = get_problem("bfs")
    problem.check_graph(session.csr)

    cfg = session.config
    csr = session.csr
    spec = session.device
    mem = session.memory
    caches = session.caches
    um = session.um
    width = len(sources)
    n = csr.num_vertices

    prof = Profiler()
    timeline = Timeline()
    check_udc_partition = None
    if cfg.check_invariants:
        from repro.testing.invariants import check_udc_partition
    clock = 0.0
    setup_before = session.setup_ms
    smp = session._smp
    threads_per_block = session._threads_per_block

    tr = session.tracer
    if tr is None and cfg.telemetry:
        from repro.observability.spans import Tracer

        tr = Tracer()
    q_span = None
    if tr is not None:
        q_span = tr.start(
            "wave_query", "engine", clock,
            problem="msbfs", sources=width,
            memory_mode=cfg.memory_mode.value,
            vertices=n, edges=csr.num_edges,
            warm=session.warm,
        )

    # --- topology placement (first query of the session only) ---------
    clock = session._place_topology(problem, prof, timeline, clock, tr)
    offsets_arr = session._offsets_arr
    cols_arr = session._cols_arr

    # --- wave state: bit-packed frontier masks + per-lane levels ------
    masks_host = np.zeros(n, dtype=np.uint64)
    levels = np.full((width, n), np.inf, dtype=np.float32)
    for lane, source in enumerate(sources):
        masks_host[source] |= _ONE << np.uint64(lane)
        levels[lane, source] = 0.0
    mask_arr = session._wave_mask_buffer(masks_host)
    mask = mask_arr.data
    visited_mask = mask.copy()
    frontier = session._frontier_buffers()
    if tr is not None:
        tr.cursor_ms = clock
    t = h2d_copy(spec, prof, mask_arr.nbytes, injector=session.injector,
                 tracer=tr, label="wave-masks-init")
    timeline.add("transfer", clock, clock + t, nbytes=mask_arr.nbytes,
                 label="wave-masks-init")
    clock += t

    oversubscribed = False
    if um is not None:
        um_bytes = sum(a.nbytes for a in session._topo_arrays())
        oversubscribed = \
            um_bytes > um.resident_budget_pages * spec.page_bytes

    clock = session._prefetch_topology(prof, timeline, clock, tr)
    clock = session._place_shadow_table(prof, timeline, clock, tr)
    shadow_table = session._shadow_table

    # --- fused traversal loop -----------------------------------------
    seeds = np.flatnonzero(mask)
    stats = TraversalStats(num_vertices=n, seed_count=len(seeds))
    frontier.seed_many(seeds)
    offsets = csr.row_offsets
    cols = csr.column_indices

    iteration = 0
    iteration_limit = (
        cfg.max_iterations if max_iterations is None else max_iterations
    )
    while not frontier.is_empty:
        if iteration >= iteration_limit:
            raise ConvergenceError(
                f"msbfs wave ({width} sources) did not converge within "
                f"{iteration_limit} iterations"
            )
        active = frontier.active
        frontier.reset()

        it_span = None
        if tr is not None:
            it_span = tr.start("iteration", "engine", clock,
                               index=iteration, active=len(active))
            tr.cursor_ms = clock

        # One memo lookup for the whole wave; entries are keyed with the
        # lane count so wave and sequential expansions never mix (their
        # trace plans gather different operand widths).
        entry = key = None
        active_bytes = b""
        if cfg.frontier_memo_entries > 0:
            if session.injector is not None:
                session.injector.on_memo_lookup(session)
            active_bytes = np.ascontiguousarray(active).tobytes()
            key = session._memo_key(
                active_bytes, len(active), mask_arr, None,
                wave_lanes=width,
            )
            entry = session._memo_get(key, active_bytes)
        memo_hit = entry is not None

        # One actSet2virtActSet transform for every lane at once.
        if shadow_table is not None:
            shadows = entry.shadows if entry is not None \
                else shadow_table.select(active)
            transform = simulate_streaming_kernel(
                spec, caches,
                read_bytes=2 * len(active) * 4,
                write_bytes=len(shadows) * 4,
                n_threads=len(active),
                instr_per_thread=8.0,
                tracer=tr, trace_name="transform",
            )
        else:
            shadows = entry.shadows if entry is not None \
                else degree_cut(active, offsets, cfg.degree_limit)
            transform = simulate_streaming_kernel(
                spec, caches,
                read_bytes=len(active) * 4,
                write_bytes=3 * len(shadows) * 4,
                n_threads=len(active),
                instr_per_thread=14.0,
                scatter_base_address=offsets_arr.base_address,
                scatter_indices=np.asarray(active, dtype=np.int64),
                tracer=tr, trace_name="transform",
            )
        prof.record_kernel(transform.counters)
        transform_ms = transform.time_ms
        if check_udc_partition is not None:
            check_udc_partition(shadows, active, offsets, cfg.degree_limit)

        # On-demand UM / zero-copy traffic: same page-touch pattern a
        # sequential iteration over this active set would generate, paid
        # once for the whole wave.
        migration_ms = 0.0
        migration_bytes = 0
        zero_copy_ms = 0.0
        if cfg.memory_mode is MemoryMode.ZERO_COPY and len(shadows):
            zc_bytes = len(active) * 8 + shadows.total_edges * 4
            zero_copy_ms = spec.bytes_time_ms(
                zc_bytes, spec.pcie_bandwidth_gbps * 0.35
            )
            timeline.add("transfer", clock, clock + zero_copy_ms,
                         nbytes=zc_bytes, label=f"zerocopy-{iteration}")
            if tr is not None:
                tr.emit("zerocopy", "transfer", zero_copy_ms, t_ms=clock,
                        nbytes=float(zc_bytes))
        if um is not None and cfg.memory_mode is MemoryMode.UM_ON_DEMAND:
            if tr is not None:
                tr.cursor_ms = clock
            batches = [
                um.touch_byte_ranges(
                    offsets_arr,
                    np.asarray(active, dtype=np.int64) * 4,
                    np.full(len(active), 8, dtype=np.int64),
                    prof, tr,
                )
            ]
            if len(shadows):
                batches.append(um.touch_byte_ranges(
                    cols_arr, shadows.starts * 4, shadows.degrees * 4,
                    prof, tr,
                ))
            migration_ms = sum(b.time_ms for b in batches)
            migration_bytes = sum(b.bytes_moved for b in batches)
        elif um is not None and cfg.memory_mode is MemoryMode.UM_PREFETCH \
                and oversubscribed and len(shadows):
            if tr is not None:
                tr.cursor_ms = clock
            batch = um.touch_byte_ranges(
                cols_arr, shadows.starts * 4, shadows.degrees * 4,
                prof, tr,
            )
            migration_ms = batch.time_ms
            migration_bytes = batch.bytes_moved

        if len(shadows) == 0:
            clock += transform_ms
            stats.record(IterationStats(
                index=iteration, active_vertices=len(active),
                shadow_vertices=0, edges_scanned=0, updates=0,
                newly_visited=0, kernel_ms=0.0, transform_ms=transform_ms,
                transfer_ms=migration_ms, elapsed_end_ms=clock,
            ))
            if it_span is not None:
                tr.end(it_span, clock, shadows=0, edges=0, updates=0)
            iteration += 1
            continue

        # --- functional step: one OR-propagation for all lanes --------
        if entry is None:
            edge_idx = ragged_gather_indices(shadows.starts, shadows.degrees)
            nbr = cols[edge_idx].astype(np.int64)
            entry = _FrontierExpansion(
                shadows=shadows,
                ids64=shadows.ids.astype(np.int64),
                edge_idx=edge_idx,
                nbr=nbr,
                dests=sorted_unique(nbr),
                w_per_edge=None,
                active_bytes=active_bytes,
            )
            if key is not None:
                session._memo_put(key, entry)
        nbr = entry.nbr
        dests = entry.dests
        masks_per_edge = np.repeat(mask[entry.ids64], shadows.degrees)
        fresh_per_edge = masks_per_edge & ~visited_mask[nbr]
        attempted = int(np.count_nonzero(fresh_per_edge))

        delta = np.zeros(n, dtype=np.uint64)
        np.bitwise_or.at(delta, nbr, masks_per_edge)
        new_bits = delta & ~visited_mask
        changed = dests[new_bits[dests] != 0]

        if len(changed):
            level = np.float32(iteration + 1)
            changed_bits = new_bits[changed]
            union = np.bitwise_or.reduce(changed_bits)
            for lane in range(width):
                bit = _ONE << np.uint64(lane)
                if not union & bit:
                    continue
                levels[lane, changed[(changed_bits & bit) != 0]] = level
            visited_mask[changed] |= changed_bits

        # The device mask buffer now holds the *next* frontier's lanes.
        mask[active] = 0
        if len(changed):
            mask[changed] = new_bits[changed]

        # --- kernel cost: one launch for the whole wave ---------------
        if entry.trace_plan is None:
            smp_plan = (
                plan_prefetch(shadows, offsets, cfg.degree_limit)
                if smp else None
            )
            entry.trace_plan = gpukernel.build_vertex_trace(
                spec,
                starts=shadows.starts,
                degrees=shadows.degrees,
                adj_array=cols_arr,
                neighbor_ids=nbr,
                label_array=mask_arr,
                weight_array=None,
                meta_array=frontier.virt_act_set,
                meta_words_per_thread=3,
                smp=smp,
                smp_planned_words=(
                    smp_plan.planned_words if smp_plan else None
                ),
                trace_cap=gpukernel.TRACE_CAP,
            )
        if session.injector is not None:
            session.injector.on_kernel_launch(mask)
        if tr is not None:
            tr.cursor_ms = clock + transform_ms
        timing = simulate_vertex_kernel(
            spec, caches,
            starts=shadows.starts,
            degrees=shadows.degrees,
            adj_array=cols_arr,
            neighbor_ids=nbr,
            label_array=mask_arr,
            weight_array=None,
            meta_array=frontier.virt_act_set,
            meta_words_per_thread=3,
            smp=smp,
            degree_limit=cfg.degree_limit,
            updates=attempted,
            instr_per_edge=problem.instr_per_edge,
            threads_per_block=threads_per_block,
            plan=entry.trace_plan,
            tracer=tr,
        )
        prof.record_kernel(timing.counters)
        kernel_ms = timing.time_ms
        compute_ms = transform_ms + kernel_ms

        if migration_ms > 0:
            hidden = cfg.overlap_efficiency * min(compute_ms, migration_ms)
            iter_ms = compute_ms + migration_ms - hidden
            timeline.add("compute", clock, clock + iter_ms)
            timeline.add("transfer", clock, clock + migration_ms,
                         nbytes=migration_bytes, label=f"iter-{iteration}")
        elif zero_copy_ms > 0:
            iter_ms = max(compute_ms, zero_copy_ms)
            timeline.add("compute", clock, clock + iter_ms)
        else:
            iter_ms = compute_ms
            timeline.add("compute", clock, clock + compute_ms)
        clock += iter_ms

        stats.record(IterationStats(
            index=iteration,
            active_vertices=len(active),
            shadow_vertices=len(shadows),
            edges_scanned=shadows.total_edges,
            updates=attempted,
            newly_visited=len(changed),
            kernel_ms=kernel_ms,
            transform_ms=transform_ms,
            transfer_ms=migration_ms,
            elapsed_end_ms=clock,
        ))
        if it_span is not None:
            tr.end(
                it_span, clock,
                shadows=len(shadows), edges=shadows.total_edges,
                updates=attempted, newly_visited=len(changed),
                memo="hit" if memo_hit else "miss",
            )

        frontier.publish(changed)
        iteration += 1

    total_ms = clock
    if tr is not None:
        tr.cursor_ms = clock
    d2h_ms = d2h_copy(spec, prof, mask_arr.nbytes,
                      injector=session.injector,
                      tracer=tr, label="wave-masks-d2h")
    setup_this_call = session.setup_ms - setup_before

    trace = None
    if tr is not None:
        tr.end(q_span, total_ms + d2h_ms,
               iterations=iteration, total_ms=total_ms, d2h_ms=d2h_ms)
        trace = tr.trace(
            problem="msbfs", sources=str(width),
            graph=f"{n}v-{csr.num_edges}e",
            memory_mode=cfg.memory_mode.value,
        )

    session.queries_served += width
    return WaveResult(
        sources=sources,
        levels=levels,
        total_ms=total_ms,
        kernel_ms=prof.kernels.elapsed_ms,
        transfer_ms=prof.h2d_time_ms + prof.migration_time_ms,
        d2h_ms=d2h_ms,
        setup_ms=setup_this_call,
        stats=stats,
        timeline=timeline,
        profiler=prof,
        config=cfg,
        oversubscribed=oversubscribed,
        trace=trace,
        extras={
            "smp_effective": smp,
            "threads_per_block": threads_per_block,
            "device_bytes": mem.device_bytes_in_use,
            "um_bytes": mem.um_bytes_allocated,
        },
    )


def wave_chunks(sources: np.ndarray, width: int = WAVE_LANES) -> list[np.ndarray]:
    """Split a source batch into consecutive waves of at most ``width``
    lanes (the final wave may be ragged)."""
    if width < 1 or width > WAVE_LANES:
        raise ConfigError(
            f"wave width must be in [1, {WAVE_LANES}], got {width}"
        )
    sources = np.asarray(sources, dtype=np.int64)
    return [sources[i:i + width] for i in range(0, len(sources), width)]
