"""Delta (push-based) PageRank on the EtaGraph machinery.

Section II-C contrasts traversal with "PageRank-like algorithms" that
update every vertex each iteration.  *Delta* PageRank bridges the two:
each vertex accumulates a residual, and only vertices whose residual
exceeds a threshold push ``damping * residual / out_degree`` to their
neighbors — an active-set algorithm with EtaGraph's exact shape, except
the reduction is **additive** (atomicAdd) rather than a min/max, so it
runs through its own driver instead of a :class:`TraversalProblem`.

The driver reuses everything that makes EtaGraph EtaGraph: UDC shadow
vertices for load balance, SMP for the adjacency bursts, the same kernel
cost model, frontier buffers and device accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.frontier import FrontierBuffers
from repro.core.smp import plan_prefetch
from repro.core.udc import degree_cut
from repro.errors import ConfigError, ConvergenceError
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.kernel import simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import d2h_copy, h2d_copy
from repro.gpu.um import UnifiedMemoryManager
from repro.graph.csr import CSRGraph
from repro.utils.ragged import ragged_gather_indices


@dataclass
class PageRankResult:
    """Ranks plus the simulated measurement record."""

    ranks: np.ndarray
    iterations: int
    total_ms: float
    kernel_ms: float
    active_history: list[int] = field(default_factory=list)
    profiler: Profiler | None = None

    def top_vertices(self, k: int = 10) -> np.ndarray:
        return np.argsort(self.ranks)[::-1][:k]


def delta_pagerank(
    csr: CSRGraph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 1000,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> PageRankResult:
    """Push-based delta PageRank with UDC/SMP execution.

    ``tolerance`` is the per-vertex residual threshold below which a
    vertex stops pushing; the returned ranks satisfy the PageRank
    recurrence to within the total leftover residual.
    """
    if not 0.0 < damping < 1.0:
        raise ConfigError(f"damping must be in (0, 1), got {damping}")
    if tolerance <= 0:
        raise ConfigError(f"tolerance must be > 0, got {tolerance}")
    cfg = config or EtaGraphConfig()
    n = csr.num_vertices
    if n == 0:
        raise ConfigError("empty graph")

    spec = device
    mem = DeviceMemory(spec)
    caches = CacheHierarchy(spec)
    prof = Profiler()
    um = UnifiedMemoryManager(spec, mem) if cfg.memory_mode.uses_um else None
    clock = 0.0

    topo_kind = "um" if um is not None else (
        "zerocopy" if cfg.memory_mode is MemoryMode.ZERO_COPY else "device"
    )
    offsets_arr = mem.alloc("row_offsets", csr.row_offsets, kind=topo_kind)
    cols_arr = mem.alloc("column_indices", csr.column_indices, kind=topo_kind)
    if um is not None:
        um.register(offsets_arr)
        um.register(cols_arr)
        clock += 2 * spec.um_alloc_overhead_us * 1e-3
        if cfg.memory_mode is MemoryMode.UM_PREFETCH:
            for arr in (offsets_arr, cols_arr):
                clock += um.prefetch(arr, prof).time_ms
    elif topo_kind == "device":
        for arr in (offsets_arr, cols_arr):
            clock += h2d_copy(spec, prof, arr.nbytes)

    ranks_arr = mem.alloc("ranks", np.zeros(n, dtype=np.float64))
    residual_arr = mem.alloc(
        "residual", np.full(n, 1.0 - damping, dtype=np.float64)
    )
    frontier = FrontierBuffers(mem, n, csr.num_edges, cfg.degree_limit)
    clock += h2d_copy(spec, prof, ranks_arr.nbytes + residual_arr.nbytes)

    ranks = ranks_arr.data
    residual = residual_arr.data
    offsets = csr.row_offsets
    cols = csr.column_indices
    degrees_all = csr.out_degrees().astype(np.int64)

    kernel_ms = 0.0
    active_history: list[int] = []
    active = np.arange(n, dtype=np.int64)
    iteration = 0
    while len(active):
        if iteration >= max_iterations:
            raise ConvergenceError(
                f"pagerank did not converge within {max_iterations} iterations"
            )
        active_history.append(len(active))

        # Settle the active residuals into the ranks.
        pushed = residual[active].copy()
        ranks[active] += pushed
        residual[active] = 0.0

        # Push damping * residual / degree along out-edges; sinks keep
        # their mass (standard delta-PR sink handling: it simply stops).
        has_edges = degrees_all[active] > 0
        pushers = active[has_edges]
        amount = damping * pushed[has_edges] / degrees_all[pushers]
        shadows = degree_cut(pushers, offsets, cfg.degree_limit)
        if len(shadows):
            edge_idx = ragged_gather_indices(shadows.starts, shadows.degrees)
            nbr = cols[edge_idx].astype(np.int64)
            # Per-shadow push amount: shadows of a vertex share its rate.
            per_vertex_amount = np.zeros(n, dtype=np.float64)
            per_vertex_amount[pushers] = amount
            contrib = np.repeat(
                per_vertex_amount[shadows.ids.astype(np.int64)], shadows.degrees
            )
            np.add.at(residual, nbr, contrib)

            plan = plan_prefetch(shadows, offsets, cfg.degree_limit) \
                if cfg.smp else None
            timing = simulate_vertex_kernel(
                spec, caches,
                starts=shadows.starts,
                degrees=shadows.degrees,
                adj_array=cols_arr,
                neighbor_ids=nbr,
                label_array=residual_arr,
                meta_array=frontier.virt_act_set,
                meta_words_per_thread=3,
                smp=cfg.smp and plan is not None,
                smp_planned_words=plan.planned_words if plan else None,
                degree_limit=cfg.degree_limit,
                updates=len(nbr),  # atomicAdd per edge
                instr_per_edge=9.0,
                threads_per_block=cfg.threads_per_block,
            )
            prof.record_kernel(timing.counters)
            kernel_ms += timing.time_ms
            clock += timing.time_ms

        active = np.flatnonzero(residual > tolerance)
        iteration += 1

    d2h_copy(spec, prof, ranks_arr.nbytes)
    return PageRankResult(
        ranks=ranks.copy(),
        iterations=iteration,
        total_ms=clock,
        kernel_ms=kernel_ms,
        active_history=active_history,
        profiler=prof,
    )


def pagerank_reference(
    csr: CSRGraph, damping: float = 0.85, iterations: int = 200
) -> np.ndarray:
    """Dense power-iteration PageRank (unnormalized delta-PR convention:
    ranks sum to ~|V| * (1 - damping) / (1 - damping) mass pushed from a
    uniform (1 - damping) source per vertex)."""
    n = csr.num_vertices
    ranks = np.zeros(n, dtype=np.float64)
    residual = np.full(n, 1.0 - damping, dtype=np.float64)
    degrees = csr.out_degrees().astype(np.float64)
    src = csr.edge_sources().astype(np.int64)
    dst = csr.column_indices.astype(np.int64)
    for _ in range(iterations):
        ranks += residual
        push = np.zeros(n, dtype=np.float64)
        rate = np.divide(residual * damping, degrees,
                         out=np.zeros(n), where=degrees > 0)
        np.add.at(push, dst, rate[src])
        residual = push
    return ranks
