"""Batched multi-query traversal.

The paper's related work (Congra, iBFS) studies concurrent graph queries;
EtaGraph's data layout makes the batch case easy: the topology is placed
(or prefetched) **once** and every query reuses the resident pages, so
transfer cost amortizes across the batch.  This module runs a batch of
sources through one :class:`~repro.core.session.EngineSession` and
reports the amortization *as measured*: ``shared_setup_ms`` is the
topology movement the session actually performed (it equals the first
query's ``setup_ms``), and every subsequent query executes against warm
UM residency — its transfer time covers only pages migrated for that
query, which in the UM modes is zero while the device is not
oversubscribed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import EtaGraphConfig
from repro.core.engine import TraversalResult
from repro.core.session import EngineSession
from repro.errors import ConfigError, SessionClosedError
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph


@dataclass
class BatchResult:
    """Results of a multi-source batch plus shared-cost accounting."""

    results: list[TraversalResult]
    #: Topology transfer + UM setup, paid once for the whole batch —
    #: measured from the session, not reconstructed.
    shared_setup_ms: float
    #: Sum of per-query times excluding the shared setup.
    query_ms: float
    #: How the batch was executed: ``"sequential"`` (one traversal per
    #: source) or ``"wave"`` (MSBFS, up to 64 sources per traversal).
    strategy: str = "sequential"
    #: The underlying :class:`~repro.core.msbfs.WaveResult` objects when
    #: ``strategy="wave"`` (one per wave, in source order); else ``None``.
    waves: list | None = None

    @property
    def total_ms(self) -> float:
        return self.shared_setup_ms + self.query_ms

    @property
    def naive_total_ms(self) -> float:
        """What running each query standalone would have cost: every
        query re-pays the (measured) shared topology setup."""
        return sum(self.shared_setup_ms + r.query_ms for r in self.results)

    @property
    def amortization_speedup(self) -> float:
        if self.total_ms <= 0:
            # A zero-cost batch either did nothing (no speedup to claim)
            # or amortized a free setup — never divide by zero.
            return float("inf") if self.naive_total_ms > 0 else 1.0
        return self.naive_total_ms / self.total_ms

    def labels(self, i: int) -> np.ndarray:
        return self.results[i].labels


def run_batch(
    csr: CSRGraph,
    sources: list[int] | np.ndarray,
    problem: str = "bfs",
    *,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    session: EngineSession | None = None,
    strategy: str = "sequential",
    wave_width: int | None = None,
) -> BatchResult:
    """Run ``problem`` from every source, sharing one topology placement.

    All queries go through one :class:`~repro.core.session.EngineSession`:
    the first pays the topology movement (``shared_setup_ms``, measured),
    the rest run warm.  Pass an existing ``session`` to extend an already
    warm one — e.g. a long-lived serving session answering successive
    batches — in which case ``shared_setup_ms`` covers only the setup
    *this* batch triggered (zero for a fully warm session) and the caller
    keeps ownership of the session.

    ``strategy="wave"`` (BFS only) chunks the sources into MSBFS waves of
    up to ``wave_width`` lanes (default 64, the mask capacity) and runs
    each wave as **one** bit-packed traversal via
    :func:`repro.core.msbfs.run_wave` — same session residency, same
    frontier memo (wave-keyed), per-source labels bit-identical to the
    sequential strategy.  The returned per-source results carry an even
    share of their wave's cost; ``waves`` holds the measured wave records.
    """
    sources = list(np.asarray(sources, dtype=np.int64))
    if not sources:
        raise ConfigError("empty source batch")
    if strategy not in ("sequential", "wave"):
        raise ConfigError(
            f"unknown batch strategy {strategy!r} "
            "(expected 'sequential' or 'wave')"
        )
    if strategy == "wave" and problem != "bfs":
        raise ConfigError(
            f"strategy='wave' is MSBFS: it only serves bfs, got {problem!r}"
        )
    own_session = session is None
    if own_session:
        session = EngineSession(csr, config or EtaGraphConfig(), device)
    elif session.closed:
        raise SessionClosedError("cannot run a batch on a closed session")
    elif session.csr is not csr:
        raise ConfigError("session is bound to a different graph")

    try:
        setup_before = session.setup_ms
        if strategy == "wave":
            from repro.core import msbfs

            waves = [
                msbfs.run_wave(session, chunk)
                for chunk in msbfs.wave_chunks(
                    np.asarray(sources, dtype=np.int64),
                    wave_width if wave_width is not None else msbfs.WAVE_LANES,
                )
            ]
            results = [r for w in waves for r in w.to_results()]
            shared = session.setup_ms - setup_before
            return BatchResult(
                results=results,
                shared_setup_ms=shared,
                query_ms=sum(w.query_ms for w in waves),
                strategy="wave",
                waves=waves,
            )
        if wave_width is not None:
            raise ConfigError("wave_width only applies to strategy='wave'")
        results = [session.query(problem, int(s)) for s in sources]
        shared = session.setup_ms - setup_before
        return BatchResult(
            results=results,
            shared_setup_ms=shared,
            query_ms=sum(r.query_ms for r in results),
        )
    finally:
        if own_session:
            session.close()


def pick_sources(
    csr: CSRGraph,
    count: int,
    *,
    seed: int = 0,
    min_degree: int = 1,
    strict: bool = True,
    meta: dict | None = None,
) -> np.ndarray:
    """Deterministically sample distinct query sources with out-edges.

    Asking for more sources than the graph has eligible vertices is a
    configuration error, not a quiet downgrade: under ``strict=True``
    (the default, and what the bench path uses) it raises
    :class:`~repro.errors.ConfigError` so a sweep never silently runs
    fewer queries than its config claims.  Callers that prefer the old
    clamping behaviour pass ``strict=False`` and may hand in a ``meta``
    dict — the clamp is recorded there (``requested``/``delivered``/
    ``clamped``) so it still leaves a signal in their metadata.
    """
    eligible = np.flatnonzero(csr.out_degrees() >= min_degree)
    if len(eligible) == 0:
        raise ConfigError("no vertices with the required degree")
    requested = count
    if count > len(eligible):
        if strict:
            raise ConfigError(
                f"requested {count} sources but only {len(eligible)} "
                f"vertices have out-degree >= {min_degree}; pass "
                "strict=False to clamp"
            )
        count = len(eligible)
    if meta is not None:
        meta["requested"] = requested
        meta["delivered"] = count
        meta["clamped"] = count < requested
    rng = np.random.default_rng(seed)
    return rng.choice(eligible, size=count, replace=False).astype(np.int64)
