"""Batched multi-query traversal.

The paper's related work (Congra, iBFS) studies concurrent graph queries;
EtaGraph's data layout makes the batch case easy: the topology is placed
(or prefetched) **once** and every query reuses the resident pages, so
transfer cost amortizes across the batch.  This module runs a batch of
sources through one engine setup and reports the amortization explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.engine import EtaGraphEngine, TraversalResult
from repro.errors import ConfigError
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph


@dataclass
class BatchResult:
    """Results of a multi-source batch plus shared-cost accounting."""

    results: list[TraversalResult]
    #: Topology transfer + UM setup, paid once for the whole batch.
    shared_setup_ms: float
    #: Sum of per-query times excluding the shared setup.
    query_ms: float

    @property
    def total_ms(self) -> float:
        return self.shared_setup_ms + self.query_ms

    @property
    def naive_total_ms(self) -> float:
        """What running each query standalone would have cost."""
        return sum(r.total_ms for r in self.results)

    @property
    def amortization_speedup(self) -> float:
        return self.naive_total_ms / self.total_ms if self.total_ms else 1.0

    def labels(self, i: int) -> np.ndarray:
        return self.results[i].labels


def run_batch(
    csr: CSRGraph,
    sources: list[int] | np.ndarray,
    problem: str = "bfs",
    *,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> BatchResult:
    """Run ``problem`` from every source, sharing one topology placement.

    Implementation note: the engine re-places topology per ``run`` call
    (faithful to standalone use), so the batch accounting subtracts the
    repeated setup cost analytically — the shared cost is the first
    query's transfer, and subsequent queries contribute only their
    kernel + label-initialization time, which is exactly what a
    resident-topology batch executes.
    """
    sources = list(np.asarray(sources, dtype=np.int64))
    if not sources:
        raise ConfigError("empty source batch")
    cfg = config or EtaGraphConfig()
    engine = EtaGraphEngine(csr, cfg, device)

    results = [engine.run(problem, int(s)) for s in sources]

    first = results[0]
    # Shared: topology movement (H2D or migrations) + UM registration.
    topo_bytes = csr.row_offsets.nbytes + csr.column_indices.nbytes
    if csr.edge_weights is not None and results[0].problem_name != "bfs":
        topo_bytes += csr.edge_weights.nbytes
    if cfg.memory_mode is MemoryMode.DEVICE:
        shared = first.profiler.h2d_time_ms * (
            topo_bytes / max(first.profiler.h2d_bytes, 1)
        )
    else:
        shared = first.profiler.migration_time_ms \
            + 3 * device.um_alloc_overhead_us * 1e-3

    query_ms = sum(max(r.total_ms - shared, r.kernel_ms) for r in results)
    return BatchResult(
        results=results,
        shared_setup_ms=shared,
        query_ms=query_ms,
    )


def pick_sources(
    csr: CSRGraph, count: int, *, seed: int = 0, min_degree: int = 1
) -> np.ndarray:
    """Deterministically sample distinct query sources with out-edges."""
    eligible = np.flatnonzero(csr.out_degrees() >= min_degree)
    if len(eligible) == 0:
        raise ConfigError("no vertices with the required degree")
    rng = np.random.default_rng(seed)
    count = min(count, len(eligible))
    return rng.choice(eligible, size=count, replace=False).astype(np.int64)
