"""EtaGraph core: the paper's primary contribution.

* :mod:`repro.core.udc` — Unified Degree Cut (Section III)
* :mod:`repro.core.frontier` — active set / virtual active set (Section IV-A)
* :mod:`repro.core.smp` — Shared Memory Prefetch planning (Section V)
* :mod:`repro.core.engine` — Procedure 1's main loop, with the fine-grained
  transfer/compute overlap of Section IV-B
* :mod:`repro.core.session` — topology-resident sessions: place once,
  query many times against warm UM residency and caches
* :mod:`repro.core.api` — the user-facing entry points
"""

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.udc import ShadowVertices, degree_cut
from repro.core.engine import EtaGraphEngine, TraversalResult
from repro.core.session import EngineSession
from repro.core.api import EtaGraph, bfs, sssp, sswp

__all__ = [
    "EtaGraphConfig",
    "MemoryMode",
    "ShadowVertices",
    "degree_cut",
    "EtaGraphEngine",
    "EngineSession",
    "TraversalResult",
    "EtaGraph",
    "bfs",
    "sssp",
    "sswp",
]
