"""Public EtaGraph API.

The class-based interface::

    from repro import EtaGraph
    eta = EtaGraph(graph)                 # graph: repro.graph.CSRGraph
    result = eta.bfs(source=0)
    result.labels                          # BFS levels
    result.total_ms                        # simulated transfer + kernel time

the one-shot helpers :func:`bfs`, :func:`sssp`, :func:`sswp`, or — for
repeated queries over one graph — a topology-resident session::

    with eta.session() as session:
        for source in sources:
            session.query("bfs", source)   # topology placed once
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EtaGraphConfig
from repro.core.engine import EtaGraphEngine, TraversalResult
from repro.core.session import EngineSession
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph


class EtaGraph:
    """User-facing handle: a graph bound to an engine configuration."""

    def __init__(
        self,
        graph: CSRGraph,
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
    ):
        self.graph = graph
        self.config = config or EtaGraphConfig()
        self.device = device
        self._engine = EtaGraphEngine(graph, self.config, device)
        self._path_session: EngineSession | None = None

    def session(self) -> EngineSession:
        """A topology-resident :class:`~repro.core.session.EngineSession`:
        the first query places (and prefetches) topology, every further
        query runs against the warm residency.  The caller owns it —
        use as a context manager or call ``close()``."""
        return self._engine.session()

    def bfs(self, source: int, target: int | None = None) -> TraversalResult:
        """Breadth-first search from ``source``; labels are BFS levels.

        With ``target``, the traversal exits early once the target's
        level is settled (point-to-point reachability query).
        """
        return self._engine.run("bfs", source, target=target)

    def shortest_hop_path(self, source: int, target: int) -> list[int]:
        """A minimum-hop path ``source -> target`` (BFS + parent pointers).

        Raises :class:`repro.algorithms.paths.PathError` if unreachable.

        Path queries share one parent-tracking session per handle, so
        repeated calls reuse the resident topology instead of re-placing
        it per query.
        """
        from dataclasses import replace

        from repro.algorithms.paths import reconstruct_path

        if self._path_session is None or self._path_session.closed:
            self._path_session = EngineSession(
                self.graph, replace(self.config, track_parents=True),
                self.device,
            )
        result = self._path_session.query("bfs", source, target=target)
        return reconstruct_path(result.extras["parents"], source, target)

    def sssp(self, source: int) -> TraversalResult:
        """Single-source shortest paths; requires edge weights."""
        return self._engine.run("sssp", source)

    def sswp(self, source: int) -> TraversalResult:
        """Single-source widest paths; requires edge weights."""
        return self._engine.run("sswp", source)

    def run(self, problem: str, source: int) -> TraversalResult:
        """Run any registered traversal problem by name."""
        return self._engine.run(problem, source)

    def reachable_from(self, source: int) -> np.ndarray:
        """Boolean reachability mask derived from a BFS run."""
        result = self.bfs(source)
        return np.isfinite(result.labels)

    def __repr__(self) -> str:
        return f"EtaGraph({self.graph!r}, K={self.config.degree_limit})"


def bfs(
    graph: CSRGraph,
    source: int,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> TraversalResult:
    """One-shot BFS via EtaGraph."""
    return EtaGraph(graph, config, device).bfs(source)


def sssp(
    graph: CSRGraph,
    source: int,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> TraversalResult:
    """One-shot SSSP via EtaGraph."""
    return EtaGraph(graph, config, device).sssp(source)


def sswp(
    graph: CSRGraph,
    source: int,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> TraversalResult:
    """One-shot SSWP via EtaGraph."""
    return EtaGraph(graph, config, device).sswp(source)
