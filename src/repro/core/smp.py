"""Shared Memory Prefetch planning (Section V-B).

SMP splits the virtual active set into two bins — shadow vertices of
degree exactly K and those below K — and plans a fixed-length unrolled
prefetch for each bin: K loads for the first, K-1 for the second.  Fixed
lengths are what let the compiler fully unroll the load loop; the cost is
over-fetch for shadows with degree < K-1, which the paper accepts ("more
data requests are issued ... however, performance actually improves").

This module computes those planned burst lengths (clamped to the end of
each owner's adjacency so the over-fetch never reads out of bounds — the
real kernel guards the same way) and the per-block shared-memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.udc import ShadowVertices


@dataclass(frozen=True)
class PrefetchPlan:
    """Planned SMP bursts for one kernel launch."""

    #: Words each thread will prefetch (K or K-1, clamped to the owner's
    #: remaining adjacency).
    planned_words: np.ndarray
    #: How many threads landed in the full-K bin.
    full_bin_count: int
    #: Shared-memory words reserved per thread (the bin maximum).
    words_per_thread: int

    @property
    def total_prefetch_words(self) -> int:
        return int(self.planned_words.sum())

    def overfetch_words(self, degrees: np.ndarray) -> int:
        """Words fetched beyond actual degrees (the accepted waste)."""
        return int((self.planned_words - np.asarray(degrees)).sum())


def plan_prefetch(
    shadows: ShadowVertices,
    row_offsets: np.ndarray,
    degree_limit: int,
) -> PrefetchPlan:
    """Split shadows into the K / K-1 bins and size their bursts."""
    k = int(degree_limit)
    degrees = shadows.degrees
    if len(degrees) == 0:
        return PrefetchPlan(
            planned_words=np.empty(0, dtype=np.int64),
            full_bin_count=0,
            words_per_thread=k,
        )
    full = degrees >= k
    planned = np.where(full, k, max(k - 1, 1)).astype(np.int64)
    # Clamp each burst to its owner's adjacency end: prefetching past the
    # slice is allowed (it is the over-fetch), past the owner is not.
    owner_end = row_offsets[shadows.ids + 1].astype(np.int64)
    planned = np.minimum(planned, owner_end - shadows.starts)
    planned = np.maximum(planned, degrees)  # never below the real need
    return PrefetchPlan(
        planned_words=planned,
        full_bin_count=int(full.sum()),
        words_per_thread=k,
    )
