"""The EtaGraph engine: Procedure 1 of the paper.

Per traversal:

1. Topology (CSR, unmodified) is placed in Unified Memory — prefetched
   up front (``cudaMemPrefetchAsync``, the default) or migrated on demand
   ("w/o UMP") — or copied to device memory in the "w/o UM" ablation.
2. Each iteration, the active set is transformed *on the fly* into the
   virtual active set by Unified Degree Cut (``actSet2virtActSet``), then
   one thread per shadow vertex runs the traversal kernel, optionally with
   Shared Memory Prefetch.
3. On-demand page migrations overlap kernel execution (Section IV-B); the
   timeline records both activities for the Fig. 4 analysis.

The engine is *functionally exact* (labels match the CPU oracles
bit-for-bit) while all performance numbers come from the GPU model.

The traversal loop itself lives in :mod:`repro.core.session`:
:class:`~repro.core.session.EngineSession` places topology once and
serves many queries against warm residency; :meth:`EtaGraphEngine.run`
is the one-shot path, implemented as a session of one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import TraversalProblem
from repro.core.config import EtaGraphConfig
from repro.core.stats import TraversalStats
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.profiler import Profiler
from repro.gpu.timeline import Timeline
from repro.graph.csr import CSRGraph


@dataclass
class TraversalResult:
    """Outcome of one traversal: labels plus the full measurement record."""

    labels: np.ndarray
    source: int
    problem_name: str
    #: The paper's reported metric: H2D transfer + kernel execution (ms).
    total_ms: float
    kernel_ms: float
    transfer_ms: float
    d2h_ms: float
    stats: TraversalStats
    timeline: Timeline
    profiler: Profiler
    config: EtaGraphConfig
    device_bytes: int = 0
    um_bytes: int = 0
    oversubscribed: bool = False
    #: Topology-placement time paid during *this* call (ms).  Non-zero
    #: only for the query that triggered session setup — a one-shot
    #: ``run()`` or the first query of a fresh
    #: :class:`~repro.core.session.EngineSession`; warm queries report 0.
    setup_ms: float = 0.0
    extras: dict = field(default_factory=dict)
    #: A :class:`repro.observability.Trace` of this query when the
    #: session ran with ``telemetry=True`` (or an external tracer was
    #: attached); ``None`` otherwise.
    trace: object | None = None

    @property
    def query_ms(self) -> float:
        """This query's own execution time: ``total_ms`` minus the shared
        topology setup paid during the call."""
        return self.total_ms - self.setup_ms

    @property
    def iterations(self) -> int:
        return self.stats.num_iterations

    @property
    def visited(self) -> int:
        return self.stats.total_visited

    @property
    def gteps(self) -> float:
        """Giga-traversed-edges per second over the total (transfer +
        kernel) time — the conventional traversal throughput metric."""
        if self.total_ms <= 0:
            return 0.0
        return self.stats.total_edges_scanned / (self.total_ms * 1e-3) / 1e9

    @property
    def kernel_gteps(self) -> float:
        """GTEPS over kernel time only (what baseline papers report)."""
        if self.kernel_ms <= 0:
            return 0.0
        return self.stats.total_edges_scanned / (self.kernel_ms * 1e-3) / 1e9

    def __repr__(self) -> str:
        return (
            f"TraversalResult({self.problem_name}, src={self.source}, "
            f"{self.iterations} iters, {self.visited} visited, "
            f"{self.total_ms:.3f} ms)"
        )


class EtaGraphEngine:
    """One engine instance per (graph, config, device) combination."""

    def __init__(
        self,
        csr: CSRGraph,
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
    ):
        self.csr = csr
        self.config = config or EtaGraphConfig()
        self.device = device

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def session(self):
        """A fresh :class:`~repro.core.session.EngineSession` bound to
        this engine's graph, configuration and device."""
        from repro.core.session import EngineSession

        return EngineSession(self.csr, self.config, self.device)

    def run(
        self,
        problem: TraversalProblem | str,
        source: int,
        *,
        target: int | None = None,
    ) -> TraversalResult:
        """Run one traversal; see :class:`TraversalResult`.

        A session of one: topology is placed, the query runs, the session
        is closed — ``total_ms`` therefore includes the full topology
        placement cost (recorded in ``result.setup_ms``), faithful to
        standalone use.

        ``target`` enables point-to-point early exit: the loop stops at
        the end of the iteration that settles the target.  Only valid
        for BFS, whose labels are final on first assignment; monotone
        weighted labels (SSSP/SSWP) may still improve later.
        """
        session = self.session()
        try:
            return session.query(problem, source, target=target)
        finally:
            session.close()
