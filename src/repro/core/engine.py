"""The EtaGraph engine: Procedure 1 of the paper.

Per traversal:

1. Topology (CSR, unmodified) is placed in Unified Memory — prefetched
   up front (``cudaMemPrefetchAsync``, the default) or migrated on demand
   ("w/o UMP") — or copied to device memory in the "w/o UM" ablation.
2. Each iteration, the active set is transformed *on the fly* into the
   virtual active set by Unified Degree Cut (``actSet2virtActSet``), then
   one thread per shadow vertex runs the traversal kernel, optionally with
   Shared Memory Prefetch.
3. On-demand page migrations overlap kernel execution (Section IV-B); the
   timeline records both activities for the Fig. 4 analysis.

The engine is *functionally exact* (labels match the CPU oracles
bit-for-bit) while all performance numbers come from the GPU model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import TraversalProblem, get_problem
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.frontier import FrontierBuffers
from repro.core.smp import plan_prefetch
from repro.core.stats import IterationStats, TraversalStats
from repro.core.udc import degree_cut
from repro.errors import ConvergenceError
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.kernel import simulate_streaming_kernel, simulate_vertex_kernel
from repro.gpu.memory import DeviceArray, DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.timeline import Timeline
from repro.gpu.transfer import d2h_copy, h2d_copy
from repro.gpu.um import UnifiedMemoryManager
from repro.graph.csr import CSRGraph
from repro.utils.ragged import ragged_gather_indices


@dataclass
class TraversalResult:
    """Outcome of one traversal: labels plus the full measurement record."""

    labels: np.ndarray
    source: int
    problem_name: str
    #: The paper's reported metric: H2D transfer + kernel execution (ms).
    total_ms: float
    kernel_ms: float
    transfer_ms: float
    d2h_ms: float
    stats: TraversalStats
    timeline: Timeline
    profiler: Profiler
    config: EtaGraphConfig
    device_bytes: int = 0
    um_bytes: int = 0
    oversubscribed: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        return self.stats.num_iterations

    @property
    def visited(self) -> int:
        return self.stats.total_visited

    @property
    def gteps(self) -> float:
        """Giga-traversed-edges per second over the total (transfer +
        kernel) time — the conventional traversal throughput metric."""
        if self.total_ms <= 0:
            return 0.0
        return self.stats.total_edges_scanned / (self.total_ms * 1e-3) / 1e9

    @property
    def kernel_gteps(self) -> float:
        """GTEPS over kernel time only (what baseline papers report)."""
        if self.kernel_ms <= 0:
            return 0.0
        return self.stats.total_edges_scanned / (self.kernel_ms * 1e-3) / 1e9

    def __repr__(self) -> str:
        return (
            f"TraversalResult({self.problem_name}, src={self.source}, "
            f"{self.iterations} iters, {self.visited} visited, "
            f"{self.total_ms:.3f} ms)"
        )


class EtaGraphEngine:
    """One engine instance per (graph, config, device) combination."""

    def __init__(
        self,
        csr: CSRGraph,
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
    ):
        self.csr = csr
        self.config = config or EtaGraphConfig()
        self.device = device

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(
        self,
        problem: TraversalProblem | str,
        source: int,
        *,
        target: int | None = None,
    ) -> TraversalResult:
        """Run one traversal; see :class:`TraversalResult`.

        ``target`` enables point-to-point early exit: the loop stops at
        the end of the iteration that settles the target.  Only valid
        for BFS, whose labels are final on first assignment; monotone
        weighted labels (SSSP/SSWP) may still improve later.
        """
        if isinstance(problem, str):
            problem = get_problem(problem)
        problem.check_graph(self.csr)
        if target is not None:
            if problem.name != "bfs":
                from repro.errors import ConfigError

                raise ConfigError(
                    "early-exit target is only sound for BFS "
                    f"(got {problem.name})"
                )
            if not 0 <= target < self.csr.num_vertices:
                from repro.errors import InvalidLaunchError

                raise InvalidLaunchError(f"target {target} out of range")
        cfg = self.config
        csr = self.csr
        spec = self.device

        if not 0 <= source < csr.num_vertices:
            from repro.errors import InvalidLaunchError

            raise InvalidLaunchError(
                f"source {source} out of range [0, {csr.num_vertices})"
            )

        mem = DeviceMemory(spec)
        caches = CacheHierarchy(spec)
        prof = Profiler()
        timeline = Timeline()
        check_udc_partition = check_traversal_result = None
        if cfg.check_invariants:
            # Imported lazily: repro.testing imports this module.
            from repro.testing.invariants import (
                check_traversal_result, check_udc_partition,
            )
        um = UnifiedMemoryManager(spec, mem) if cfg.memory_mode.uses_um else None
        clock = 0.0

        # SMP needs K words of shared memory per thread: shrink the block
        # to fit, or fall back to the plain kernel when even one warp's
        # buffers exceed an SM (physically impossible prefetch).
        from repro.gpu.sharedmem import max_smp_block_threads

        smp = cfg.smp
        threads_per_block = cfg.threads_per_block
        if smp:
            fit = max_smp_block_threads(spec, cfg.degree_limit)
            if fit == 0:
                smp = False
            else:
                threads_per_block = min(threads_per_block, fit)

        # --- topology placement ----------------------------------------
        if cfg.memory_mode.uses_um:
            topo_kind = "um"
        elif cfg.memory_mode is MemoryMode.ZERO_COPY:
            topo_kind = "zerocopy"
        else:
            topo_kind = "device"
        offsets_arr = mem.alloc("row_offsets", csr.row_offsets, kind=topo_kind)
        cols_arr = mem.alloc("column_indices", csr.column_indices, kind=topo_kind)
        weights_arr: DeviceArray | None = None
        if problem.needs_weights:
            weights_arr = mem.alloc("edge_weights", csr.edge_weights, kind=topo_kind)
        topo_arrays = [a for a in (offsets_arr, cols_arr, weights_arr) if a]

        if um is not None:
            for arr in topo_arrays:
                um.register(arr)
                # cudaMallocManaged setup cost (page-table registration).
                clock += spec.um_alloc_overhead_us * 1e-3
        elif cfg.memory_mode is MemoryMode.ZERO_COPY:
            # Pinning + mapping the host buffers (cudaHostAlloc path).
            clock += len(topo_arrays) * spec.um_alloc_overhead_us * 1e-3
        else:
            # cudaMemcpy of the whole topology before the first kernel.
            for arr in topo_arrays:
                t = h2d_copy(spec, prof, arr.nbytes)
                timeline.add("transfer", clock, clock + t, nbytes=arr.nbytes,
                             label=arr.name)
                clock += t

        # --- working state on device ------------------------------------
        labels_host = problem.initial_labels(csr.num_vertices, source)
        labels_arr = mem.alloc("labels", labels_host.copy())
        labels = labels_arr.data
        frontier = FrontierBuffers(
            mem, csr.num_vertices, csr.num_edges, cfg.degree_limit
        )
        parents = None
        if cfg.track_parents:
            from repro.algorithms.paths import NO_PARENT

            parents_arr = mem.alloc_full(
                "parents", max(csr.num_vertices, 1), NO_PARENT, np.int32
            )
            parents = parents_arr.data
        t = h2d_copy(spec, prof, labels_arr.nbytes)
        timeline.add("transfer", clock, clock + t, nbytes=labels_arr.nbytes,
                     label="labels-init")
        clock += t

        oversubscribed = False
        if um is not None:
            um_bytes = sum(a.nbytes for a in topo_arrays)
            oversubscribed = um_bytes > um.resident_budget_pages * spec.page_bytes

        if cfg.memory_mode is MemoryMode.UM_PREFETCH:
            for arr in topo_arrays:
                batch = um.prefetch(arr, prof)
                if batch.time_ms:
                    timeline.add("transfer", clock, clock + batch.time_ms,
                                 nbytes=batch.bytes_moved, label=f"prefetch-{arr.name}")
                    clock += batch.time_ms

        # --- optional out-of-core UDC table ------------------------------
        shadow_table = None
        if cfg.udc_mode == "out_of_core":
            from repro.core.udc import ShadowTable

            shadow_table = ShadowTable(csr.row_offsets, cfg.degree_limit)
            # The table is device-resident: 3 words per shadow vertex plus
            # per-vertex ranges — this allocation is the space price of
            # skipping the per-iteration transform (and can OOM).
            mem.alloc_empty(
                "shadow_table", 3 * max(len(shadow_table), 1), np.int32
            )
            mem.alloc_empty(
                "shadow_ranges", 2 * max(csr.num_vertices, 1), np.int32
            )
            t = h2d_copy(spec, prof, (3 * len(shadow_table)
                                      + 2 * csr.num_vertices) * 4)
            timeline.add("transfer", clock, clock + t, label="shadow-table")
            clock += t

        # --- traversal loop ----------------------------------------------
        seeds = problem.initial_frontier(csr.num_vertices, source)
        stats = TraversalStats(
            num_vertices=csr.num_vertices, seed_count=len(seeds)
        )
        visited = np.zeros(csr.num_vertices, dtype=bool)
        visited[seeds] = True
        frontier.seed_many(seeds)
        offsets = csr.row_offsets
        cols = csr.column_indices
        weights = csr.edge_weights

        iteration = 0
        while not frontier.is_empty:
            if iteration >= cfg.max_iterations:
                raise ConvergenceError(
                    f"{problem.name} did not converge within "
                    f"{cfg.max_iterations} iterations"
                )
            active = frontier.active
            frontier.reset()  # the paper's per-iteration reset-and-reuse

            # actSet2virtActSet kernel: gather offsets, emit 3-tuples —
            # or, out-of-core, a plain range gather from the shadow table.
            if shadow_table is not None:
                shadows = shadow_table.select(active)
                transform = simulate_streaming_kernel(
                    spec, caches,
                    read_bytes=2 * len(active) * 4,
                    write_bytes=len(shadows) * 4,
                    n_threads=len(active),
                    instr_per_thread=8.0,
                )
            else:
                shadows = degree_cut(active, offsets, cfg.degree_limit)
                transform = simulate_streaming_kernel(
                    spec, caches,
                    read_bytes=len(active) * 4,
                    write_bytes=3 * len(shadows) * 4,
                    n_threads=len(active),
                    instr_per_thread=14.0,
                    scatter_base_address=offsets_arr.base_address,
                    scatter_indices=np.asarray(active, dtype=np.int64),
                )
            prof.record_kernel(transform.counters)
            transform_ms = transform.time_ms
            if check_udc_partition is not None:
                check_udc_partition(shadows, active, offsets, cfg.degree_limit)

            # On-demand UM: fault in the pages this iteration reads.
            migration_ms = 0.0
            migration_bytes = 0
            zero_copy_ms = 0.0
            if cfg.memory_mode is MemoryMode.ZERO_COPY and len(shadows):
                # Every topology read crosses PCIe, every iteration, at
                # the poor efficiency of fine-grained bus reads.  This is
                # what makes UM strictly better for read-only topology
                # (Section IV-B).
                weight_mult = 2 if weights_arr is not None else 1
                zc_bytes = (len(active) * 8
                            + shadows.total_edges * 4 * weight_mult)
                zero_copy_ms = spec.bytes_time_ms(
                    zc_bytes, spec.pcie_bandwidth_gbps * 0.35
                )
                timeline.add("transfer", clock, clock + zero_copy_ms,
                             nbytes=zc_bytes, label=f"zerocopy-{iteration}")
            if um is not None and cfg.memory_mode is MemoryMode.UM_ON_DEMAND:
                batches = [
                    um.touch_byte_ranges(
                        offsets_arr,
                        np.asarray(active, dtype=np.int64) * 4,
                        np.full(len(active), 8, dtype=np.int64),
                        prof,
                    )
                ]
                if len(shadows):
                    starts_b = shadows.starts * 4
                    lens_b = shadows.degrees * 4
                    batches.append(
                        um.touch_byte_ranges(cols_arr, starts_b, lens_b, prof)
                    )
                    if weights_arr is not None:
                        batches.append(
                            um.touch_byte_ranges(weights_arr, starts_b, lens_b, prof)
                        )
                migration_ms = sum(b.time_ms for b in batches)
                migration_bytes = sum(b.bytes_moved for b in batches)
            elif um is not None and cfg.memory_mode is MemoryMode.UM_PREFETCH \
                    and oversubscribed and len(shadows):
                # Prefetched but oversubscribed: evicted pages re-fault.
                starts_b = shadows.starts * 4
                lens_b = shadows.degrees * 4
                batches = [um.touch_byte_ranges(cols_arr, starts_b, lens_b, prof)]
                if weights_arr is not None:
                    batches.append(
                        um.touch_byte_ranges(weights_arr, starts_b, lens_b, prof)
                    )
                migration_ms = sum(b.time_ms for b in batches)
                migration_bytes = sum(b.bytes_moved for b in batches)

            if len(shadows) == 0:
                clock += transform_ms
                stats.record(IterationStats(
                    index=iteration, active_vertices=len(active),
                    shadow_vertices=0, edges_scanned=0, updates=0,
                    newly_visited=0, kernel_ms=0.0, transform_ms=transform_ms,
                    transfer_ms=migration_ms, elapsed_end_ms=clock,
                ))
                iteration += 1
                continue

            # --- functional step (exact label propagation) ---------------
            edge_idx = ragged_gather_indices(shadows.starts, shadows.degrees)
            nbr = cols[edge_idx].astype(np.int64)
            src_per_edge = np.repeat(
                labels[shadows.ids.astype(np.int64)], shadows.degrees
            )
            w_per_edge = weights[edge_idx] if weights is not None else None
            cand = problem.candidates(src_per_edge, w_per_edge)
            attempted = int(problem.improves(cand, labels[nbr]).sum())

            dests = np.unique(nbr)
            before = labels[dests].copy()
            problem.scatter_reduce(labels, nbr, cand)
            changed = dests[labels[dests] != before]
            newly = changed[~visited[changed]]
            visited[changed] = True

            if parents is not None and len(changed):
                # The winning atomic's thread records its own id: any
                # edge whose candidate equals the final label witnesses
                # the update.
                changed_mask = np.zeros(csr.num_vertices, dtype=bool)
                changed_mask[changed] = True
                witness = (cand == labels[nbr]) & changed_mask[nbr]
                src_ids = np.repeat(
                    shadows.ids.astype(np.int64), shadows.degrees
                )
                parents[nbr[witness]] = src_ids[witness]

            # --- kernel cost --------------------------------------------
            plan = None
            if smp:
                plan = plan_prefetch(shadows, offsets, cfg.degree_limit)
            timing = simulate_vertex_kernel(
                spec, caches,
                starts=shadows.starts,
                degrees=shadows.degrees,
                adj_array=cols_arr,
                neighbor_ids=nbr,
                label_array=labels_arr,
                weight_array=weights_arr,
                meta_array=frontier.virt_act_set,
                meta_words_per_thread=3,
                smp=smp,
                smp_planned_words=plan.planned_words if plan else None,
                degree_limit=cfg.degree_limit,
                updates=attempted,
                instr_per_edge=problem.instr_per_edge,
                threads_per_block=threads_per_block,
            )
            prof.record_kernel(timing.counters)
            kernel_ms = timing.time_ms
            compute_ms = transform_ms + kernel_ms

            # --- iteration advance: fine-grained overlap -----------------
            # On-demand faults mostly *stall* the kernel (the SM idles on
            # the faulting warps), so migration time is largely serial;
            # ``overlap_efficiency`` is the hidden fraction.  The kernel
            # interval spans the whole iteration — it is resident (and
            # partially stalled) while the DMA proceeds, which is what
            # Fig. 4's concurrent activity bands show.
            if migration_ms > 0:
                hidden = cfg.overlap_efficiency * min(compute_ms, migration_ms)
                iter_ms = compute_ms + migration_ms - hidden
                timeline.add("compute", clock, clock + iter_ms)
                timeline.add("transfer", clock, clock + migration_ms,
                             nbytes=migration_bytes, label=f"iter-{iteration}")
            elif zero_copy_ms > 0:
                # Zero-copy reads are the kernel's own loads: fully
                # pipelined, so the slower of the two pipelines governs.
                iter_ms = max(compute_ms, zero_copy_ms)
                timeline.add("compute", clock, clock + iter_ms)
            else:
                iter_ms = compute_ms
                timeline.add("compute", clock, clock + compute_ms)
            clock += iter_ms

            stats.record(IterationStats(
                index=iteration,
                active_vertices=len(active),
                shadow_vertices=len(shadows),
                edges_scanned=shadows.total_edges,
                updates=attempted,
                newly_visited=len(newly),
                kernel_ms=kernel_ms,
                transform_ms=transform_ms,
                transfer_ms=migration_ms,
                elapsed_end_ms=clock,
            ))

            frontier.publish(changed)
            iteration += 1
            if target is not None and visited[target]:
                break

        total_ms = clock
        d2h_ms = d2h_copy(spec, prof, labels_arr.nbytes)

        result = TraversalResult(
            labels=labels.copy(),
            source=source,
            problem_name=problem.name,
            total_ms=total_ms,
            kernel_ms=prof.kernels.elapsed_ms,
            transfer_ms=prof.h2d_time_ms + prof.migration_time_ms,
            d2h_ms=d2h_ms,
            stats=stats,
            timeline=timeline,
            profiler=prof,
            config=cfg,
            device_bytes=mem.device_bytes_in_use,
            um_bytes=mem.um_bytes_allocated,
            oversubscribed=oversubscribed,
            extras={
                "smp_effective": smp,
                "threads_per_block": threads_per_block,
                "parents": parents.copy() if parents is not None else None,
                "early_exit": target is not None,
            },
        )
        if check_traversal_result is not None:
            # Early-exit runs legitimately leave labels beyond the target
            # unsettled, so the label/stats cross-check only applies to
            # full traversals.
            check_traversal_result(
                result, problem=problem if target is None else None
            )
        return result
