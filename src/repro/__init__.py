"""repro — a reproduction of "Excavating the Potential of GPU for
Accelerating Graph Traversal" (EtaGraph, IPDPS 2019).

Public surface:

* :class:`repro.EtaGraph` / :func:`repro.bfs` / :func:`repro.sssp` /
  :func:`repro.sswp` — the paper's framework on the simulated GPU,
* :mod:`repro.graph` — CSR & friends, generators, datasets,
* :mod:`repro.gpu` — the GPU execution-model simulator,
* :mod:`repro.baselines` — CuSha / Gunrock / Tigr analogues,
* :mod:`repro.bench` — the table/figure reproduction harness,
* :class:`repro.ResilientSession` — the hardened serving wrapper
  (retry, budgets, graceful degradation; see ``docs/resilience.md``),
* :class:`repro.TraversalService` / :mod:`repro.serving` — the
  multi-tenant request/response frontend with SLO-aware admission
  (see ``docs/serving.md``),
* :class:`repro.Tracer` / :mod:`repro.observability` — opt-in telemetry
  over the simulated timeline (see ``docs/observability.md``).
"""

from repro.core.api import EtaGraph, bfs, sssp, sswp
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.engine import TraversalResult
from repro.core.session import EngineSession
from repro.graph.csr import CSRGraph
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.observability import Tracer
from repro.resilience import FaultPlan, ResilientSession, RetryPolicy
from repro.serving import TraversalService

__version__ = "0.1.0"

__all__ = [
    "EtaGraph",
    "bfs",
    "sssp",
    "sswp",
    "EtaGraphConfig",
    "EngineSession",
    "MemoryMode",
    "TraversalResult",
    "CSRGraph",
    "DeviceSpec",
    "GTX_1080TI",
    "FaultPlan",
    "ResilientSession",
    "RetryPolicy",
    "Tracer",
    "TraversalService",
    "__version__",
]
