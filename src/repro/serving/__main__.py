"""CLI for the serving layer.

Usage::

    python -m repro.serving demo                 # serve a sample mix
    python -m repro.serving identity             # service-vs-session gate
    python -m repro.serving identity --pool-size 2
    python -m repro.serving identity --health    # health-plane on/off gate
    python -m repro.serving chaos                # self-healing battery
    python -m repro.serving chaos --runs 200 --seed 7
    python -m repro.bench serve                  # closed-loop load bench
"""

from __future__ import annotations

import argparse
import sys

from repro.graph import datasets


def _demo(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving demo",
        description="Serve one sample multi-tenant batch and print the "
        "responses plus the metrics snapshot.",
    )
    parser.add_argument("--graph", default="slashdot")
    parser.add_argument("--pool-size", type=int, default=2)
    parser.add_argument(
        "--trace", default=None,
        help="write the service-track Chrome trace here",
    )
    args = parser.parse_args(argv)

    from repro.serving import (
        NeighborhoodRequest, PageRankRequest, ShortestPathRequest,
        StatsRequest, TraversalService, VisitRequest,
    )

    csr, source = datasets.load(args.graph)
    with TraversalService(
        csr, pool_size=args.pool_size, telemetry=args.trace is not None,
    ) as service:
        responses = service.serve([
            VisitRequest(problem="bfs", source=source, tenant="interactive",
                         deadline_ms=5.0),
            NeighborhoodRequest(source=source, hops=2, tenant="interactive",
                                deadline_ms=5.0),
            ShortestPathRequest(source=source, target=0, tenant="interactive",
                                deadline_ms=5.0),
            VisitRequest(problem="cc", source=0, tenant="batch"),
            PageRankRequest(tenant="analytics"),
            StatsRequest(tenant="analytics"),
        ])
        for response in responses:
            print(response)
        print()
        snapshot = service.metrics_snapshot()
        for key, value in sorted(snapshot["counters"].items()):
            print(f"  {key} = {value:g}")
        if args.trace:
            service.trace().save_chrome(args.trace)
            print(f"wrote {args.trace}", file=sys.stderr)
    return 0


def _identity(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving identity",
        description="Gate: service results must be bit-identical to "
        "per-lane bare-session replays; with --health, serving with the "
        "self-healing plane on must be bit-identical (labels AND "
        "simulated clocks) to serving with it off.",
    )
    parser.add_argument("--graph", default="slashdot")
    parser.add_argument(
        "--pool-size", type=int, default=None,
        help="lanes to check (default: both 1 and 2)",
    )
    parser.add_argument(
        "--health", action="store_true",
        help="run the health-plane on/off identity gate instead "
        "(bare and resilient lanes)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="run the observability on/off identity gate instead: "
        "request tracing, SLO monitors and the flight recorder all "
        "enabled must leave labels and simulated clocks bit-identical",
    )
    args = parser.parse_args(argv)

    from repro.serving.identity import check_health_identity, \
        check_service_identity, check_trace_identity

    csr, _ = datasets.load(args.graph)
    failed = False
    if args.trace:
        sizes = (args.pool_size,) if args.pool_size else (2,)
        for size in sizes:
            for resilient in (False, True):
                lanes = "resilient" if resilient else "bare"
                mismatches = check_trace_identity(
                    csr, pool_size=size, resilient=resilient,
                )
                if mismatches:
                    failed = True
                    print(f"pool_size={size} ({lanes} lanes): "
                          "observability is NOT observational:")
                    for line in mismatches:
                        print(f"  {line}")
                else:
                    print(f"pool_size={size} ({lanes} lanes): telemetry "
                          "on == telemetry off (bit-identical)")
        return 1 if failed else 0
    if args.health:
        sizes = (args.pool_size,) if args.pool_size else (2,)
        for size in sizes:
            for resilient in (False, True):
                lanes = "resilient" if resilient else "bare"
                mismatches = check_health_identity(
                    csr, pool_size=size, resilient=resilient,
                )
                if mismatches:
                    failed = True
                    print(f"pool_size={size} ({lanes} lanes): health "
                          "plane is NOT observational:")
                    for line in mismatches:
                        print(f"  {line}")
                else:
                    print(f"pool_size={size} ({lanes} lanes): health "
                          "on == health off (bit-identical)")
        return 1 if failed else 0
    sizes = (args.pool_size,) if args.pool_size else (1, 2)
    for size in sizes:
        mismatches = check_service_identity(csr, pool_size=size)
        if mismatches:
            failed = True
            print(f"pool_size={size}: NOT bit-identical:")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"pool_size={size}: service == session (bit-identical)")
    return 1 if failed else 0


def _chaos(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving chaos",
        description="Self-healing chaos battery: sustained per-lane "
        "faults; every request must be answered-or-typed-shed exactly "
        "once, every open lane standby-replaced, and at least one lane "
        "must recover (open -> half-open -> closed).",
    )
    parser.add_argument("--runs", type=int, default=None,
                        help="number of seeded runs (default 200)")
    parser.add_argument("--seconds", type=float, default=None,
                        help="stop after this wall-time budget instead")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-vertices", type=int, default=40)
    parser.add_argument(
        "--postmortem-dir", default=None,
        help="attach a flight recorder to every run, dump postmortem "
        "bundles here, and enforce the explainability contract "
        "(failing plans must leave validating bundles)",
    )
    args = parser.parse_args(argv)

    from repro.serving.chaos import run_heal_chaos

    report = run_heal_chaos(
        runs=args.runs, max_seconds=args.seconds, seed=args.seed,
        max_vertices=args.max_vertices,
        postmortem_dir=args.postmortem_dir, log=print,
    )
    print(report.summary())
    if not report.ok:
        return 1
    if report.recoveries == 0:
        print("FAIL: no run demonstrated an open -> half-open -> closed "
              "recovery")
        return 1
    if args.postmortem_dir is not None and report.postmortems == 0:
        print("FAIL: no run produced a postmortem bundle")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["demo"]:
        return _demo(argv[1:])
    if argv[:1] == ["identity"]:
        return _identity(argv[1:])
    if argv[:1] == ["chaos"]:
        return _chaos(argv[1:])
    print(__doc__.strip())
    return 0 if not argv else 2


if __name__ == "__main__":
    raise SystemExit(main())
