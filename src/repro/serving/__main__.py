"""CLI for the serving layer.

Usage::

    python -m repro.serving demo                 # serve a sample mix
    python -m repro.serving identity             # service-vs-session gate
    python -m repro.serving identity --pool-size 2
    python -m repro.bench serve                  # closed-loop load bench
"""

from __future__ import annotations

import argparse
import sys

from repro.graph import datasets


def _demo(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving demo",
        description="Serve one sample multi-tenant batch and print the "
        "responses plus the metrics snapshot.",
    )
    parser.add_argument("--graph", default="slashdot")
    parser.add_argument("--pool-size", type=int, default=2)
    parser.add_argument(
        "--trace", default=None,
        help="write the service-track Chrome trace here",
    )
    args = parser.parse_args(argv)

    from repro.serving import (
        NeighborhoodRequest, PageRankRequest, ShortestPathRequest,
        StatsRequest, TraversalService, VisitRequest,
    )

    csr, source = datasets.load(args.graph)
    with TraversalService(
        csr, pool_size=args.pool_size, telemetry=args.trace is not None,
    ) as service:
        responses = service.serve([
            VisitRequest(problem="bfs", source=source, tenant="interactive",
                         deadline_ms=5.0),
            NeighborhoodRequest(source=source, hops=2, tenant="interactive",
                                deadline_ms=5.0),
            ShortestPathRequest(source=source, target=0, tenant="interactive",
                                deadline_ms=5.0),
            VisitRequest(problem="cc", source=0, tenant="batch"),
            PageRankRequest(tenant="analytics"),
            StatsRequest(tenant="analytics"),
        ])
        for response in responses:
            print(response)
        print()
        snapshot = service.metrics_snapshot()
        for key, value in sorted(snapshot["counters"].items()):
            print(f"  {key} = {value:g}")
        if args.trace:
            service.trace().save_chrome(args.trace)
            print(f"wrote {args.trace}", file=sys.stderr)
    return 0


def _identity(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving identity",
        description="Gate: service results must be bit-identical to "
        "per-lane bare-session replays.",
    )
    parser.add_argument("--graph", default="slashdot")
    parser.add_argument(
        "--pool-size", type=int, default=None,
        help="lanes to check (default: both 1 and 2)",
    )
    args = parser.parse_args(argv)

    from repro.serving.identity import check_service_identity

    csr, _ = datasets.load(args.graph)
    sizes = (args.pool_size,) if args.pool_size else (1, 2)
    failed = False
    for size in sizes:
        mismatches = check_service_identity(csr, pool_size=size)
        if mismatches:
            failed = True
            print(f"pool_size={size}: NOT bit-identical:")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"pool_size={size}: service == session (bit-identical)")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["demo"]:
        return _demo(argv[1:])
    if argv[:1] == ["identity"]:
        return _identity(argv[1:])
    print(__doc__.strip())
    return 0 if not argv else 2


if __name__ == "__main__":
    raise SystemExit(main())
