"""Self-healing chaos battery: sustained lane faults, exact serving.

:mod:`repro.resilience.chaos` fuzzes one session; this battery fuzzes
the *service plane*.  Each run draws a random graph, a pool of 2–3
resilient lanes, sustained per-lane fault plans, a random retry policy
and a random :class:`~repro.serving.health.HealthPolicy`, then serves
several mixed request batches (deadlined, best-effort, waves, stats)
and asserts the serving contract under sustained faults:

* **Conservation** — every submitted request gets exactly one terminal
  response (served, typed error, or typed shed); no losses, no
  duplicates, and the admission queue drains empty.
* **Correct-or-typed** — every ``ok`` visit response carries labels
  bit-identical to the CPU oracle; every failure is a typed
  :class:`~repro.errors.ReproError` string, never a bare traceback.
* **Warm standby** — every breaker ``open`` is paired with a same-lane
  ``replace`` event at the same simulated instant (the standby is built
  *before* the sick session retires, so the swap is within any breaker
  window by construction), and each lane's session generation equals
  its open count.
* **Recovery** — across the battery, at least one lane must complete
  the full open → half-open → closed arc (the CLI gate fails on zero
  recoveries).
* **Explainability** (with ``postmortem_dir``) — every failing plan
  (typed error responses or breaker opens) must leave at least one
  :class:`~repro.observability.recorder.FlightRecorder` postmortem
  bundle naming its trigger, and every bundle's Chrome-trace slice must
  pass :func:`~repro.observability.export.validate_chrome_trace`.

Everything derives from one sweep seed; a failing run prints the
coordinates to replay it.  ``python -m repro.serving chaos`` runs this,
and the ``heal-smoke`` CI job gates on it (``obs-serve-smoke`` adds
``--postmortem-dir``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.session import RetryPolicy
from repro.serving.admission import TenantQuota
from repro.serving.health import HealthPolicy
from repro.serving.requests import NeighborhoodRequest, StatsRequest, \
    VisitRequest
from repro.serving.service import TraversalService

_PROBLEMS = ("bfs", "cc", "sssp", "sswp")
#: Fault kinds that demonstrably fire on the serving path: every query
#: in every memory mode starts with a labels-init H2D copy
#: (transfer_fault), allocates per-query buffers (alloc_oom), moves its
#: labels back (bitflip) and touches the frontier memo
#: (memo_invalidate).
_KINDS = ("transfer_fault", "transfer_fault", "bitflip", "alloc_oom",
          "memo_invalidate")
_TENANTS = ("alpha", "beta", "gamma")


@dataclass
class HealReport:
    """Aggregate outcome of one self-healing chaos battery."""

    seed: int
    runs: int = 0
    requests: int = 0
    #: Responses that returned a verified-correct (or well-formed) payload.
    served_ok: int = 0
    #: Typed-shed responses (deadline or brownout shedding).
    sheds: int = 0
    #: Typed failures by exception type name.
    typed_errors: dict = field(default_factory=dict)
    #: Breaker lifecycle totals across every run.
    opens: int = 0
    closes: int = 0
    replaces: int = 0
    #: Runs in which at least one lane closed again after opening —
    #: a demonstrated open -> half-open -> closed recovery.
    recoveries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    brownouts: int = 0
    faults_fired: int = 0
    #: Postmortem bundles dumped by per-run flight recorders (only
    #: counted when the battery runs with ``postmortem_dir``).
    postmortems: int = 0
    elapsed_s: float = 0.0
    #: Contract violations, with the run coordinates to replay them.
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        errors = ", ".join(
            f"{k}={v}" for k, v in sorted(self.typed_errors.items())
        ) or "none"
        head = (
            f"heal chaos (seed {self.seed}): {self.runs} runs, "
            f"{self.requests} requests in {self.elapsed_s:.1f}s\n"
            f"  answered: {self.served_ok} ok, {self.sheds} shed, "
            f"typed errors: {errors}\n"
            f"  breakers: {self.opens} opens, {self.replaces} standby "
            f"replacements, {self.closes} closes "
            f"({self.recoveries} runs recovered)\n"
            f"  hedges: {self.hedges} launched, {self.hedge_wins} won; "
            f"brownout transitions: {self.brownouts}; "
            f"faults fired: {self.faults_fired}"
        )
        if self.postmortems:
            head += f"\n  postmortem bundles: {self.postmortems}"
        if self.ok:
            return (
                f"{head}\nself-healing contract holds: every request was "
                "answered-or-typed-shed exactly once and every open lane "
                "was standby-replaced at the open instant"
            )
        lines = [f"{head}\n{len(self.failures)} CONTRACT VIOLATIONS:"]
        lines += [f"  {f}" for f in self.failures]
        return "\n".join(lines)


def _sustained_plan(rng: np.random.Generator) -> FaultPlan:
    """A sustained per-lane fault plan: one or two long event windows
    (6–24 events each) starting near the lane's first serves."""
    specs = []
    for _ in range(int(rng.integers(1, 3))):
        kind = _KINDS[int(rng.integers(len(_KINDS)))]
        specs.append(FaultSpec(
            kind=kind,
            at=int(rng.integers(0, 8)),
            count=int(rng.integers(6, 25)),
        ))
    return FaultPlan(specs=tuple(specs))


def _random_requests(
    rng: np.random.Generator, graph, problem: str, n: int,
) -> list:
    """A mixed batch: mostly visits (some deadlined, some best-effort,
    runs of identical-problem plain BFS that wave batching can merge),
    a sprinkle of neighborhood and stats requests."""
    requests = []
    for _ in range(n):
        tenant = _TENANTS[int(rng.integers(len(_TENANTS)))]
        roll = rng.random()
        if roll < 0.08:
            requests.append(StatsRequest(tenant=tenant))
            continue
        if roll < 0.16:
            requests.append(NeighborhoodRequest(
                tenant=tenant,
                source=int(rng.integers(graph.num_vertices)),
                hops=int(rng.integers(1, 4)),
            ))
            continue
        deadline = None
        if roll < 0.28:
            # Tight-but-plausible budgets: some will shed under faults.
            deadline = float(rng.uniform(0.5, 30.0))
        elif roll < 0.40:
            # Nearly-spent budgets: EDF serves these first, so only a
            # hair-trigger deadline actually exercises the shed path.
            deadline = float(rng.uniform(0.0, 0.25))
        requests.append(VisitRequest(
            tenant=tenant,
            problem=problem,
            source=int(rng.integers(graph.num_vertices)),
            deadline_ms=deadline,
        ))
    return requests


def _check_response(response, graph, problem, report, coords) -> None:
    """Assert one terminal response honors correct-or-typed."""
    from repro.testing.differential import diff_labels, oracle_labels

    request = response.request
    if response.shed:
        if not response.error:
            report.failures.append(
                f"{coords} seq {response.seq}: shed without a typed reason"
            )
            return
        report.sheds += 1
        name = response.error.split(":", 1)[0]
        report.typed_errors[name] = report.typed_errors.get(name, 0) + 1
        return
    if not response.ok:
        if not response.error or ":" not in response.error:
            report.failures.append(
                f"{coords} seq {response.seq}: failure without a typed "
                f"error: {response.error!r}"
            )
            return
        name = response.error.split(":", 1)[0]
        report.typed_errors[name] = report.typed_errors.get(name, 0) + 1
        return
    # ok=True: verify the payload.
    if isinstance(request, VisitRequest):
        diff = diff_labels(
            oracle_labels(graph, request.problem, request.source),
            np.asarray(response.value), graph,
        )
        if diff is not None:
            report.failures.append(
                f"{coords} seq {response.seq} "
                f"{request.describe()}: WRONG LABELS: {diff}"
            )
            return
    elif isinstance(request, NeighborhoodRequest):
        levels = np.asarray(response.value["levels"])
        if levels.size and levels.max(initial=0) > request.hops:
            report.failures.append(
                f"{coords} seq {response.seq}: neighborhood exceeded "
                f"hops={request.hops}"
            )
            return
    elif isinstance(request, StatsRequest):
        if response.value.get("num_vertices") != graph.num_vertices:
            report.failures.append(
                f"{coords} seq {response.seq}: stats reported "
                f"{response.value.get('num_vertices')} vertices, graph "
                f"has {graph.num_vertices}"
            )
            return
    report.served_ok += 1


def _check_postmortems(
    recorder, run_errors: int, opens: int, report, coords,
) -> None:
    """Assert the explainability contract for one run: a failing plan
    leaves at least one bundle, every bundle names its trigger, and
    every written Chrome-trace slice validates."""
    import json
    from pathlib import Path

    from repro.observability.export import validate_chrome_trace

    if (run_errors or opens) and not recorder.dumps:
        report.failures.append(
            f"{coords}: failing plan ({run_errors} error responses, "
            f"{opens} breaker opens) left no postmortem bundle"
        )
        return
    for manifest in recorder.dumps:
        trigger = manifest.get("trigger", "")
        if not trigger or ":" not in trigger:
            report.failures.append(
                f"{coords}: postmortem {manifest.get('stem')} does not "
                f"name its trigger: {trigger!r}"
            )
            continue
        if recorder.out_dir is None:
            continue
        out = Path(recorder.out_dir)
        for name in manifest["files"]:
            if not name.endswith(".trace.json"):
                continue
            with open(out / name, encoding="utf-8") as fh:
                problems = validate_chrome_trace(json.load(fh))
            if problems:
                report.failures.append(
                    f"{coords}: postmortem {name} fails trace "
                    f"validation: {problems[0]}"
                )
    report.postmortems += len(recorder.dumps)


def run_heal_chaos(
    *,
    runs: int | None = None,
    max_seconds: float | None = None,
    seed: int = 0,
    max_vertices: int = 40,
    postmortem_dir=None,
    log=None,
) -> HealReport:
    """Sweep seeded sustained-fault serving runs until the run or time
    budget runs out; returns the :class:`HealReport`.

    With ``postmortem_dir`` each run gets its own
    :class:`~repro.observability.recorder.FlightRecorder` dumping into
    ``<postmortem_dir>/runNNN/``, and the battery additionally enforces
    the explainability contract (see module docstring).
    """
    from repro.testing.fuzz import random_graph

    if runs is None and max_seconds is None:
        runs = 200
    report = HealReport(seed=seed)
    start = time.monotonic()

    case = 0
    while True:
        if runs is not None and case >= runs:
            break
        if max_seconds is not None and \
                time.monotonic() - start >= max_seconds:
            break
        rng = np.random.default_rng([0x4EA1, seed, case])
        problem = _PROBLEMS[case % len(_PROBLEMS)]
        graph = random_graph(
            rng, weighted=problem in ("sssp", "sswp"),
            max_vertices=max_vertices,
        )
        pool_size = int(rng.integers(2, 4))
        fault_plans = {
            lane: _sustained_plan(rng)
            for lane in range(pool_size) if rng.random() < 0.7
        }
        policy = RetryPolicy(
            max_retries=int(rng.integers(0, 3)),
            backoff_base_ms=float(rng.choice((0.5, 1.0, 2.0))),
            jitter=float(rng.choice((0.0, 0.3))),
            allow_cpu_fallback=bool(rng.integers(0, 2)),
        )
        health = HealthPolicy(
            open_ms=float(rng.uniform(2.0, 10.0)),
            failure_threshold=int(rng.integers(2, 5)),
            probe_successes=int(rng.integers(1, 4)),
            hedge=bool(rng.integers(0, 2)),
            brownout=bool(rng.integers(0, 2)),
        )
        wave_width = int(rng.choice((0, 2, 4)))
        coords = (
            f"run {case} (seed {seed}, {problem}, "
            f"|V|={graph.num_vertices}, pool={pool_size}, "
            f"plans={sorted(fault_plans)}, retries={policy.max_retries}, "
            f"wave={wave_width}, open_ms={health.open_ms:.2f})"
        )
        report.runs += 1

        recorder = None
        if postmortem_dir is not None:
            from pathlib import Path

            from repro.observability.recorder import FlightRecorder

            recorder = FlightRecorder(
                out_dir=Path(postmortem_dir) / f"run{case:03d}",
            )
        with TraversalService(
            graph, pool_size=pool_size, fault_plans=fault_plans,
            policy=policy, health=health, wave_width=wave_width,
            default_quota=TenantQuota(max_pending=256),
            recorder=recorder,
        ) as service:
            plane = service.health
            violation = False
            answered = 0
            run_errors = 0
            for batch in range(int(rng.integers(3, 6))):
                n = int(rng.integers(10, 26))
                requests = _random_requests(rng, graph, problem, n)
                report.requests += n
                try:
                    responses = service.serve(requests)
                except ReproError as exc:
                    report.failures.append(
                        f"{coords} batch {batch}: serve() raised "
                        f"{type(exc).__name__}: {exc}"
                    )
                    violation = True
                    break
                except Exception as exc:  # noqa: BLE001 — the contract
                    report.failures.append(
                        f"{coords} batch {batch}: UNTYPED "
                        f"{type(exc).__name__}: {exc}"
                    )
                    violation = True
                    break
                if len(responses) != len(requests):
                    report.failures.append(
                        f"{coords} batch {batch}: {len(requests)} requests "
                        f"-> {len(responses)} responses (lost/duplicated)"
                    )
                    violation = True
                    break
                if len(service.queue):
                    report.failures.append(
                        f"{coords} batch {batch}: queue not drained "
                        f"({len(service.queue)} left)"
                    )
                    violation = True
                    break
                seqs = [r.seq for r in responses if r.seq >= 0]
                answered += len(seqs)
                if len(seqs) != len(set(seqs)):
                    report.failures.append(
                        f"{coords} batch {batch}: duplicate sequence "
                        "numbers in responses"
                    )
                    violation = True
                    break
                for response in responses:
                    if not response.ok and not response.shed \
                            and response.seq >= 0:
                        run_errors += 1
                    _check_response(
                        response, graph, problem, report, coords,
                    )
            if not violation:
                # Conservation: every admitted request lands in exactly
                # one of the served / shed counters.
                accounted = service.requests_served + service.requests_shed
                if accounted != answered:
                    report.failures.append(
                        f"{coords}: {answered} admitted requests but "
                        f"served+shed accounts for {accounted}"
                    )
                # Breaker bookkeeping: opens pair with same-instant
                # replaces; lane generations equal their open counts.
                events = plane.events
                open_events = [e for e in events if e.kind == "open"]
                replace_events = [e for e in events if e.kind == "replace"]
                if len(open_events) != len(replace_events):
                    report.failures.append(
                        f"{coords}: {len(open_events)} opens but "
                        f"{len(replace_events)} standby replacements"
                    )
                else:
                    for opened, replaced in zip(
                        open_events, replace_events,
                    ):
                        if opened.lane != replaced.lane or \
                                opened.t_ms != replaced.t_ms:
                            report.failures.append(
                                f"{coords}: open (lane {opened.lane} @ "
                                f"{opened.t_ms:.3f}) not matched by its "
                                f"standby replace (lane {replaced.lane} "
                                f"@ {replaced.t_ms:.3f})"
                            )
                            break
                for lane in plane.lanes:
                    if service.pool.workers[lane.index].generation \
                            != lane.opens:
                        report.failures.append(
                            f"{coords}: lane {lane.index} generation "
                            f"{service.pool.workers[lane.index].generation}"
                            f" != opens {lane.opens}"
                        )
                report.opens += sum(lane.opens for lane in plane.lanes)
                report.closes += sum(lane.closes for lane in plane.lanes)
                report.replaces += len(replace_events)
                report.recoveries += int(
                    any(lane.closes for lane in plane.lanes)
                )
                report.hedges += plane.hedges
                report.hedge_wins += plane.hedge_wins
                report.brownouts += sum(
                    1 for e in events if e.kind == "brownout"
                )
                for worker in service.pool.workers:
                    injector = getattr(worker.session, "injector", None)
                    if injector is not None:
                        report.faults_fired += len(injector.fired)
                if recorder is not None:
                    _check_postmortems(
                        recorder, run_errors, len(open_events),
                        report, coords,
                    )

        case += 1
        if log is not None and case % 25 == 0:
            log(
                f"  ... {case} runs, {report.opens} opens, "
                f"{report.closes} closes, "
                f"{len(report.failures)} violations"
            )

    report.elapsed_s = time.monotonic() - start
    return report
