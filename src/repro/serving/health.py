"""The self-healing plane: lane health, circuit breakers, hedging, brownout.

The service's failure unit is the *lane* — a resident session whose
injector, warm caches and dead rungs persist across requests.  A lane
that keeps absorbing ECC corruption or UM stalls stays slow and risky
for every request routed to it, so recovery has to happen per lane, not
per query.  :class:`HealthPlane` is that recovery loop, entirely on the
simulated clock and entirely deterministic:

* **Lane health scoring** — an EWMA over per-request outcome quality
  (1.0 for a clean serve, :attr:`HealthPolicy.tainted_quality` for a
  serve that absorbed faults/retries/degradation, 0.0 for an
  infrastructure-typed failure).  Clean traffic keeps a lane's score at
  exactly 1.0, which is what makes the plane purely observational on
  healthy paths — the on/off bit-identity gate
  (:func:`repro.serving.identity.check_health_identity`) depends on it.
* **Circuit breakers** — per lane, ``closed -> open -> half_open ->
  closed`` on the simulated clock.  Opening quarantines the lane for
  :attr:`HealthPolicy.open_ms` (by pushing its ``busy_until_ms`` past
  the window, so least-busy checkout naturally routes around it) and
  swaps in a **warm standby** at the same instant: the replacement
  session is built *before* the sick one is retired, so pool capacity
  never dips.  Resilient standbys inherit the old lane's injector —
  fault-event counters keep advancing, which is how a finite sustained
  fault window eventually drains and half-open probes succeed.
* **Hedged requests** — when a suspect lane's serve overshoots the p95
  of the endpoint's recent *clean* latency ring, the service launches
  the same query on a dedicated warm hedge standby
  (:meth:`repro.serving.pool.SessionPool.build_spare`) and takes the
  earlier finish.  The hedge leg deliberately does **not** run on an
  active lane: sessions are stateful in simulated time (monotone
  allocator addresses key the frontier memo), so one extra query on a
  primary lane would shift every later serve on it and break the
  digest contract ``repro.bench serve`` gates (hedging must change
  p99, never a ``result_digest``).  Both legs must agree bit-for-bit
  on labels (asserted), so hedging is a latency tool, never a
  correctness fork.
* **Brownout control** — a service-wide ladder driven by the mean lane
  score: level 1 disables hedging, level 2 halves the MSBFS wave width,
  level 3 sheds best-effort requests at dispatch, level 4 refuses new
  admissions outright.

Attribution matters: only infrastructure errors (:data:`INFRA_ERRORS`)
blame the lane.  A ``PathError`` or a spent deadline says nothing about
the hardware under the session, so it neither lowers the score nor
counts as a half-open probe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

#: Error type names that indict the *lane* (device/transport faults),
#: as opposed to request-level failures (bad path, spent deadline, bad
#: config) that say nothing about the session underneath.
INFRA_ERRORS = frozenset({
    "DeviceError",
    "AllocationError",
    "DeviceOutOfMemoryError",
    "TransientDeviceError",
    "TransferError",
    "MigrationStallError",
    "DataCorruptionError",
})

#: Breaker states, in lifecycle order.
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class HealthPolicy:
    """Tuning of the self-healing plane (all times simulated ms)."""

    #: EWMA smoothing for the lane score: ``s' = (1-a)*s + a*quality``.
    ewma_alpha: float = 0.3
    #: Quality credited to a serve that succeeded but absorbed faults,
    #: retries or degradation (clean = 1.0, infra failure = 0.0).
    tainted_quality: float = 0.3
    #: Consecutive infra-bad observations that trip a closed breaker.
    failure_threshold: int = 3
    #: A closed lane whose score sinks below this also trips.
    open_score: float = 0.35
    #: Score a freshly replaced standby starts from (suspicious, not
    #: condemned: a few clean serves heal it back to 1.0).
    reset_score: float = 0.5
    #: Quarantine window after opening (simulated ms).
    open_ms: float = 8.0
    #: Consecutive clean half-open probes required to re-close.
    probe_successes: int = 2
    #: Quarantine never applies when it would leave fewer than this many
    #: lanes unquarantined (the standby still swaps in immediately).
    min_active: int = 1
    #: Master switches (the bench isolates hedging with breakers off).
    breakers: bool = True
    hedge: bool = True
    brownout: bool = True
    #: Hedge only once the endpoint's clean-latency ring has this many
    #: samples, over a ring of at most ``hedge_ring`` recent serves.
    hedge_min_samples: int = 8
    hedge_ring: int = 64
    #: Brownout thresholds on the mean lane score, highest level wins.
    brownout_hedge: float = 0.85
    brownout_wave: float = 0.6
    brownout_best_effort: float = 0.4
    brownout_admission: float = 0.2

    def __post_init__(self):
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.tainted_quality < 1.0:
            raise ConfigError("tainted_quality must be in [0, 1)")
        if self.failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if self.open_ms < 0:
            raise ConfigError("open_ms must be >= 0")
        if self.probe_successes < 1:
            raise ConfigError("probe_successes must be >= 1")
        if self.min_active < 0:
            raise ConfigError("min_active must be >= 0")
        if self.hedge_min_samples < 1 or self.hedge_ring < 1:
            raise ConfigError("hedge ring sizes must be >= 1")
        ladder = (self.brownout_admission, self.brownout_best_effort,
                  self.brownout_wave, self.brownout_hedge)
        if any(b < 0 for b in ladder) or list(ladder) != sorted(ladder):
            raise ConfigError(
                "brownout thresholds must be >= 0 and ordered "
                "admission <= best_effort <= wave <= hedge"
            )


@dataclass
class LaneHealth:
    """One lane's health state (mutated only by :class:`HealthPlane`)."""

    index: int
    score: float = 1.0
    state: str = "closed"
    #: Consecutive infra-bad observations since the last clean one.
    consecutive_bad: int = 0
    #: Clean serves observed while half-open.
    probes: int = 0
    #: Simulated instant the quarantine window ends.
    open_until: float = 0.0
    #: Lifetime breaker transitions (opens == standby replacements).
    opens: int = 0
    closes: int = 0
    #: Score-bearing observations (neutral outcomes excluded).
    observations: int = 0

    def __repr__(self) -> str:
        return (
            f"LaneHealth({self.index}, {self.state}, "
            f"score {self.score:.3f}, {self.opens} opens)"
        )


@dataclass(frozen=True)
class HealthEvent:
    """One breaker/brownout transition, on the simulated clock."""

    kind: str  # "open" | "replace" | "half_open" | "closed" | "brownout"
    lane: int | None
    t_ms: float
    detail: str = ""

    def __repr__(self) -> str:
        where = f"lane {self.lane}" if self.lane is not None else "service"
        tail = f" ({self.detail})" if self.detail else ""
        return f"HealthEvent({self.kind}, {where}, t={self.t_ms:.3f}{tail})"


class HealthPlane:
    """Per-lane health scores, circuit breakers and the brownout ladder.

    Owned by a :class:`~repro.serving.service.TraversalService`; the
    service feeds it one observation per lane serve (sequential, hedge
    and wave paths) and consults it at dispatch time.  The plane mutates
    the pool only through
    :meth:`~repro.serving.pool.SessionPool.replace_session` (warm
    standby swap) and a lane's ``busy_until_ms`` (quarantine).
    """

    def __init__(self, policy: HealthPolicy, pool):
        self.policy = policy
        self.pool = pool
        self.lanes = [LaneHealth(index=i) for i in range(pool.size)]
        #: Every transition, in simulated-time order (the chaos battery
        #: pairs each ``open`` with its same-instant ``replace``).
        self.events: list[HealthEvent] = []
        #: Current brownout level, 0 (healthy) .. 4 (refusing admissions).
        self.level = 0
        self.hedges = 0
        self.hedge_wins = 0
        self._latency: dict[str, deque] = {}

    # ------------------------------------------------------------------
    # Observation feed
    # ------------------------------------------------------------------

    def classify(
        self, *, ok: bool, error_type: str | None,
        faults: int, attempts: int, degraded: bool,
    ) -> str:
        """Bucket one serve: ``clean`` / ``tainted`` / ``bad`` (infra
        failure) / ``neutral`` (request-level failure, not the lane's
        fault)."""
        if not ok:
            return "bad" if error_type in INFRA_ERRORS else "neutral"
        if faults or attempts > 1 or degraded:
            return "tainted"
        return "clean"

    def observe(
        self, worker, *, ok: bool, error_type: str | None = None,
        faults: int = 0, attempts: int = 1, degraded: bool = False,
        t_ms: float = 0.0,
    ) -> list[HealthEvent]:
        """Fold one lane serve into the plane; returns the transitions it
        caused (possibly opening a breaker and swapping in a standby)."""
        if not 0 <= worker.index < len(self.lanes):
            return []
        lane = self.lanes[worker.index]
        before = len(self.events)
        kind = self.classify(
            ok=ok, error_type=error_type, faults=faults,
            attempts=attempts, degraded=degraded,
        )
        if kind != "neutral":
            lane.observations += 1
            quality = (
                1.0 if kind == "clean"
                else self.policy.tainted_quality if kind == "tainted"
                else 0.0
            )
            a = self.policy.ewma_alpha
            lane.score = (1.0 - a) * lane.score + a * quality
            if kind == "clean":
                lane.consecutive_bad = 0
                if lane.state == "half_open":
                    lane.probes += 1
                    if lane.probes >= self.policy.probe_successes:
                        lane.state = "closed"
                        lane.closes += 1
                        self._event("closed", lane.index, t_ms,
                                    f"after {lane.probes} probes")
            else:
                lane.consecutive_bad += 1
                if self.policy.breakers and (
                    lane.state == "half_open"
                    or lane.consecutive_bad >= self.policy.failure_threshold
                    or lane.score < self.policy.open_score
                ):
                    self._open(worker, lane, t_ms)
        self._update_level(t_ms)
        return self.events[before:]

    def on_dispatch(self, worker, start_ms: float) -> None:
        """Dispatch-time hook: an open lane whose quarantine window has
        passed goes half-open — this serve is its probe."""
        if not 0 <= worker.index < len(self.lanes):
            return
        lane = self.lanes[worker.index]
        if lane.state == "open" and start_ms >= lane.open_until:
            lane.state = "half_open"
            lane.probes = 0
            self._event("half_open", lane.index, start_ms)

    def _open(self, worker, lane: LaneHealth, t_ms: float) -> None:
        """Trip the breaker: quarantine the lane and swap in a warm
        standby *now* — the replacement exists before the sick session
        is retired, so capacity never dips below the pool size."""
        lane.opens += 1
        lane.state = "open"
        lane.probes = 0
        lane.consecutive_bad = 0
        lane.score = self.policy.reset_score
        self._event("open", lane.index, t_ms)
        generation = self.pool.replace_session(worker)
        self._event("replace", lane.index, t_ms,
                    f"generation {generation}")
        others = sum(
            1 for other in self.lanes
            if other is not lane and other.state != "open"
        )
        if others >= self.policy.min_active:
            lane.open_until = t_ms + self.policy.open_ms
            worker.busy_until_ms = max(
                worker.busy_until_ms, lane.open_until,
            )
        else:
            # Quarantining would sink capacity below the floor: the
            # standby goes straight to half-open on its next dispatch.
            lane.open_until = t_ms

    def _event(
        self, kind: str, lane: int | None, t_ms: float, detail: str = "",
    ) -> None:
        self.events.append(HealthEvent(kind, lane, t_ms, detail))

    # ------------------------------------------------------------------
    # Brownout ladder
    # ------------------------------------------------------------------

    @property
    def aggregate(self) -> float:
        """Mean lane score — the brownout ladder's input."""
        return sum(lane.score for lane in self.lanes) / len(self.lanes)

    def _update_level(self, t_ms: float) -> None:
        if not self.policy.brownout:
            return
        agg = self.aggregate
        p = self.policy
        level = 0
        if agg < p.brownout_hedge:
            level = 1
        if agg < p.brownout_wave:
            level = 2
        if agg < p.brownout_best_effort:
            level = 3
        if agg < p.brownout_admission:
            level = 4
        if level != self.level:
            self._event("brownout", None, t_ms,
                        f"level {self.level} -> {level}")
            self.level = level

    @property
    def hedging_active(self) -> bool:
        """Hedging is the first thing brownout turns off (level >= 1)."""
        return self.policy.hedge and self.level < 1

    @property
    def shed_best_effort(self) -> bool:
        return self.level >= 3

    @property
    def refuse_admissions(self) -> bool:
        return self.level >= 4

    def effective_wave_width(self, requested: int) -> int:
        """Level >= 2 halves the MSBFS wave width (a half-width below
        the MSBFS minimum of 2 turns coalescing off)."""
        if self.level < 2 or requested < 2:
            return requested
        shrunk = requested // 2
        return shrunk if shrunk >= 2 else 0

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------

    def record_latency(self, endpoint: str, service_ms: float) -> None:
        """Feed one *clean* serve into the endpoint's latency ring.
        Suspect serves are excluded on purpose: the ring is the healthy
        baseline the hedge trigger compares against, and letting a sick
        lane's outliers in would drag the p95 up until its own straggles
        look normal."""
        ring = self._latency.get(endpoint)
        if ring is None:
            ring = self._latency[endpoint] = deque(
                maxlen=self.policy.hedge_ring
            )
        ring.append(service_ms)

    def hedge_threshold(self, endpoint: str) -> float | None:
        """Nearest-rank p95 of the endpoint's clean-latency ring, or
        ``None`` while the ring is still too small to trust."""
        ring = self._latency.get(endpoint)
        if ring is None or len(ring) < self.policy.hedge_min_samples:
            return None
        ordered = np.sort(np.asarray(ring, dtype=np.float64))
        rank = int(np.ceil(0.95 * len(ordered))) - 1
        return float(ordered[max(0, min(rank, len(ordered) - 1))])

    def suspect(self, worker, response) -> bool:
        """Whether a serve warrants a hedge: the lane is not pristine, or
        the serve itself absorbed faults/retries/degradation.  Clean
        serves on pristine lanes are never hedged — that guard keeps
        healthy runs bit-identical with the plane off."""
        lane = self.lanes[worker.index]
        return (
            lane.score < 1.0
            or response.attempts > 1
            or response.degraded
            or bool(response.faults_seen)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def lane_health(self) -> dict[int, float]:
        """Lane index -> current EWMA health score."""
        return {lane.index: lane.score for lane in self.lanes}

    def snapshot(self) -> dict:
        """The plane's state as plain data (the ``stats`` endpoint's
        ``health`` key and the chaos battery's evidence)."""
        return {
            "aggregate": self.aggregate,
            "brownout_level": self.level,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "events": len(self.events),
            "lanes": [
                {
                    "lane": lane.index,
                    "score": lane.score,
                    "state": lane.state,
                    "opens": lane.opens,
                    "closes": lane.closes,
                    "generation": self.pool.workers[lane.index].generation,
                    "observations": lane.observations,
                }
                for lane in self.lanes
            ],
        }

    def __repr__(self) -> str:
        states = ",".join(lane.state for lane in self.lanes)
        return (
            f"HealthPlane({len(self.lanes)} lanes [{states}], "
            f"aggregate {self.aggregate:.3f}, level {self.level}, "
            f"{len(self.events)} events)"
        )
