"""Typed request/response objects of the traversal service.

The request surface is modeled on swh-graph's traversal API (visit,
neighborhood, shortest-path, stats) plus Gunrock's observation that one
frontend should expose many primitives — PageRank rides along as the
first non-traversal endpoint.  Every request is a frozen dataclass, so a
request is a value: hashable, comparable, replayable from a log line.

Common SLO fields (every request):

* ``tenant`` — the accounting identity; quotas, metrics series and span
  labels all key on it.
* ``deadline_ms`` — simulated latency budget measured from *arrival*.
  The admission queue rejects a request whose budget is already spent
  (:class:`~repro.errors.DeadlineExceededError` before any work), the
  EDF scheduler orders by the implied absolute deadline, and the
  dispatcher sheds a request whose deadline expired while it queued.
  ``None`` means best-effort (scheduled after every deadlined request).
* ``iteration_budget`` — per-request traversal iteration cap, threaded
  through :class:`~repro.resilience.RetryPolicy` to the engine.
* ``arrival_ms`` — explicit arrival time on the service's simulated
  clock (load generators replaying a schedule); ``None`` arrives "now".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, InvalidLaunchError

#: Endpoint names, in the service's documentation order.
ENDPOINTS = ("visit", "neighborhood", "shortest_path", "pagerank", "stats")


@dataclass(frozen=True)
class TraversalRequest:
    """Base of every service request: tenant identity + SLO budgets."""

    tenant: str = "default"
    #: Simulated deadline budget (ms) from arrival; ``None`` = best-effort.
    deadline_ms: float | None = None
    #: Per-request traversal iteration cap; ``None`` = the config's own.
    iteration_budget: int | None = None
    #: Arrival time on the service clock; ``None`` = on submission.
    arrival_ms: float | None = None

    #: Endpoint name (class attribute, overridden per request type).
    endpoint = ""

    def __post_init__(self):
        if not self.tenant:
            raise ConfigError("tenant must be a non-empty string")
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ConfigError(
                f"deadline_ms must be >= 0, got {self.deadline_ms}"
            )
        if self.iteration_budget is not None and self.iteration_budget < 1:
            raise ConfigError(
                f"iteration_budget must be >= 1, got {self.iteration_budget}"
            )
        if self.arrival_ms is not None and self.arrival_ms < 0:
            raise ConfigError(
                f"arrival_ms must be >= 0, got {self.arrival_ms}"
            )

    def validate(self, csr) -> None:
        """Cheap admission-time validation against the served graph.

        Raises a typed error *before* the request consumes queue space —
        malformed requests must never reach a worker.
        """

    def _check_vertex(self, csr, vertex: int, what: str) -> None:
        if not 0 <= vertex < csr.num_vertices:
            raise InvalidLaunchError(
                f"{what} {vertex} out of range [0, {csr.num_vertices})"
            )

    def describe(self) -> str:
        return f"{self.endpoint}[{self.tenant}]"


@dataclass(frozen=True)
class VisitRequest(TraversalRequest):
    """Run one traversal (bfs / sssp / sswp / cc) and return its labels —
    swh-graph's ``visit`` surface generalized over the problem set."""

    problem: str = "bfs"
    source: int = 0
    #: BFS early-exit target (point-to-point reachability).
    target: int | None = None

    endpoint = "visit"

    def validate(self, csr) -> None:
        from repro.algorithms.base import get_problem

        problem = get_problem(self.problem)  # raises ConfigError if unknown
        problem.check_graph(csr)
        self._check_vertex(csr, self.source, "source")
        if self.target is not None:
            if self.problem != "bfs":
                raise ConfigError(
                    "early-exit target is only sound for BFS "
                    f"(got {self.problem})"
                )
            self._check_vertex(csr, self.target, "target")

    def describe(self) -> str:
        return f"visit/{self.problem}[{self.tenant}] src={self.source}"


@dataclass(frozen=True)
class NeighborhoodRequest(TraversalRequest):
    """Vertices within ``hops`` BFS levels of ``source`` (swh-graph's
    neighborhood/``visit_nodes`` query), with their levels."""

    source: int = 0
    hops: int = 1

    endpoint = "neighborhood"

    def __post_init__(self):
        super().__post_init__()
        if self.hops < 0:
            raise ConfigError(f"hops must be >= 0, got {self.hops}")

    def validate(self, csr) -> None:
        self._check_vertex(csr, self.source, "source")

    def describe(self) -> str:
        return (
            f"neighborhood[{self.tenant}] src={self.source} hops={self.hops}"
        )


@dataclass(frozen=True)
class ShortestPathRequest(TraversalRequest):
    """A minimum-hop path ``source -> target`` (BFS + parent pointers,
    served from the service's parent-tracking path pool)."""

    source: int = 0
    target: int = 0

    endpoint = "shortest_path"

    def validate(self, csr) -> None:
        self._check_vertex(csr, self.source, "source")
        self._check_vertex(csr, self.target, "target")

    def describe(self) -> str:
        return (
            f"shortest_path[{self.tenant}] {self.source}->{self.target}"
        )


@dataclass(frozen=True)
class PageRankRequest(TraversalRequest):
    """Delta PageRank over the served graph (the Gunrock-style analytics
    primitive riding the same frontend)."""

    damping: float = 0.85
    tolerance: float = 1e-4

    endpoint = "pagerank"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.damping < 1.0:
            raise ConfigError(
                f"damping must be in (0, 1), got {self.damping}"
            )
        if self.tolerance <= 0:
            raise ConfigError(
                f"tolerance must be > 0, got {self.tolerance}"
            )

    def describe(self) -> str:
        return f"pagerank[{self.tenant}] d={self.damping:g}"


@dataclass(frozen=True)
class StatsRequest(TraversalRequest):
    """Graph summary statistics (swh-graph's ``stats`` endpoint): vertex
    and edge counts, degree shape, largest-component fraction."""

    endpoint = "stats"

    def describe(self) -> str:
        return f"stats[{self.tenant}]"


@dataclass
class TraversalResponse:
    """One terminal outcome per admitted request — served, errored or
    shed; an admitted request always gets exactly one of these."""

    request: TraversalRequest
    #: Admission sequence number (ties in EDF order break on this).
    seq: int
    ok: bool
    #: Trace context assigned at admission (``""`` for requests refused
    #: at the door, which never got one).  ``summarize --request <id>``
    #: renders the span tree this id names.
    request_id: str = ""
    #: Endpoint payload: labels (visit), ``{"vertices", "levels"}``
    #: (neighborhood), vertex list (shortest_path), ranks (pagerank),
    #: summary dict (stats).  ``None`` on error or shed.
    value: object = None
    #: ``"ErrorType: message"`` for typed failures (incl. shed reasons).
    error: str | None = None
    #: True when the request was load-shed before any work started.
    shed: bool = False
    # Simulated-clock accounting (ms on the service clock).
    arrival_ms: float = 0.0
    start_ms: float = 0.0
    finish_ms: float = 0.0
    #: Pool lane that served the request (-1 = never dispatched).
    worker: int = -1
    #: Ladder rung that produced the answer ("" = not served).
    placement: str = ""
    degraded: bool = False
    attempts: int = 0
    #: The underlying engine result, when the endpoint ran a traversal.
    result: object = None
    #: Injected faults observed while serving (resilient worker path).
    faults_seen: list = field(default_factory=list)
    #: Whether the self-healing plane launched a hedge leg for this
    #: request, and whether that leg's finish won the race (the response
    #: then carries the hedge lane's schedule and result — labels are
    #: identical either way, by asserted contract).
    hedged: bool = False
    hedge_won: bool = False

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def endpoint(self) -> str:
        return self.request.endpoint

    @property
    def queue_ms(self) -> float:
        """Simulated time spent waiting for a worker lane."""
        return self.start_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        """Simulated time the worker spent producing the answer."""
        return self.finish_ms - self.start_ms

    @property
    def latency_ms(self) -> float:
        """End-to-end simulated latency (queue + service)."""
        return self.finish_ms - self.arrival_ms

    @property
    def labels(self) -> np.ndarray | None:
        """The label vector, when the endpoint produced one."""
        result = self.result
        return result.labels if result is not None else None

    def __repr__(self) -> str:
        state = "shed" if self.shed else ("ok" if self.ok else "error")
        return (
            f"TraversalResponse({self.request.describe()}, {state}, "
            f"latency {self.latency_ms:.3f} ms)"
        )
