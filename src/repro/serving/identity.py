"""The service-vs-session bit-identity gate.

The serving layer must be a *frontend*, not a different engine: every
engine result a service hands back has to be bit-identical — labels
**and** simulated clock readings — to the same query on a bare
:class:`~repro.core.session.EngineSession`.  The subtlety is state:
warm-query timing depends on the full history a session has served
(cache hierarchy, frontier memo, UM residency), so the reference run
must replay *each lane's exact subsequence* on a fresh bare session, in
dispatch order — not the global stream on one session.

:func:`check_service_identity` does exactly that and returns the list
of digest mismatches (empty = identical), using the same
:func:`~repro.resilience.chaos.result_digest` hash the chaos gate uses.
CI runs it via ``python -m repro.serving identity``.

:func:`check_health_identity` is the companion gate for the self-healing
plane (:mod:`repro.serving.health`): on a healthy (fault-free) request
stream the plane must be purely observational, so the same batch served
with ``health=True`` and ``health=None`` must agree on *every* response
fact — labels, simulated arrival/start/finish clocks, lane, placement
and sequence number.  CI runs it via ``python -m repro.serving identity
--health``.
"""

from __future__ import annotations

from repro.core.config import EtaGraphConfig
from repro.core.session import EngineSession
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph
from repro.resilience.chaos import result_digest
from repro.serving.requests import TraversalResponse, VisitRequest
from repro.serving.service import TraversalService

#: The default query stream the CLI gate serves.
DEFAULT_QUERIES: tuple[tuple[str, int], ...] = (
    ("bfs", 0), ("bfs", 1), ("cc", 0), ("bfs", 0), ("cc", 2), ("bfs", 3),
)


def replay_mismatches(
    csr: CSRGraph,
    responses: list[TraversalResponse],
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> list[str]:
    """Replay each lane's served subsequence on a fresh bare session and
    describe every result-digest mismatch (empty = bit-identical)."""
    config = config or EtaGraphConfig()
    lanes: dict[int, list[TraversalResponse]] = {}
    for response in responses:
        if response.result is None:
            continue  # shed / errored: no engine result to compare
        lanes.setdefault(response.worker, []).append(response)

    mismatches = []
    for lane in sorted(lanes):
        with EngineSession(csr, config, device) as session:
            for response in lanes[lane]:
                request = response.request
                reference = session.query(
                    request.problem if isinstance(request, VisitRequest)
                    else "bfs",
                    request.source,
                    target=getattr(request, "target", None),
                )
                got = result_digest(response.result)
                want = result_digest(reference)
                if got != want:
                    mismatches.append(
                        f"lane {lane} seq {response.seq} "
                        f"{request.describe()}: service {got} != "
                        f"session {want}"
                    )
    return mismatches


def check_service_identity(
    csr: CSRGraph,
    queries: tuple[tuple[str, int], ...] = DEFAULT_QUERIES,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    *,
    pool_size: int = 1,
) -> list[str]:
    """Serve ``queries`` (no deadlines, FIFO order) through a service
    with ``pool_size`` bare lanes and compare every engine result
    against per-lane bare-session replays.  Returns mismatch
    descriptions; empty means the service is bit-identical to the
    sessions it fronts."""
    config = config or EtaGraphConfig()
    with TraversalService(
        csr, config, device, pool_size=pool_size,
    ) as service:
        responses = service.serve([
            VisitRequest(problem=problem, source=source)
            for problem, source in queries
        ])
    bad = [r for r in responses if not r.ok]
    if bad:
        return [f"seq {r.seq} {r.request.describe()} failed: {r.error}"
                for r in bad]
    return replay_mismatches(csr, responses, config, device)


def _response_facts(response: TraversalResponse) -> tuple:
    """Everything a healthy-path response commits to: identity of the
    answer *and* of the simulated schedule that produced it."""
    result = response.result
    return (
        response.seq,
        response.ok,
        response.shed,
        response.error,
        response.worker,
        response.placement,
        response.degraded,
        response.attempts,
        round(response.arrival_ms, 9),
        round(response.start_ms, 9),
        round(response.finish_ms, 9),
        result_digest(result) if result is not None else None,
    )


def check_health_identity(
    csr: CSRGraph,
    queries: tuple[tuple[str, int], ...] = DEFAULT_QUERIES,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    *,
    pool_size: int = 2,
    resilient: bool = False,
) -> list[str]:
    """Serve the same healthy batch with the self-healing plane off and
    on, and describe every response-fact divergence (empty = the plane
    is purely observational on healthy paths).

    Unlike :func:`check_service_identity` this compares the two service
    runs against *each other* — labels **and** simulated clocks, lane
    assignment, placement, sequence — because the plane's no-op contract
    is about the whole schedule, not just the answer bits.  With
    ``resilient=True`` the gate reruns over resilient (retry-capable)
    lanes with no fault plan, covering the retry-wrapper path too.
    """
    config = config or EtaGraphConfig()
    requests = [
        VisitRequest(problem=problem, source=source)
        for problem, source in queries
    ]
    runs = {}
    for health in (None, True):
        with TraversalService(
            csr, config, device, pool_size=pool_size,
            resilient=resilient, health=health,
        ) as service:
            runs[bool(health)] = service.serve(list(requests))
            if health and service.health.level != 0:
                return [
                    "healthy stream raised brownout level "
                    f"{service.health.level}: plane is not observational"
                ]
    mismatches = []
    for off, on in zip(runs[False], runs[True]):
        facts_off, facts_on = _response_facts(off), _response_facts(on)
        if facts_off != facts_on:
            mismatches.append(
                f"seq {off.seq} {off.request.describe()}: "
                f"health-off {facts_off} != health-on {facts_on}"
            )
    return mismatches


def check_trace_identity(
    csr: CSRGraph,
    queries: tuple[tuple[str, int], ...] = DEFAULT_QUERIES,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    *,
    pool_size: int = 2,
    resilient: bool = False,
) -> list[str]:
    """Serve the same batch with the full observability stack off and
    on — request-scoped tracing, SLO burn-rate monitors and the flight
    recorder all enabled on the on-leg — and describe every
    response-fact divergence (empty = telemetry is purely
    observational: same labels, same simulated clocks, same schedule).

    Also asserts the on-leg actually *observed* the run: every admitted
    request must have a ``request`` span carrying its ``request_id``,
    and the SLO monitor must have one sample per terminal response —
    a gate that silently records nothing would be vacuous.
    """
    from repro.observability.slo import SLOMonitor, SLOPolicy

    config = config or EtaGraphConfig()
    requests = [
        VisitRequest(problem=problem, source=source, tenant="gate",
                     deadline_ms=50.0)
        for problem, source in queries
    ]
    runs = {}
    for telemetry in (False, True):
        kwargs = {}
        if telemetry:
            kwargs = {
                "telemetry": True,
                "slo": SLOMonitor(SLOPolicy(objective=0.5)),
                "recorder": True,
            }
        with TraversalService(
            csr, config, device, pool_size=pool_size,
            resilient=resilient, **kwargs,
        ) as service:
            runs[telemetry] = service.serve(list(requests))
            if telemetry:
                trace = service.trace()
                ids = {
                    r.attrs.get("request_id")
                    for r in trace.spans("service", "request")
                }
                missing = [
                    resp.request_id for resp in runs[True]
                    if resp.request_id and resp.request_id not in ids
                ]
                if missing:
                    return [
                        f"request(s) {missing} produced no request span "
                        "— trace propagation is broken"
                    ]
                samples = sum(
                    s["samples"]
                    for s in service.slo.snapshot().values()
                )
                if samples != len(runs[True]):
                    return [
                        f"SLO monitor saw {samples} samples for "
                        f"{len(runs[True])} responses"
                    ]
    mismatches = []
    for off, on in zip(runs[False], runs[True]):
        facts_off, facts_on = _response_facts(off), _response_facts(on)
        if facts_off != facts_on:
            mismatches.append(
                f"seq {off.seq} {off.request.describe()}: "
                f"telemetry-off {facts_off} != telemetry-on {facts_on}"
            )
    return mismatches
