"""The service-vs-session bit-identity gate.

The serving layer must be a *frontend*, not a different engine: every
engine result a service hands back has to be bit-identical — labels
**and** simulated clock readings — to the same query on a bare
:class:`~repro.core.session.EngineSession`.  The subtlety is state:
warm-query timing depends on the full history a session has served
(cache hierarchy, frontier memo, UM residency), so the reference run
must replay *each lane's exact subsequence* on a fresh bare session, in
dispatch order — not the global stream on one session.

:func:`check_service_identity` does exactly that and returns the list
of digest mismatches (empty = identical), using the same
:func:`~repro.resilience.chaos.result_digest` hash the chaos gate uses.
CI runs it via ``python -m repro.serving identity``.
"""

from __future__ import annotations

from repro.core.config import EtaGraphConfig
from repro.core.session import EngineSession
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph
from repro.resilience.chaos import result_digest
from repro.serving.requests import TraversalResponse, VisitRequest
from repro.serving.service import TraversalService

#: The default query stream the CLI gate serves.
DEFAULT_QUERIES: tuple[tuple[str, int], ...] = (
    ("bfs", 0), ("bfs", 1), ("cc", 0), ("bfs", 0), ("cc", 2), ("bfs", 3),
)


def replay_mismatches(
    csr: CSRGraph,
    responses: list[TraversalResponse],
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> list[str]:
    """Replay each lane's served subsequence on a fresh bare session and
    describe every result-digest mismatch (empty = bit-identical)."""
    config = config or EtaGraphConfig()
    lanes: dict[int, list[TraversalResponse]] = {}
    for response in responses:
        if response.result is None:
            continue  # shed / errored: no engine result to compare
        lanes.setdefault(response.worker, []).append(response)

    mismatches = []
    for lane in sorted(lanes):
        with EngineSession(csr, config, device) as session:
            for response in lanes[lane]:
                request = response.request
                reference = session.query(
                    request.problem if isinstance(request, VisitRequest)
                    else "bfs",
                    request.source,
                    target=getattr(request, "target", None),
                )
                got = result_digest(response.result)
                want = result_digest(reference)
                if got != want:
                    mismatches.append(
                        f"lane {lane} seq {response.seq} "
                        f"{request.describe()}: service {got} != "
                        f"session {want}"
                    )
    return mismatches


def check_service_identity(
    csr: CSRGraph,
    queries: tuple[tuple[str, int], ...] = DEFAULT_QUERIES,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    *,
    pool_size: int = 1,
) -> list[str]:
    """Serve ``queries`` (no deadlines, FIFO order) through a service
    with ``pool_size`` bare lanes and compare every engine result
    against per-lane bare-session replays.  Returns mismatch
    descriptions; empty means the service is bit-identical to the
    sessions it fronts."""
    config = config or EtaGraphConfig()
    with TraversalService(
        csr, config, device, pool_size=pool_size,
    ) as service:
        responses = service.serve([
            VisitRequest(problem=problem, source=source)
            for problem, source in queries
        ])
    bad = [r for r in responses if not r.ok]
    if bad:
        return [f"seq {r.seq} {r.request.describe()} failed: {r.error}"
                for r in bad]
    return replay_mismatches(csr, responses, config, device)
