"""Worker pool: resident engine sessions as schedulable lanes.

A :class:`SessionPool` owns ``size`` resident sessions over one graph —
bare :class:`~repro.core.session.EngineSession` workers by default, or
:class:`~repro.resilience.session.ResilientSession` workers when the
service runs with a fault plan or retry policy (the degradation ladder
then rides under every request).  Each worker is a *lane* on the
service's simulated clock: :attr:`PoolWorker.busy_until_ms` is when its
current work finishes, and the dispatcher always picks the lane that
frees first — the multi-queue analogue of the engine's own single
simulated timeline.

Checkout/checkin is explicit so the pool is also usable without the
service: :meth:`checkout` hands out the least-busy idle worker and
raises :class:`~repro.errors.QuotaExceededError` when every lane is
already out; :meth:`checkin` returns one.  After :meth:`close`, any
checkout raises :class:`~repro.errors.SessionClosedError`.

Sessions are *stateful* in simulated time — warm caches and frontier
memos mean a query's timing depends on the whole history its worker has
served.  The pool therefore never rebuilds or shuffles workers on its
own: lane ``i`` keeps its session for the pool's lifetime, which is
what makes a served stream replayable (see
:mod:`repro.serving.identity`).  The one sanctioned exception is
:meth:`SessionPool.replace_session` — the self-healing plane's warm
standby swap (:mod:`repro.serving.health`): a fresh session is built
*first*, takes over the same lane slot (bumping
:attr:`PoolWorker.generation`), and only then is the sick session
closed, so pool capacity never dips below ``size``.  Resilient standbys
inherit the retired session's injector: fault-event counters keep
advancing across the swap, which is what lets a finite sustained fault
window drain and the lane's half-open probes succeed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EtaGraphConfig
from repro.core.session import EngineSession
from repro.errors import QuotaExceededError, SessionClosedError
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph
from repro.resilience.faults import FaultPlan
from repro.resilience.session import ResilientSession, RetryPolicy


@dataclass
class PoolWorker:
    """One lane: a resident session plus its simulated-clock position."""

    index: int
    session: EngineSession | ResilientSession
    #: Simulated time at which this lane's current work completes.
    busy_until_ms: float = 0.0
    #: Requests this lane has served (successfully or not).
    served: int = 0
    #: Whether :attr:`session` is a :class:`ResilientSession`.
    resilient: bool = False
    #: Whether the lane is currently checked out.
    checked_out: bool = field(default=False, repr=False)
    #: Warm-standby swaps this lane has been through (0 = the original
    #: session built at pool construction).
    generation: int = 0

    def __repr__(self) -> str:
        return (
            f"PoolWorker({self.index}, busy_until {self.busy_until_ms:.3f} "
            f"ms, {self.served} served)"
        )


class SessionPool:
    """``size`` resident sessions over one graph, dispatched least-busy
    first."""

    def __init__(
        self,
        csr: CSRGraph,
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
        *,
        size: int = 2,
        fault_plan: FaultPlan | None = None,
        fault_plans: dict[int, FaultPlan] | None = None,
        policy: RetryPolicy | None = None,
        resilient: bool | None = None,
    ):
        if size < 1:
            raise QuotaExceededError(f"pool size must be >= 1, got {size}")
        self.csr = csr
        self.config = config or EtaGraphConfig()
        self.device = device
        self.policy = policy or RetryPolicy()
        #: Per-lane fault plans (``fault_plans[i]`` overrides the shared
        #: ``fault_plan`` for lane ``i``) — the chaos battery's way of
        #: making one lane sick while its neighbours stay clean.
        self.fault_plans = dict(fault_plans or {})
        # A fault plan or explicit policy needs the resilient wrapper;
        # otherwise bare sessions keep the no-overhead fast path.
        if resilient is None:
            resilient = (fault_plan is not None or bool(self.fault_plans)
                         or policy is not None)
        if (fault_plan is not None or self.fault_plans) and not resilient:
            raise QuotaExceededError(
                "a fault plan requires resilient workers"
            )
        self.resilient = resilient
        self._fault_plan = fault_plan
        self.workers: list[PoolWorker] = []
        for index in range(size):
            if resilient:
                session = ResilientSession(
                    csr, self.config, device,
                    # Each lane gets its own injector state: the plan's
                    # schedule replays identically per worker.
                    fault_plan=self.fault_plans.get(index, fault_plan),
                    policy=self.policy,
                    # Desynchronize retry storms: each lane draws its
                    # backoff jitter from its own seeded stream.
                    jitter_seed=index,
                )
            else:
                session = EngineSession(csr, self.config, device)
            self.workers.append(
                PoolWorker(index=index, session=session, resilient=resilient)
            )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every worker session; the pool is dead afterwards."""
        if self._closed:
            return
        for worker in self.workers:
            worker.session.close()
        self._closed = True

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"{sum(w.served for w in self.workers)} served"
        )
        kind = "resilient" if self.resilient else "bare"
        return f"SessionPool({self.size} {kind} workers, {state})"

    # ------------------------------------------------------------------
    # Checkout / checkin
    # ------------------------------------------------------------------

    def checkout(self) -> PoolWorker:
        """The idle lane that frees first (ties break on lane index).

        Raises :class:`SessionClosedError` after :meth:`close` and
        :class:`QuotaExceededError` when every lane is checked out.
        """
        if self._closed:
            raise SessionClosedError("session pool is closed")
        idle = [w for w in self.workers if not w.checked_out]
        if not idle:
            raise QuotaExceededError(
                f"all {self.size} pool workers are checked out"
            )
        worker = min(idle, key=lambda w: (w.busy_until_ms, w.index))
        worker.checked_out = True
        return worker

    def checkout_lane(self, index: int) -> PoolWorker:
        """Check out one *specific* idle lane (targeted probes and
        tests want a particular lane, not the least-busy one)."""
        if self._closed:
            raise SessionClosedError("session pool is closed")
        if not 0 <= index < self.size:
            raise QuotaExceededError(
                f"lane {index} out of range [0, {self.size})"
            )
        worker = self.workers[index]
        if worker.checked_out:
            raise QuotaExceededError(
                f"worker {index} is already checked out"
            )
        worker.checked_out = True
        return worker

    def checkin(self, worker: PoolWorker) -> None:
        """Return a checked-out lane to the pool."""
        if worker not in self.workers:
            raise QuotaExceededError(
                f"worker {worker.index} does not belong to this pool"
            )
        if not worker.checked_out:
            raise QuotaExceededError(
                f"worker {worker.index} is not checked out"
            )
        worker.checked_out = False

    # ------------------------------------------------------------------
    # Warm standby
    # ------------------------------------------------------------------

    def replace_session(self, worker: PoolWorker) -> int:
        """Swap a fresh session into ``worker``'s slot (the self-healing
        plane's warm standby).

        Ordering is the capacity guarantee: the replacement is fully
        constructed *before* the old session is closed, so at no instant
        does the pool hold fewer than ``size`` live sessions.  Resilient
        standbys take over the retired session's injector — its
        per-kind event counters and fired log — so a sustained fault
        plan keeps draining across the swap instead of restarting.
        Returns the lane's new generation number.
        """
        if self._closed:
            raise SessionClosedError("session pool is closed")
        if worker not in self.workers:
            raise QuotaExceededError(
                f"worker {worker.index} does not belong to this pool"
            )
        old = worker.session
        if worker.resilient:
            standby = ResilientSession(
                self.csr, self.config, self.device,
                policy=self.policy, jitter_seed=worker.index,
            )
            standby.injector = old.injector
        else:
            standby = EngineSession(self.csr, self.config, self.device)
        worker.session = standby
        worker.generation += 1
        old.close()
        return worker.generation

    def build_spare(self) -> PoolWorker:
        """A warm-standby lane *outside* the pool (index ``size``): the
        hedging plane's dedicated replica.

        Never registered in :attr:`workers` and never dispatched a
        primary request.  That isolation is load-bearing: the simulated
        device allocator bumps addresses monotonically and the frontier
        memo keys on them, so even one extra query on an active lane
        would shift that lane's warm state and break the healthy-path
        bit-identity contract.  Built clean — no injector, no fault
        plan — so the hedge leg is the known-good replica of the served
        query.
        """
        if self._closed:
            raise SessionClosedError("session pool is closed")
        if self.resilient:
            session = ResilientSession(
                self.csr, self.config, self.device,
                policy=self.policy, jitter_seed=self.size,
            )
        else:
            session = EngineSession(self.csr, self.config, self.device)
        return PoolWorker(
            index=self.size, session=session, resilient=self.resilient,
        )

    @property
    def idle_at_ms(self) -> float:
        """Earliest simulated time at which some lane is free."""
        return min(w.busy_until_ms for w in self.workers)
