"""Worker pool: resident engine sessions as schedulable lanes.

A :class:`SessionPool` owns ``size`` resident sessions over one graph —
bare :class:`~repro.core.session.EngineSession` workers by default, or
:class:`~repro.resilience.session.ResilientSession` workers when the
service runs with a fault plan or retry policy (the degradation ladder
then rides under every request).  Each worker is a *lane* on the
service's simulated clock: :attr:`PoolWorker.busy_until_ms` is when its
current work finishes, and the dispatcher always picks the lane that
frees first — the multi-queue analogue of the engine's own single
simulated timeline.

Checkout/checkin is explicit so the pool is also usable without the
service: :meth:`checkout` hands out the least-busy idle worker and
raises :class:`~repro.errors.QuotaExceededError` when every lane is
already out; :meth:`checkin` returns one.  After :meth:`close`, any
checkout raises :class:`~repro.errors.SessionClosedError`.

Sessions are *stateful* in simulated time — warm caches and frontier
memos mean a query's timing depends on the whole history its worker has
served.  The pool therefore never rebuilds or shuffles workers: lane
``i`` keeps its session for the pool's lifetime, which is what makes a
served stream replayable (see :mod:`repro.serving.identity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EtaGraphConfig
from repro.core.session import EngineSession
from repro.errors import QuotaExceededError, SessionClosedError
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph
from repro.resilience.faults import FaultPlan
from repro.resilience.session import ResilientSession, RetryPolicy


@dataclass
class PoolWorker:
    """One lane: a resident session plus its simulated-clock position."""

    index: int
    session: EngineSession | ResilientSession
    #: Simulated time at which this lane's current work completes.
    busy_until_ms: float = 0.0
    #: Requests this lane has served (successfully or not).
    served: int = 0
    #: Whether :attr:`session` is a :class:`ResilientSession`.
    resilient: bool = False
    #: Whether the lane is currently checked out.
    checked_out: bool = field(default=False, repr=False)

    def __repr__(self) -> str:
        return (
            f"PoolWorker({self.index}, busy_until {self.busy_until_ms:.3f} "
            f"ms, {self.served} served)"
        )


class SessionPool:
    """``size`` resident sessions over one graph, dispatched least-busy
    first."""

    def __init__(
        self,
        csr: CSRGraph,
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
        *,
        size: int = 2,
        fault_plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        resilient: bool | None = None,
    ):
        if size < 1:
            raise QuotaExceededError(f"pool size must be >= 1, got {size}")
        self.csr = csr
        self.config = config or EtaGraphConfig()
        self.device = device
        self.policy = policy or RetryPolicy()
        # A fault plan or explicit policy needs the resilient wrapper;
        # otherwise bare sessions keep the no-overhead fast path.
        if resilient is None:
            resilient = fault_plan is not None or policy is not None
        if fault_plan is not None and not resilient:
            raise QuotaExceededError(
                "a fault plan requires resilient workers"
            )
        self.resilient = resilient
        self.workers: list[PoolWorker] = []
        for index in range(size):
            if resilient:
                session = ResilientSession(
                    csr, self.config, device,
                    # Each lane gets its own injector state: the plan's
                    # schedule replays identically per worker.
                    fault_plan=fault_plan,
                    policy=self.policy,
                )
            else:
                session = EngineSession(csr, self.config, device)
            self.workers.append(
                PoolWorker(index=index, session=session, resilient=resilient)
            )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every worker session; the pool is dead afterwards."""
        if self._closed:
            return
        for worker in self.workers:
            worker.session.close()
        self._closed = True

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"{sum(w.served for w in self.workers)} served"
        )
        kind = "resilient" if self.resilient else "bare"
        return f"SessionPool({self.size} {kind} workers, {state})"

    # ------------------------------------------------------------------
    # Checkout / checkin
    # ------------------------------------------------------------------

    def checkout(self) -> PoolWorker:
        """The idle lane that frees first (ties break on lane index).

        Raises :class:`SessionClosedError` after :meth:`close` and
        :class:`QuotaExceededError` when every lane is checked out.
        """
        if self._closed:
            raise SessionClosedError("session pool is closed")
        idle = [w for w in self.workers if not w.checked_out]
        if not idle:
            raise QuotaExceededError(
                f"all {self.size} pool workers are checked out"
            )
        worker = min(idle, key=lambda w: (w.busy_until_ms, w.index))
        worker.checked_out = True
        return worker

    def checkin(self, worker: PoolWorker) -> None:
        """Return a checked-out lane to the pool."""
        if worker not in self.workers:
            raise QuotaExceededError(
                f"worker {worker.index} does not belong to this pool"
            )
        if not worker.checked_out:
            raise QuotaExceededError(
                f"worker {worker.index} is not checked out"
            )
        worker.checked_out = False

    @property
    def idle_at_ms(self) -> float:
        """Earliest simulated time at which some lane is free."""
        return min(w.busy_until_ms for w in self.workers)
