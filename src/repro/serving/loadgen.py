"""Closed-loop multi-tenant load generator: ``python -m repro.bench serve``.

Drives a :class:`~repro.serving.TraversalService` with a fixed tenant
mix under a *closed loop*: each simulated client has at most one
request outstanding, and its next arrival is its previous completion
plus a think time — the classic serving-benchmark shape (offered load
rises with the client count, never past the service's capacity times
the client population).

The sweep runs the same deterministic workload at increasing client
counts and reports, per tenant and per load point, the simulated
latency percentiles (p50/p95/p99), the shed rate, a typed-error
taxonomy, the tenant's SLO burn rate against its declared
deadline-hit-rate objective (see :mod:`repro.observability.slo`) and a
*worst-request trace pointer* — the ``request_id`` of the slowest
served request, renderable via ``python -m repro.observability
summarize <trace> --request <id>`` on a traced rerun.  Because every
quantity is simulated and every choice is seeded, the whole report is
reproducible bit-for-bit — the numbers in ``BENCH_PR10.json`` are
facts about the scheduler, not about the host — and CI gates it
against ``benchmarks/baseline_pr10/``.

The headline invariant (asserted by the chaos tests, visible here):
**shed rate is monotone in offered load** — more clients can only shed
more, never less.

Two self-healing scenarios ride along (the ``health`` section of the
report): **straggler** runs the same fault-absorbing workload with
hedged requests off and on and shows the p99 drop at zero digest
change, and **recovery** times one breaker's open → half-open → closed
arc on the simulated clock.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.bench.runner import ExperimentReport
from repro.graph import datasets
from repro.serving.admission import TenantQuota
from repro.serving.requests import (
    NeighborhoodRequest,
    PageRankRequest,
    ShortestPathRequest,
    StatsRequest,
    TraversalRequest,
    VisitRequest,
)
from repro.serving.service import TraversalService
from repro.utils.tables import render_table


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's workload shape in the mix."""

    name: str
    #: ``(endpoint, weight)`` pairs the tenant draws requests from.
    endpoints: tuple[tuple[str, float], ...]
    #: Per-request simulated deadline budget (None = best-effort).
    deadline_ms: float | None
    #: Simulated think time between a completion and the next arrival.
    think_ms: float
    #: Admission quota for the tenant.
    quota: TenantQuota


#: The canonical three-tenant mix: a latency-sensitive interactive
#: tenant, a deadline-free batch tenant, and an analytics tenant whose
#: occasional PageRank is the queue's elephant.
DEFAULT_MIX: tuple[TenantProfile, ...] = (
    TenantProfile(
        name="interactive",
        endpoints=(("visit", 0.5), ("neighborhood", 0.3),
                   ("shortest_path", 0.2)),
        deadline_ms=1.5,
        think_ms=0.2,
        quota=TenantQuota(max_pending=16, deadline_ms=1.5),
    ),
    TenantProfile(
        name="batch",
        endpoints=(("visit", 0.8), ("stats", 0.2)),
        deadline_ms=None,
        think_ms=0.1,
        quota=TenantQuota(max_pending=32),
    ),
    TenantProfile(
        name="analytics",
        endpoints=(("pagerank", 0.3), ("visit", 0.4), ("stats", 0.3)),
        deadline_ms=6.0,
        think_ms=0.5,
        quota=TenantQuota(max_pending=16, deadline_ms=6.0),
    ),
)

#: Declared deadline-hit-rate objectives per tenant, from which the
#: bench's per-tenant burn rates are computed (burn 1.0 = exactly
#: consuming the tenant's error budget).
DEFAULT_OBJECTIVES: dict[str, float] = {
    "interactive": 0.9,
    "batch": 0.5,
    "analytics": 0.8,
}


@dataclass(frozen=True)
class LoadSettings:
    """One serve-bench run's shape."""

    graph: str = "slashdot"
    pool_size: int = 2
    #: Client counts swept (total, split round-robin over the mix).
    client_counts: tuple[int, ...] = (3, 6, 12)
    #: Requests each client issues per load point.
    requests_per_client: int = 20
    seed: int = 0
    mix: tuple[TenantProfile, ...] = DEFAULT_MIX
    #: Host wall-clock budget (s) for the whole sweep (None = unbounded);
    #: load points past the budget are skipped, never truncated mid-run.
    max_seconds: float | None = None

    @classmethod
    def quick(cls) -> "LoadSettings":
        return cls(client_counts=(3, 6), requests_per_client=8)


def _make_request(
    profile: TenantProfile, endpoint: str, rng: np.random.Generator,
    num_vertices: int, arrival_ms: float,
) -> TraversalRequest:
    source = int(rng.integers(0, num_vertices))
    common = dict(
        tenant=profile.name, deadline_ms=profile.deadline_ms,
        arrival_ms=arrival_ms,
    )
    if endpoint == "visit":
        return VisitRequest(problem="bfs", source=source, **common)
    if endpoint == "neighborhood":
        return NeighborhoodRequest(
            source=source, hops=int(rng.integers(1, 4)), **common,
        )
    if endpoint == "shortest_path":
        return ShortestPathRequest(
            source=source, target=int(rng.integers(0, num_vertices)),
            **common,
        )
    if endpoint == "pagerank":
        return PageRankRequest(**common)
    return StatsRequest(**common)


def run_closed_loop(
    service: TraversalService,
    settings: LoadSettings,
    clients: int,
) -> list:
    """Run one load point: ``clients`` closed-loop clients over the
    tenant mix, each issuing ``requests_per_client`` requests.  Returns
    every terminal response."""
    mix = settings.mix
    rng = np.random.default_rng((settings.seed, clients))
    n = service.csr.num_vertices
    # Client i belongs to tenant i % len(mix); each keeps one request in
    # flight.  next_arrival starts staggered so lanes fill gradually.
    state = [
        {"profile": mix[i % len(mix)],
         "next_ms": 0.05 * i,
         "left": settings.requests_per_client}
        for i in range(clients)
    ]
    responses = []
    while True:
        live = [c for c in state if c["left"] > 0]
        if not live:
            break
        client = min(live, key=lambda c: c["next_ms"])
        profile = client["profile"]
        names = [name for name, _ in profile.endpoints]
        weights = np.array([w for _, w in profile.endpoints])
        endpoint = str(rng.choice(names, p=weights / weights.sum()))
        request = _make_request(
            profile, endpoint, rng, n, client["next_ms"],
        )
        # Typed failures (unreachable path target, spent deadline, ...)
        # come back as terminal responses, never as raises.
        response = service.call(request)
        responses.append(response)
        client["left"] -= 1
        client["next_ms"] = max(
            response.finish_ms, client["next_ms"],
        ) + profile.think_ms
    return responses


def _tenant_stats(
    responses: list, tenant: str, *, monitor=None, now_ms: float = 0.0,
) -> dict:
    mine = [r for r in responses if r.tenant == tenant]
    served = [r for r in mine if r.ok]
    shed = sum(1 for r in mine if r.shed)
    # An all-shed tenant (high-load sweep points) has no latencies to
    # summarize: report None, never a fabricated 0.0 percentile.  For
    # the rest, method="nearest" makes every reported percentile an
    # *observed* latency — no interpolation between samples, identical
    # across numpy versions.
    if served:
        latencies = np.array([r.latency_ms for r in served])
        p50, p95, p99 = (
            float(np.percentile(latencies, q, method="nearest"))
            for q in (50, 95, 99)
        )
    else:
        p50 = p95 = p99 = None
    # Typed-error taxonomy: failure counts by exception type name, shed
    # excluded (sheds are accounted separately).  Faults absorbed =
    # injected faults the resilience ladder ate on the way to an ``ok``.
    taxonomy: dict[str, int] = {}
    for r in mine:
        error = getattr(r, "error", None)
        if r.ok or r.shed or not error:
            continue
        name = error.split(":", 1)[0]
        taxonomy[name] = taxonomy.get(name, 0) + 1
    # Worst-request trace pointer: the request_id of the slowest served
    # request — the handle `python -m repro.observability summarize
    # <trace> --request <id>` renders on a traced rerun of the same
    # seeded workload.
    worst = max(
        served,
        key=lambda r: (r.latency_ms, getattr(r, "seq", 0)),
        default=None,
    )
    # Burn rate against the tenant's declared deadline-hit-rate
    # objective, read off the service's SLO monitor at sweep end (slow
    # window — the paging-grade signal).
    slo: dict = {"burn_rate": None, "slo_state": None, "objective": None}
    if monitor is not None:
        status = monitor.snapshot(now_ms).get(tenant)
        if status is not None:
            slo = {
                "burn_rate": status["slow_burn"],
                "slo_state": status["state"],
                "objective": status["objective"],
            }
    return {
        "requests": len(mine),
        "served": len(served),
        "shed": shed,
        "shed_rate": shed / max(len(mine), 1),
        "errors": sum(1 for r in mine if not r.ok and not r.shed),
        "error_taxonomy": dict(sorted(taxonomy.items())),
        "faults_absorbed": sum(
            len(getattr(r, "faults_seen", ())) for r in served
        ),
        "p50_ms": p50,
        "p95_ms": p95,
        "p99_ms": p99,
        "degraded": sum(1 for r in mine if r.degraded),
        "worst_request": (
            None if worst is None else getattr(worst, "request_id", None)
        ),
        "worst_latency_ms": None if worst is None else worst.latency_ms,
        **slo,
    }


def run_straggler_scenario(
    csr, *, queries: int = 60, pool_size: int = 2,
) -> dict:
    """Hedge-off vs hedge-on on a straggler lane, digest-gated.

    Lane 0 carries periodic transfer-fault bursts that the retry ladder
    always absorbs (every answer stays correct, on the entry rung), so
    its serves are slow-but-right — the classic straggler.  The same
    sequential query stream runs with hedging off and on; the scenario
    reports both p99s, the hedge win rate, and asserts per-request
    ``result_digest`` equality between the legs (a won hedge moves only
    the finish time, never the payload).  Sources are distinct so a
    hedge leg's warm-up on the standby lane cannot leak into a later
    repeat of the same query.
    """
    from repro.resilience.chaos import result_digest
    from repro.resilience.faults import FaultPlan, FaultSpec
    from repro.resilience.session import RetryPolicy
    from repro.serving.health import HealthPolicy

    queries = min(queries, csr.num_vertices)
    specs = tuple(
        FaultSpec(kind="transfer_fault", at=at, count=2)
        for at in range(4, 2 * queries, 12)
    )
    legs = {}
    for hedge in (False, True):
        with TraversalService(
            csr, pool_size=pool_size,
            fault_plans={0: FaultPlan(specs=specs)},
            policy=RetryPolicy(max_retries=6, backoff_base_ms=2.0),
            health=HealthPolicy(
                breakers=False, brownout=False, hedge=hedge,
            ),
            default_quota=TenantQuota(max_pending=max(queries, 8)),
        ) as service:
            outcomes = []
            for source in range(queries):
                response = service.call(
                    VisitRequest(problem="bfs", source=source)
                )
                if not response.ok:
                    raise AssertionError(
                        f"straggler scenario query {source} failed "
                        f"({'on' if hedge else 'off'}): {response.error}"
                    )
                outcomes.append(
                    (result_digest(response.result), response.service_ms)
                )
            legs[hedge] = {
                "outcomes": outcomes,
                "hedges": service.health.hedges,
                "hedge_wins": service.health.hedge_wins,
            }
    digest_mismatches = sum(
        1 for (off_d, _), (on_d, _) in
        zip(legs[False]["outcomes"], legs[True]["outcomes"])
        if off_d != on_d
    )
    p99 = {
        hedge: float(np.percentile(
            [ms for _, ms in legs[hedge]["outcomes"]], 99,
            method="nearest",
        ))
        for hedge in (False, True)
    }
    hedges = legs[True]["hedges"]
    return {
        "queries": queries,
        "p99_off_ms": p99[False],
        "p99_on_ms": p99[True],
        "hedges": hedges,
        "hedge_wins": legs[True]["hedge_wins"],
        "hedge_win_rate": legs[True]["hedge_wins"] / max(hedges, 1),
        "digest_mismatches": digest_mismatches,
    }


def run_recovery_scenario(csr, *, pool_size: int = 2) -> dict:
    """Time one breaker's full self-healing arc on the simulated clock.

    Lane 0 fails fast (no retries) through a finite sustained
    transfer-fault window: the breaker opens, the lane is quarantined
    and standby-replaced at the open instant, half-open probes re-admit
    it after the quarantine window, and clean probes close it.
    ``recovery_ms`` is first-close minus first-open — simulated
    milliseconds, reproducible bit-for-bit.
    """
    from repro.resilience.faults import FaultPlan, FaultSpec
    from repro.resilience.session import RetryPolicy
    from repro.serving.health import HealthPolicy

    plan = FaultPlan(
        specs=(FaultSpec(kind="transfer_fault", at=0, count=12),)
    )
    with TraversalService(
        csr, pool_size=pool_size, fault_plans={0: plan},
        policy=RetryPolicy(max_retries=0),
        health=HealthPolicy(open_ms=2.0),
        default_quota=TenantQuota(max_pending=128),
    ) as service:
        for _ in range(4):
            service.serve([
                VisitRequest(problem="bfs", source=i % csr.num_vertices)
                for i in range(30)
            ])
        events = service.health.events
        opened = next((e.t_ms for e in events if e.kind == "open"), None)
        closed = next((e.t_ms for e in events if e.kind == "closed"), None)
        return {
            "opens": sum(lane.opens for lane in service.health.lanes),
            "closes": sum(lane.closes for lane in service.health.lanes),
            # Absolute instants are wall-contaminated: the fail-fast
            # window's CPU-fallback serves carry wall-clock durations
            # (the one deliberate wall leak in the simulator), so only
            # their *difference* — the quarantine arc, which contains no
            # fallback — is deterministic.  The ``wall_`` prefix puts
            # them under the loose regression-only compare regime.
            "wall_first_open_ms": opened,
            "wall_first_close_ms": closed,
            "recovery_ms": (
                closed - opened
                if opened is not None and closed is not None else None
            ),
            "generations": [
                worker.generation for worker in service.pool.workers
            ],
        }


def run_serve(
    quick: bool = False, settings: LoadSettings | None = None,
) -> ExperimentReport:
    """The full load sweep; returns a saveable report.

    ``data`` maps ``clients_<n>`` to per-tenant latency/shed stats plus
    a ``total`` aggregate; ``sweep`` holds the shed-rate-vs-load curve
    the monotonicity claim is read off, and ``wall_s`` the host cost of
    the whole run (a ``wall_`` metric: compared only loosely).
    """
    if settings is None:
        settings = LoadSettings.quick() if quick else LoadSettings()
    csr, _ = datasets.load(settings.graph)
    quotas = {p.name: p.quota for p in settings.mix}

    data: dict = {"settings": {
        "graph": settings.graph,
        "pool_size": settings.pool_size,
        "client_counts": list(settings.client_counts),
        "requests_per_client": settings.requests_per_client,
        "seed": settings.seed,
        "tenants": [p.name for p in settings.mix],
    }}
    sweep = []
    rows = []
    wall_total = 0.0
    for clients in settings.client_counts:
        if settings.max_seconds is not None \
                and wall_total >= settings.max_seconds:
            data.setdefault("skipped", []).append(clients)
            continue
        from repro.observability.slo import SLOMonitor

        t0 = time.perf_counter()
        monitor = SLOMonitor(objectives=dict(DEFAULT_OBJECTIVES))
        with TraversalService(
            csr, pool_size=settings.pool_size, quotas=quotas,
            slo=monitor,
        ) as service:
            responses = run_closed_loop(service, settings, clients)
            now_ms = service.clock_ms
        wall = time.perf_counter() - t0
        wall_total += wall

        point: dict = {}
        for profile in settings.mix:
            stats = _tenant_stats(
                responses, profile.name, monitor=monitor, now_ms=now_ms,
            )
            point[profile.name] = stats
            rows.append([
                clients, profile.name, stats["requests"],
                *(
                    "-" if stats[k] is None else f"{stats[k]:.3f}"
                    for k in ("p50_ms", "p95_ms", "p99_ms")
                ),
                f"{100 * stats['shed_rate']:.1f}%",
                (
                    "-" if stats["burn_rate"] is None
                    else f"{stats['burn_rate']:.2f}"
                ),
                stats["worst_request"] or "-",
            ])
        total_shed = sum(point[p.name]["shed"] for p in settings.mix)
        total_requests = sum(
            point[p.name]["requests"] for p in settings.mix
        )
        point["total"] = {
            "requests": total_requests,
            "shed": total_shed,
            "shed_rate": total_shed / max(total_requests, 1),
            "wall_s": wall,
        }
        data[f"clients_{clients}"] = point
        sweep.append({
            "clients": clients,
            "shed_rate": point["total"]["shed_rate"],
        })
    data["sweep"] = sweep
    data["wall_s"] = wall_total

    # Self-healing scenarios: hedging's p99 effect at zero digest
    # change, and one breaker's simulated recovery time.
    straggler = run_straggler_scenario(
        csr, queries=30 if quick else 60,
        pool_size=settings.pool_size,
    )
    recovery = run_recovery_scenario(csr, pool_size=settings.pool_size)
    data["health"] = {"straggler": straggler, "recovery": recovery}

    text = render_table(
        ["clients", "tenant", "requests", "p50 ms", "p95 ms", "p99 ms",
         "shed", "burn", "worst req"],
        rows,
        title=(
            f"Closed-loop serve: {settings.graph}, "
            f"{settings.pool_size} lanes, "
            f"{settings.requests_per_client} requests/client"
        ),
    )
    text += "\n" + render_table(
        ["scenario", "p99 off ms", "p99 on ms", "hedge win rate",
         "digest mismatches", "recovery ms"],
        [[
            "straggler+recovery",
            f"{straggler['p99_off_ms']:.3f}",
            f"{straggler['p99_on_ms']:.3f}",
            f"{100 * straggler['hedge_win_rate']:.0f}%",
            straggler["digest_mismatches"],
            (
                "-" if recovery["recovery_ms"] is None
                else f"{recovery['recovery_ms']:.3f}"
            ),
        ]],
        title="Self-healing: hedged requests and breaker recovery",
    )
    return ExperimentReport(
        experiment="serve",
        title="Multi-tenant traversal service under closed-loop load",
        text=text,
        data=data,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench serve",
        description="Closed-loop multi-tenant load against the "
        "traversal service.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer clients/requests (CI-sized run)",
    )
    parser.add_argument(
        "--out", default="BENCH_PR10.json",
        help="write the report here (default BENCH_PR10.json; '-' skips)",
    )
    parser.add_argument(
        "--json-dir", default=None,
        help="also write <dir>/serve.json for `repro.bench compare`",
    )
    parser.add_argument(
        "--graph", default=None, help="dataset to serve (default slashdot)",
    )
    parser.add_argument(
        "--pool-size", type=int, default=None, help="worker lanes",
    )
    parser.add_argument(
        "--clients", default=None,
        help="comma-separated client counts to sweep (default 3,6,12)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="requests per client per load point",
    )
    parser.add_argument(
        "--seconds", type=float, default=None,
        help="host wall-clock budget for the sweep (smoke runs)",
    )
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    settings = LoadSettings.quick() if args.quick else LoadSettings()
    overrides: dict = {}
    if args.graph is not None:
        overrides["graph"] = args.graph
    if args.pool_size is not None:
        overrides["pool_size"] = args.pool_size
    if args.clients is not None:
        overrides["client_counts"] = tuple(
            int(c) for c in args.clients.split(",") if c.strip()
        )
    if args.requests is not None:
        overrides["requests_per_client"] = args.requests
    if args.seconds is not None:
        overrides["max_seconds"] = args.seconds
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        settings = replace(settings, **overrides)

    report = run_serve(quick=args.quick, settings=settings)
    print(report.text)

    from repro.bench.export import report_to_dict, save_report

    if args.out and args.out != "-":
        Path(args.out).write_text(
            json.dumps(report_to_dict(report), indent=2)
        )
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json_dir:
        out_dir = Path(args.json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        save_report(report, out_dir / "serve.json")
        print(f"wrote {out_dir / 'serve.json'}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
