"""Admission control: per-tenant quotas + EDF scheduling.

The queue is the service's only waiting room.  A request is either
*admitted* — it gets a sequence number, an absolute deadline on the
service's simulated clock, and a slot against its tenant's pending
quota — or it is rejected at the door with a typed error before any
worker time is spent:

* :class:`~repro.errors.QuotaExceededError` when the tenant already has
  ``max_pending`` requests waiting (per-tenant backpressure: one noisy
  tenant cannot fill the queue and starve the rest);
* :class:`~repro.errors.DeadlineExceededError` when the request's
  deadline budget is already spent on arrival (a zero budget, or a
  replayed arrival time whose deadline has passed) — the satellite
  guarantee that deadline rejection happens *before work starts*.

Dispatch order is earliest-deadline-first over the implied absolute
deadlines; best-effort requests (no deadline) sort after every
deadlined request, and ties break on admission order — the schedule is
a pure function of the admitted stream, so replaying a request log
replays the schedule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigError, DeadlineExceededError, QuotaExceededError
from repro.serving.requests import TraversalRequest


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits and SLO defaults for one tenant."""

    #: Requests the tenant may have queued at once.
    max_pending: int = 8
    #: Deadline budget (simulated ms) applied when a request carries
    #: none; ``None`` leaves such requests best-effort.
    deadline_ms: float | None = None
    #: Iteration budget applied when a request carries none.
    iteration_budget: int | None = None

    def __post_init__(self):
        if self.max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ConfigError(
                f"deadline_ms must be >= 0, got {self.deadline_ms}"
            )
        if self.iteration_budget is not None and self.iteration_budget < 1:
            raise ConfigError(
                f"iteration_budget must be >= 1, got {self.iteration_budget}"
            )


#: The quota applied to tenants without an explicit one.
DEFAULT_QUOTA = TenantQuota()


@dataclass(order=True)
class AdmittedRequest:
    """A request the queue accepted, with its resolved SLO budgets.

    Orders as the EDF heap needs: by absolute deadline (best-effort =
    ``inf``), then by admission sequence.
    """

    #: Absolute simulated deadline; ``inf`` for best-effort requests.
    deadline_abs: float
    #: Admission order (tie-break, and the FIFO key when no deadlines).
    seq: int
    request: TraversalRequest = field(compare=False)
    #: Arrival time on the service clock.
    arrival_ms: float = field(compare=False, default=0.0)
    #: Resolved per-request iteration cap (request's, else quota's).
    iteration_budget: int | None = field(compare=False, default=None)
    #: Trace context: the request's stable identity, assigned at
    #: admission and threaded through every span, response and
    #: flight-recorder entry the request touches.  A pure function of
    #: the admission order (``req-<seq>``), so replaying a request log
    #: replays the ids.
    request_id: str = field(compare=False, default="")

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def best_effort(self) -> bool:
        return self.deadline_abs == float("inf")


class AdmissionQueue:
    """EDF priority queue with per-tenant pending quotas."""

    def __init__(
        self,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota = DEFAULT_QUOTA,
    ):
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self._heap: list[AdmittedRequest] = []
        self._pending: dict[str, int] = {}
        self._next_seq = 0
        #: Requests refused at the door, by error type name.
        self.rejections: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue({len(self._heap)} pending, "
            f"{self._next_seq} admitted)"
        )

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def pending(self, tenant: str) -> int:
        """Requests of one tenant currently waiting."""
        return self._pending.get(tenant, 0)

    def submit(self, request: TraversalRequest, now_ms: float) -> AdmittedRequest:
        """Admit ``request`` at simulated time ``now_ms`` or raise.

        Raises :class:`QuotaExceededError` (tenant at ``max_pending``)
        or :class:`DeadlineExceededError` (budget already spent) —
        always before the request consumes a queue slot.
        """
        quota = self.quota_for(request.tenant)
        waiting = self._pending.get(request.tenant, 0)
        if waiting >= quota.max_pending:
            self._reject("QuotaExceededError")
            raise QuotaExceededError(
                f"tenant {request.tenant!r} has {waiting} requests pending "
                f"(quota {quota.max_pending})"
            )

        arrival = request.arrival_ms if request.arrival_ms is not None \
            else now_ms
        deadline = request.deadline_ms
        if deadline is None:
            deadline = quota.deadline_ms
        deadline_abs = float("inf") if deadline is None \
            else arrival + deadline
        if deadline_abs <= max(now_ms, arrival):
            self._reject("DeadlineExceededError")
            raise DeadlineExceededError(
                f"request {request.describe()} arrived with its "
                f"{deadline:g} ms deadline budget already spent"
            )

        budget = request.iteration_budget
        if budget is None:
            budget = quota.iteration_budget
        admitted = AdmittedRequest(
            deadline_abs=deadline_abs,
            seq=self._next_seq,
            request=request,
            arrival_ms=arrival,
            iteration_budget=budget,
            request_id=f"req-{self._next_seq:05d}",
        )
        self._next_seq += 1
        self._pending[request.tenant] = waiting + 1
        heapq.heappush(self._heap, admitted)
        return admitted

    def peek(self) -> AdmittedRequest | None:
        """The request :meth:`pop` would return next, without removing
        it (``None`` when empty) — what the service's wave coalescer
        uses to decide whether the EDF head extends the current wave."""
        return self._heap[0] if self._heap else None

    def pop(self) -> AdmittedRequest:
        """The pending request with the earliest deadline (ties by
        admission order); releases its tenant quota slot."""
        if not self._heap:
            raise IndexError("admission queue is empty")
        admitted = heapq.heappop(self._heap)
        remaining = self._pending.get(admitted.tenant, 1) - 1
        if remaining:
            self._pending[admitted.tenant] = remaining
        else:
            self._pending.pop(admitted.tenant, None)
        return admitted

    def _reject(self, error_type: str) -> None:
        self.rejections[error_type] = self.rejections.get(error_type, 0) + 1
