"""Multi-tenant traversal serving: the ROADMAP's request/response goal.

One resident graph, many tenants::

    from repro.serving import TraversalService, VisitRequest

    service = TraversalService(graph, pool_size=2)
    resp = service.call(VisitRequest(problem="bfs", source=0))
    resp.labels        # bit-identical to a bare EngineSession
    resp.latency_ms    # simulated queue + service time

The layer stack, bottom up:

* :mod:`repro.serving.requests` — typed request/response values
  (visit, neighborhood, shortest-path, pagerank, stats);
* :mod:`repro.serving.admission` — per-tenant quotas, deadline
  rejection at the door, EDF scheduling;
* :mod:`repro.serving.pool` — resident engine-session lanes on the
  simulated clock (bare or resilient);
* :mod:`repro.serving.service` — :class:`TraversalService` itself:
  dispatch, load shedding, degradation, per-tenant telemetry;
* :mod:`repro.serving.health` — the self-healing plane: lane health
  scores, circuit breakers with warm standby replacement, hedged
  requests, brownout control (``TraversalService(..., health=True)``);
* :mod:`repro.serving.identity` — the service-vs-session and
  health-plane-on/off bit-identity gates CI runs;
* :mod:`repro.serving.chaos` — the sustained-fault self-healing battery
  behind ``python -m repro.serving chaos``;
* :mod:`repro.serving.loadgen` — the closed-loop load generator behind
  ``python -m repro.bench serve``.

See ``docs/serving.md`` for the full tour.
"""

from repro.serving.admission import AdmissionQueue, AdmittedRequest, TenantQuota
from repro.serving.health import HealthPlane, HealthPolicy, LaneHealth
from repro.serving.identity import check_health_identity, \
    check_service_identity
from repro.serving.pool import PoolWorker, SessionPool
from repro.serving.requests import (
    ENDPOINTS,
    NeighborhoodRequest,
    PageRankRequest,
    ShortestPathRequest,
    StatsRequest,
    TraversalRequest,
    TraversalResponse,
    VisitRequest,
)
from repro.serving.service import TraversalService

__all__ = [
    "ENDPOINTS",
    "AdmissionQueue",
    "AdmittedRequest",
    "HealthPlane",
    "HealthPolicy",
    "LaneHealth",
    "NeighborhoodRequest",
    "PageRankRequest",
    "PoolWorker",
    "SessionPool",
    "ShortestPathRequest",
    "StatsRequest",
    "TenantQuota",
    "TraversalRequest",
    "TraversalResponse",
    "TraversalService",
    "VisitRequest",
    "check_health_identity",
    "check_service_identity",
]
