"""The multi-tenant traversal service.

:class:`TraversalService` is the request/response frontend over one
resident graph: typed requests (:mod:`repro.serving.requests`) go
through per-tenant admission (:mod:`repro.serving.admission`), wait in
an EDF queue, and are dispatched onto the least-busy lane of a resident
session pool (:mod:`repro.serving.pool`).  The whole schedule runs on
the *simulated* clock — arrivals, queueing, deadlines, lane busy times
and service times are all simulated milliseconds, so a served workload
is a deterministic, replayable function of the submitted requests.

SLO semantics:

* **Admission** rejects over-quota tenants and already-expired
  deadlines with typed errors before any work starts.
* **Shedding**: when a request's earliest possible start (its lane's
  free time) is at or past its absolute deadline, it is shed — a
  terminal :class:`~repro.serving.requests.TraversalResponse` with
  ``shed=True`` and a recorded
  :class:`~repro.errors.DeadlineExceededError`, zero worker time spent.
* **Degradation**: with resilient workers (a fault plan or retry
  policy), every request rides the device → UM → zero-copy → CPU
  ladder; the response records the final placement and whether it was
  degraded.

Bit-identity contract: with bare workers and no deadlines, the engine
results a service returns are bit-identical (labels *and* simulated
clocks) to the same query stream on bare ``EngineSession`` objects —
per lane, in dispatch order.  :mod:`repro.serving.identity` gates this.

Telemetry: ``telemetry=True`` gives the service a
:class:`~repro.observability.Tracer` recording one *request-scoped span
tree* per admitted request, keyed by the ``request_id`` assigned at
admission: a ``request`` span (arrival → terminal answer) containing a
``queue`` interval (EDF wait), a ``dispatch`` span (lane occupancy)
with the engine/resilience sub-trace grafted underneath at the dispatch
instant, and — when the self-healing plane hedged — a ``hedge`` span on
the dedicated hedge track carrying the spare replica's sub-trace.
Waves record one shared ``wave`` span; member ``request`` spans point
at it via a ``wave_sid`` attr.  Breaker and brownout transitions land
as first-class events on the ``alerts`` track.  ``summarize --request
<id>`` renders the tree.  Per-tenant counters and latency histograms
land in :attr:`TraversalService.metrics`, with cardinality bounded by
the registry's ``max_series``.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import numpy as np

from repro.core.config import EtaGraphConfig
from repro.errors import ConfigError, DataCorruptionError, \
    DeadlineExceededError, QuotaExceededError, ReproError, SessionClosedError
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph
from repro.observability.metrics import MetricsRegistry
from repro.resilience.faults import FaultPlan
from repro.resilience.session import _MODE_RUNGS, RetryPolicy
from repro.serving.admission import AdmissionQueue, AdmittedRequest, \
    TenantQuota
from repro.serving.health import HealthPlane, HealthPolicy
from repro.serving.pool import PoolWorker, SessionPool
from repro.serving.requests import (
    NeighborhoodRequest,
    PageRankRequest,
    ShortestPathRequest,
    StatsRequest,
    TraversalRequest,
    TraversalResponse,
    VisitRequest,
)


class TraversalService:
    """Request/response graph traversal over a resident session pool.

    One-shot use::

        service = TraversalService(graph, pool_size=2)
        resp = service.call(VisitRequest(problem="bfs", source=0))
        resp.labels          # bit-exact BFS levels
        resp.latency_ms      # simulated queue + service time

    Batch use: :meth:`serve` admits a request batch (converting typed
    admission failures into shed/error responses) and drains the queue
    in EDF order; responses come back in the batch's submission order.
    """

    def __init__(
        self,
        csr: CSRGraph,
        config: EtaGraphConfig | None = None,
        device: DeviceSpec = GTX_1080TI,
        *,
        pool_size: int = 2,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        fault_plan: FaultPlan | None = None,
        fault_plans: dict[int, FaultPlan] | None = None,
        policy: RetryPolicy | None = None,
        resilient: bool | None = None,
        telemetry: bool = False,
        max_series: int = 64,
        wave_width: int = 0,
        health: HealthPolicy | bool | None = None,
        slo=None,
        recorder=None,
    ):
        self.csr = csr
        self.config = config or EtaGraphConfig()
        self.device = device
        self.pool = SessionPool(
            csr, self.config, device, size=pool_size,
            fault_plan=fault_plan, fault_plans=fault_plans,
            policy=policy, resilient=resilient,
        )
        self.queue = AdmissionQueue(
            quotas=quotas,
            default_quota=default_quota or TenantQuota(),
        )
        #: The service's simulated clock: the latest instant it has
        #: observed (arrival or completion).  Never moves backwards.
        self.clock_ms = 0.0
        #: Per-tenant counters/histograms (bounded cardinality).
        self.metrics = MetricsRegistry(max_series=max_series)
        self.requests_served = 0
        self.requests_shed = 0
        self.tracer = None
        if telemetry:
            from repro.observability.spans import Tracer

            self.tracer = Tracer()
        from repro.core.msbfs import WAVE_LANES

        if wave_width != 0 and not 2 <= wave_width <= WAVE_LANES:
            raise ConfigError(
                f"wave_width must be 0 (off) or in [2, {WAVE_LANES}], "
                f"got {wave_width}"
            )
        #: MSBFS coalescing width: when >= 2, :meth:`drain` merges runs
        #: of consecutive EDF-order plain BFS ``VisitRequest``s (no
        #: early-exit target, no iteration budget) into one wave
        #: traversal of up to this many lanes.  0 (the default) serves
        #: every request as its own traversal — the bit-identity gate's
        #: configuration.
        self.wave_width = wave_width
        #: The self-healing plane (:mod:`repro.serving.health`): lane
        #: EWMA health scores, per-lane circuit breakers with warm
        #: standby replacement, hedged requests and the brownout ladder.
        #: Off by default — healthy runs are bit-identical either way
        #: (``check_health_identity`` gates it), but off keeps the
        #: no-overhead fast path and the historical default behavior.
        self.health: HealthPlane | None = None
        if health:
            health_policy = (
                health if isinstance(health, HealthPolicy)
                else HealthPolicy()
            )
            self.health = HealthPlane(health_policy, self.pool)
        #: Per-tenant SLO burn-rate monitor
        #: (:mod:`repro.observability.slo`) — purely observational, fed
        #: one sample per terminal response; ``None`` = off.  Accepts an
        #: :class:`~repro.observability.slo.SLOMonitor` (carrying
        #: declared per-tenant objectives), an
        #: :class:`~repro.observability.slo.SLOPolicy`, or ``True`` for
        #: the default policy.
        self.slo = None
        if slo:
            from repro.observability.slo import SLOMonitor, SLOPolicy

            if isinstance(slo, SLOMonitor):
                self.slo = slo
            elif isinstance(slo, SLOPolicy):
                self.slo = SLOMonitor(slo)
            else:
                self.slo = SLOMonitor()
        #: Incident flight recorder
        #: (:mod:`repro.observability.recorder`) — a bounded ring of
        #: recent serve outcomes and health events that dumps a
        #: postmortem bundle on typed failures, breaker opens and
        #: brownout escalations; ``None`` = off.
        self.recorder = None
        if recorder:
            from repro.observability.recorder import FlightRecorder

            self.recorder = (
                recorder if isinstance(recorder, FlightRecorder)
                else FlightRecorder()
            )
            self.recorder.attach(self)
        self._fault_plan = fault_plan
        #: Lazy dedicated hedge standby (see :meth:`_hedge_standby`) —
        #: never one of the pool's primary lanes.
        self._hedge_worker: PoolWorker | None = None
        #: Lazy single-lane pool for shortest-path requests: the same
        #: configuration with parent tracking on (path reconstruction
        #: needs per-vertex parent pointers, which the main pool's
        #: sessions don't record).
        self._path_pool: SessionPool | None = None
        self._stats_cache: dict | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the service down: close every worker session.  Requests
        submitted afterwards raise
        :class:`~repro.errors.SessionClosedError`; pending admitted
        requests are discarded."""
        if self._closed:
            return
        self.pool.close()
        if self._hedge_worker is not None:
            self._hedge_worker.session.close()
        if self._path_pool is not None:
            self._path_pool.close()
        self._closed = True

    def __enter__(self) -> "TraversalService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"{self.requests_served} served, {self.requests_shed} shed, "
            f"{len(self.queue)} pending"
        )
        return f"TraversalService({self.csr!r}, {self.pool.size} lanes, {state})"

    def trace(self):
        """The service-track :class:`~repro.observability.Trace` so far
        (``None`` without ``telemetry=True``)."""
        if self.tracer is None:
            return None
        return self.tracer.trace(service="etagraph", lanes=self.pool.size)

    def metrics_snapshot(self) -> dict:
        """Everything the service measures, as one
        :meth:`~repro.observability.MetricsRegistry.snapshot` dict."""
        from repro.observability.metrics import unified_snapshot

        return unified_snapshot(service=self)

    @property
    def lane_health(self) -> dict[int, float] | None:
        """Lane index -> EWMA health score (``None`` with the
        self-healing plane off)."""
        return self.health.lane_health if self.health is not None else None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: TraversalRequest) -> AdmittedRequest:
        """Validate and admit one request (no work yet); raises typed
        errors on malformed requests, exhausted quotas and spent
        deadlines."""
        if self._closed:
            raise SessionClosedError("traversal service is closed")
        if not isinstance(request, TraversalRequest):
            raise ConfigError(
                f"expected a TraversalRequest, got {type(request).__name__}"
            )
        request.validate(self.csr)
        if request.arrival_ms is not None:
            self.clock_ms = max(self.clock_ms, request.arrival_ms)
        if self.health is not None and self.health.refuse_admissions:
            # Brownout level 4: the pool is too sick to promise anything,
            # so refuse at the door (the batch path turns this into a
            # terminal error response, same as any admission refusal).
            raise QuotaExceededError(
                f"service brownout level {self.health.level}: "
                "refusing new admissions until lane health recovers"
            )
        return self.queue.submit(request, self.clock_ms)

    def serve(
        self, requests: list[TraversalRequest] | tuple[TraversalRequest, ...],
    ) -> list[TraversalResponse]:
        """Admit a batch, drain the queue, and return one terminal
        response per batch request, in submission order.

        Typed admission failures become responses (``shed=True`` for
        spent deadlines, ``ok=False`` otherwise) instead of raising, so
        a batch always gets a full set of outcomes.  Requests already
        pending from earlier :meth:`submit` calls are dispatched too
        (the queue drains fully); their responses are appended after
        the batch's.
        """
        if self._closed:
            raise SessionClosedError("traversal service is closed")
        slots: list[tuple[int | None, TraversalResponse | None]] = []
        batch_seqs: set[int] = set()
        for request in requests:
            try:
                admitted = self.submit(request)
            except SessionClosedError:
                raise
            except ReproError as exc:
                slots.append((None, self._refused(request, exc)))
            else:
                batch_seqs.add(admitted.seq)
                slots.append((admitted.seq, None))
        try:
            drained = {r.seq: r for r in self.drain()}
        except ReproError as exc:
            # A typed error escaping the dispatch loop is the hardest
            # incident shape (e.g. hedge legs disagreeing on labels):
            # leave a postmortem before re-raising.
            if self.recorder is not None:
                self.recorder.record_escape(exc, self.clock_ms)
            raise
        out = [
            response if response is not None else drained[seq]
            for seq, response in slots
        ]
        out.extend(
            drained[seq] for seq in sorted(drained)
            if seq not in batch_seqs
        )
        return out

    def call(self, request: TraversalRequest) -> TraversalResponse:
        """Submit one request and serve it to completion."""
        return self.serve([request])[0]

    def drain(self) -> list[TraversalResponse]:
        """Dispatch every pending admitted request in EDF order; returns
        their terminal responses (dispatch order).

        With :attr:`wave_width` >= 2, maximal runs of consecutive
        wave-eligible requests at the head of the EDF order are served
        as one MSBFS wave (:func:`repro.core.msbfs.run_wave`) on a
        single lane — one traversal for the whole run, per-request
        labels bit-identical to individual dispatch.
        """
        if self._closed:
            raise SessionClosedError("traversal service is closed")
        responses = []
        while len(self.queue):
            # Brownout level 2 halves the wave width, re-read every
            # iteration: health observations mid-drain move the ladder.
            width = self.wave_width
            if self.health is not None:
                width = self.health.effective_wave_width(width)
            adm = self.queue.pop()
            if width >= 2 and self._wave_eligible(adm) \
                    and not self._brownout_shed(adm):
                group = [adm]
                while len(group) < width:
                    head = self.queue.peek()
                    if head is None or not self._wave_eligible(head) \
                            or self._brownout_shed(head):
                        break
                    group.append(self.queue.pop())
                if len(group) >= 2:
                    responses.extend(self._dispatch_wave(group))
                    continue
            responses.append(self._dispatch(adm))
        return responses

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    @staticmethod
    def _wave_eligible(adm: AdmittedRequest) -> bool:
        """Whether a request can join an MSBFS wave: a plain BFS visit —
        no early-exit target (lanes cannot stop the shared traversal
        individually) and no iteration budget (the wave runs to the
        deepest lane's convergence)."""
        request = adm.request
        return (
            type(request) is VisitRequest
            and request.problem == "bfs"
            and request.target is None
            and adm.iteration_budget is None
        )

    def _dispatch_wave(
        self, group: list[AdmittedRequest],
    ) -> list[TraversalResponse]:
        """Serve a coalesced group on one lane as one wave.

        The wave starts when the lane is free *and* every member has
        arrived; members whose deadline can't survive that start are
        shed individually (at their own earliest-start instant) and the
        wave re-plans around them.  Survivors finish together.
        """
        worker = self.pool.checkout()
        responses: list[TraversalResponse] = []
        try:
            remaining = list(group)
            while True:
                start = max(
                    [worker.busy_until_ms]
                    + [a.arrival_ms for a in remaining]
                )
                late = [a for a in remaining if start >= a.deadline_abs]
                if not late:
                    break
                late_seqs = {a.seq for a in late}
                for adm in late:
                    responses.append(self._shed(
                        adm, worker,
                        max(worker.busy_until_ms, adm.arrival_ms),
                    ))
                remaining = [
                    a for a in remaining if a.seq not in late_seqs
                ]
                if not remaining:
                    return responses
            if self.health is not None:
                self.health.on_dispatch(worker, start)
            if len(remaining) == 1:
                responses.append(self._run(remaining[0], worker, start))
                return responses
            responses.extend(self._run_wave(remaining, worker, start))
            return responses
        finally:
            self.pool.checkin(worker)

    def _run_wave(
        self, group: list[AdmittedRequest], worker: PoolWorker,
        start: float,
    ) -> list[TraversalResponse]:
        from repro.core import msbfs

        sources = [a.request.source for a in group]
        responses: list[TraversalResponse] = []
        placement = _MODE_RUNGS[self.config.memory_mode]
        degraded = False
        attempts = 1
        faults: list[str] = []
        error: str | None = None
        lane_results: list = []
        service_ms = 0.0
        backoff_ms = 0.0
        tr = self.tracer
        wtr = None
        if tr is not None:
            from repro.observability.spans import Tracer

            wtr = Tracer()
        try:
            session = worker.session
            prev_tracer = session.tracer
            if wtr is not None:
                session.tracer = wtr
            try:
                if worker.resilient:
                    outcome = worker.session.run_wave(sources)
                    wave = outcome.result
                    placement = outcome.final_placement
                    degraded = outcome.degraded
                    attempts = outcome.num_attempts
                    faults = list(outcome.faults_seen)
                    backoff_ms = outcome.backoff_ms
                else:
                    wave = msbfs.run_wave(worker.session, sources)
            finally:
                if wtr is not None:
                    session.tracer = prev_tracer
            # Retry backoff is real lane time: requests queued behind a
            # flaky serve wait through its backoffs too.
            service_ms = wave.total_ms + wave.d2h_ms + backoff_ms
            lane_results = wave.to_results()
        except ReproError as exc:
            # One traversal, one fate: a typed failure fails every lane
            # (same lane-release rule as _run — failed work spends no
            # simulated time later requests would queue behind).
            error = f"{type(exc).__name__}: {exc}"
            if wtr is not None:
                wtr.unwind(wtr.max_end_ms, error=True)
        finish = start + service_ms
        # One shared wave span carries the traversal's sub-trace; each
        # member request span points at it through its ``wave_sid``
        # attr, so the per-request tree can pull in the shared work.
        wave_sid = None
        if tr is not None:
            w_span = tr.start(
                "wave", "service", start, worker=worker.index,
                width=len(group),
            )
            if wtr.records:
                tr.graft(wtr.records, base_ms=start, parent=w_span.sid,
                         lane=worker.index)
            wave_sid = tr.end(w_span, finish, ok=error is None).sid
        for lane, adm in enumerate(group):
            request = adm.request
            response = TraversalResponse(
                request=request, seq=adm.seq, ok=error is None,
                request_id=adm.request_id,
                arrival_ms=adm.arrival_ms, start_ms=start,
                worker=worker.index,
                placement="" if error is not None else placement,
                attempts=attempts,
            )
            response.finish_ms = finish
            if error is not None:
                response.error = error
                self.metrics.inc(
                    "service.errors", tenant=request.tenant,
                    type=error.split(":", 1)[0],
                )
            else:
                result = lane_results[lane]
                response.degraded = degraded
                response.faults_seen = list(faults)
                response.result = result
                response.value = result.labels
                if degraded:
                    self.metrics.inc("service.degraded",
                                     tenant=request.tenant)
            self.requests_served += 1
            self.metrics.inc("service.requests", tenant=request.tenant,
                             endpoint=request.endpoint)
            self.metrics.observe(
                "service.latency_ms", response.latency_ms,
                tenant=request.tenant, endpoint=request.endpoint,
            )
            self.metrics.observe("service.queue_ms", response.queue_ms,
                                 tenant=request.tenant)
            if tr is not None:
                r_span = tr.start(
                    "request", "service", adm.arrival_ms,
                    request_id=adm.request_id, tenant=request.tenant,
                    endpoint=request.endpoint, seq=adm.seq,
                    wave=len(group), wave_lane=lane, wave_sid=wave_sid,
                )
                tr.emit("queue", "service", start - adm.arrival_ms,
                        t_ms=adm.arrival_ms, request_id=adm.request_id)
                tr.end(
                    r_span, finish, worker=worker.index,
                    ok=response.ok, placement=response.placement,
                    queue_ms=response.queue_ms,
                )
            self._slo_record(
                request.tenant, finish,
                response.ok and finish <= adm.deadline_abs,
            )
            if self.recorder is not None:
                self.recorder.observe_response(response)
            responses.append(response)
        worker.busy_until_ms = max(worker.busy_until_ms, finish)
        worker.served += len(group)
        self.clock_ms = max(self.clock_ms, finish)
        if self.health is not None:
            # One traversal, one observation: a wave is a single serve
            # on its lane, however many requests rode it.
            self._health_observe(
                worker, ok=error is None,
                error_type=(
                    error.split(":", 1)[0] if error is not None else None
                ),
                faults=len(faults), attempts=attempts, degraded=degraded,
                t_ms=finish,
            )
        return responses

    def _brownout_shed(self, adm: AdmittedRequest) -> bool:
        """Brownout level 3: best-effort work is shed at dispatch so the
        remaining healthy capacity serves deadlined requests."""
        return (
            self.health is not None
            and self.health.shed_best_effort
            and adm.best_effort
        )

    def _dispatch(self, adm: AdmittedRequest) -> TraversalResponse:
        worker = self.pool.checkout()
        try:
            start = max(worker.busy_until_ms, adm.arrival_ms)
            if self._brownout_shed(adm):
                return self._shed(adm, worker, start, brownout=True)
            if start >= adm.deadline_abs:
                return self._shed(adm, worker, start)
            if self.health is not None:
                self.health.on_dispatch(worker, start)
            return self._run(adm, worker, start)
        finally:
            self.pool.checkin(worker)

    def _shed(
        self, adm: AdmittedRequest, worker: PoolWorker, at_ms: float,
        *, brownout: bool = False,
    ) -> TraversalResponse:
        """Load shedding: the deadline expired while queued (or brownout
        dropped best-effort work) — record a typed refusal without
        spending any worker time."""
        if brownout:
            error = DeadlineExceededError(
                f"request {adm.request.describe()} shed: service "
                f"brownout level {self.health.level} is dropping "
                f"best-effort work"
            )
        else:
            error = DeadlineExceededError(
                f"request {adm.request.describe()} shed: deadline "
                f"{adm.deadline_abs:.3f} ms passed before dispatch "
                f"(earliest start {at_ms:.3f} ms)"
            )
        self.requests_shed += 1
        self.clock_ms = max(self.clock_ms, at_ms)
        self.metrics.inc("service.sheds", tenant=adm.tenant,
                         endpoint=adm.request.endpoint)
        if brownout:
            self.metrics.inc("service.brownout_sheds", tenant=adm.tenant)
        tr = self.tracer
        if tr is not None:
            # Even a shed request gets its request-scoped tree: the
            # queue wait plus the shed instant that ended it.
            r_span = tr.start(
                "request", "service", adm.arrival_ms,
                request_id=adm.request_id, tenant=adm.tenant,
                endpoint=adm.request.endpoint, seq=adm.seq, shed=True,
            )
            tr.emit("queue", "service", at_ms - adm.arrival_ms,
                    t_ms=adm.arrival_ms, request_id=adm.request_id)
            tr.emit(
                "shed", "service", 0.0, t_ms=at_ms,
                tenant=adm.tenant, endpoint=adm.request.endpoint,
                seq=adm.seq, worker=worker.index,
                request_id=adm.request_id, brownout=brownout,
            )
            tr.end(r_span, at_ms, ok=False, worker=worker.index)
        response = TraversalResponse(
            request=adm.request, seq=adm.seq, ok=False,
            request_id=adm.request_id,
            error=f"{type(error).__name__}: {error}", shed=True,
            arrival_ms=adm.arrival_ms, start_ms=at_ms, finish_ms=at_ms,
            worker=worker.index,
        )
        self._slo_record(adm.tenant, at_ms, False)
        if self.recorder is not None:
            self.recorder.observe_response(response)
        return response

    def _refused(
        self, request: TraversalRequest, exc: ReproError,
    ) -> TraversalResponse:
        """An admission-time refusal as a terminal response (batch path)."""
        shed = isinstance(exc, DeadlineExceededError)
        if shed:
            self.requests_shed += 1
            self.metrics.inc("service.sheds", tenant=request.tenant,
                             endpoint=request.endpoint)
        else:
            self.metrics.inc("service.errors", tenant=request.tenant,
                             type=type(exc).__name__)
        now = self.clock_ms
        response = TraversalResponse(
            request=request, seq=-1, ok=False,
            error=f"{type(exc).__name__}: {exc}", shed=shed,
            arrival_ms=now, start_ms=now, finish_ms=now,
        )
        self._slo_record(request.tenant, now, False)
        if self.recorder is not None:
            self.recorder.observe_response(response)
        return response

    def _run(
        self, adm: AdmittedRequest, worker: PoolWorker, start: float,
    ) -> TraversalResponse:
        request = adm.request
        response = TraversalResponse(
            request=request, seq=adm.seq, ok=True,
            request_id=adm.request_id,
            arrival_ms=adm.arrival_ms, start_ms=start,
            worker=worker.index,
            placement=_MODE_RUNGS[self.config.memory_mode],
            attempts=1,
        )
        tr = self.tracer
        rtr = req_span = d_span = None
        if tr is not None:
            from repro.observability.spans import Tracer

            # The request-scoped tree: request (arrival -> terminal
            # answer) > queue wait + dispatch (lane occupancy).  The
            # engine runs on a fresh per-request tracer whose clock
            # starts at the dispatch instant's zero; its records are
            # grafted under the dispatch span afterwards.
            req_span = tr.start(
                "request", "service", adm.arrival_ms,
                request_id=adm.request_id, tenant=request.tenant,
                endpoint=request.endpoint, seq=adm.seq,
            )
            tr.emit("queue", "service", start - adm.arrival_ms,
                    t_ms=adm.arrival_ms, request_id=adm.request_id)
            d_span = tr.start("dispatch", "service", start,
                              request_id=adm.request_id,
                              worker=worker.index)
            rtr = Tracer()
        service_ms = 0.0
        try:
            service_ms = self._execute(adm, worker, response, tracer=rtr)
        except ReproError as exc:
            # A typed failure is a terminal answer: the lane is released
            # at its dispatch position (failed work spends no simulated
            # device time that a later request would queue behind).
            response.ok = False
            response.error = f"{type(exc).__name__}: {exc}"
            response.placement = ""
            self.metrics.inc("service.errors", tenant=request.tenant,
                             type=type(exc).__name__)
            if rtr is not None:
                rtr.unwind(rtr.max_end_ms, error=True)
        finish = start + service_ms
        response.finish_ms = finish
        # The health plane only attributes outcomes that actually ran on
        # this lane's session (pagerank, stats and shortest_path run
        # elsewhere).  Primary-leg facts are captured before hedging may
        # overwrite the response with the winning leg's metadata.
        observed = self.health is not None and isinstance(
            request, (VisitRequest, NeighborhoodRequest)
        )
        primary_attempts = response.attempts
        primary_degraded = response.degraded
        primary_faults = len(response.faults_seen)
        primary_clean = not (
            primary_degraded or primary_attempts > 1 or primary_faults
        )
        hedge_trace = None
        if observed and response.ok:
            hedge_trace = self._maybe_hedge(
                adm, worker, response, start, service_ms,
            )
            if primary_clean:
                self.health.record_latency(request.endpoint, service_ms)
        worker.busy_until_ms = max(worker.busy_until_ms, finish)
        worker.served += 1
        self.clock_ms = max(self.clock_ms, finish, response.finish_ms)
        self.requests_served += 1
        self.metrics.inc("service.requests", tenant=request.tenant,
                         endpoint=request.endpoint)
        self.metrics.observe("service.latency_ms", response.latency_ms,
                             tenant=request.tenant, endpoint=request.endpoint)
        self.metrics.observe("service.queue_ms", response.queue_ms,
                             tenant=request.tenant)
        if response.degraded:
            self.metrics.inc("service.degraded", tenant=request.tenant)
        if tr is not None:
            if rtr.records:
                tr.graft(rtr.records, base_ms=start, parent=d_span.sid,
                         lane=worker.index, request_id=adm.request_id)
            tr.end(d_span, finish, ok=response.ok,
                   placement=response.placement,
                   attempts=response.attempts)
            if hedge_trace is not None:
                # The spare replica's leg lands on the dedicated hedge
                # track (it ran on another lane concurrently with the
                # primary — it must never share the primary's rows).
                h_rec = tr.emit(
                    "hedge", "hedge", hedge_trace["dur_ms"],
                    t_ms=hedge_trace["start_ms"],
                    request_id=adm.request_id, lane=hedge_trace["lane"],
                    threshold_ms=hedge_trace["threshold_ms"],
                    won=response.hedge_won,
                )
                tr.graft(
                    hedge_trace["records"],
                    base_ms=hedge_trace["start_ms"], parent=h_rec.sid,
                    category="hedge", lane=hedge_trace["lane"],
                    request_id=adm.request_id,
                )
            attrs = {}
            if response.hedged:
                attrs = {"hedged": True, "hedge_won": response.hedge_won}
            tr.end(
                req_span, response.finish_ms,
                worker=worker.index, ok=response.ok,
                placement=response.placement,
                queue_ms=response.queue_ms, **attrs,
            )
        self._slo_record(
            request.tenant, response.finish_ms,
            response.ok and response.finish_ms <= adm.deadline_abs,
        )
        if self.recorder is not None:
            self.recorder.observe_response(response)
        if observed:
            self._health_observe(
                worker, ok=response.ok,
                error_type=(
                    response.error.split(":", 1)[0]
                    if response.error is not None else None
                ),
                faults=primary_faults, attempts=primary_attempts,
                degraded=primary_degraded, t_ms=finish,
            )
        return response

    # ------------------------------------------------------------------
    # Self-healing plane hooks
    # ------------------------------------------------------------------

    def _slo_record(self, tenant: str, t_ms: float, hit: bool) -> None:
        """Feed one terminal outcome to the SLO monitor; any alert
        transition becomes an ``alerts``-track event and a counter."""
        if self.slo is None:
            return
        for alert in self.slo.record(tenant, t_ms, hit):
            self.metrics.inc("slo.alerts", tenant=tenant, state=alert.state)
            if self.tracer is not None:
                self.tracer.emit(
                    "slo_alert", "alerts", 0.0, t_ms=alert.t_ms,
                    tenant=tenant, state=alert.state,
                    previous=alert.previous,
                    fast_burn=alert.fast_burn, slow_burn=alert.slow_burn,
                )

    def _health_observe(self, worker: PoolWorker, **outcome) -> list:
        """Feed one lane serve to the health plane; mirror the resulting
        score/level into metrics and any breaker transitions into the
        metrics registry and the service trace."""
        plane = self.health
        events = plane.observe(worker, **outcome)
        self.metrics.set_gauge(
            "service.lane_health", plane.lanes[worker.index].score,
            lane=str(worker.index),
        )
        self.metrics.set_gauge("service.brownout_level", float(plane.level))
        for event in events:
            self.metrics.inc("service.breaker_transitions", kind=event.kind)
            if self.tracer is not None:
                # Breaker and brownout transitions are first-class
                # alerts, on their own track — they annotate the whole
                # service, not any one request's tree.
                self.tracer.emit(
                    event.kind, "alerts", 0.0, t_ms=event.t_ms,
                    lane=-1 if event.lane is None else event.lane,
                    detail=event.detail,
                )
        if self.recorder is not None and events:
            self.recorder.observe_events(events, worker.index)
        return events

    def _hedge_standby(self) -> PoolWorker:
        """The dedicated warm hedge lane (built on first use; its first
        leg pays the one-time topology setup and then stays warm)."""
        if self._hedge_worker is None:
            self._hedge_worker = self.pool.build_spare()
        return self._hedge_worker

    def _maybe_hedge(
        self, adm: AdmittedRequest, worker: PoolWorker,
        response: TraversalResponse, start: float, service_ms: float,
    ) -> dict | None:
        """Hedge a suspect straggler: when a serve from a non-pristine
        lane overshoots the endpoint's clean-latency p95, run the same
        query on the warm hedge standby and keep the earlier finish.

        Both legs must agree bit-for-bit on labels — hedging trades
        simulated latency, never answers.  The primary lane stays
        charged for its full service time either way (its work really
        happened), and a won hedge only moves the *response*'s finish to
        the standby leg's earlier one: the payload, ``result`` (and so
        ``result_digest``), lane and placement stay the primary's, which
        is what keeps the hedged run digest-identical to the unhedged
        one.

        Returns the hedge leg's trace material (records on the leg's
        own tracer, plus its window on the service clock) for the
        caller to graft onto the ``hedge`` track, or ``None`` when no
        hedge ran.
        """
        plane = self.health
        request = adm.request
        if not plane.hedging_active:
            return None
        if not plane.suspect(worker, response):
            return None
        threshold = plane.hedge_threshold(request.endpoint)
        if threshold is None or service_ms <= threshold:
            return None
        standby = self._hedge_standby()
        plane.hedges += 1
        self.metrics.inc("service.hedges", tenant=request.tenant,
                         endpoint=request.endpoint)
        hedge = TraversalResponse(
            request=request, seq=adm.seq, ok=True,
            arrival_ms=adm.arrival_ms, start_ms=start,
            worker=standby.index,
            placement=_MODE_RUNGS[self.config.memory_mode],
            attempts=1,
        )
        # The hedge launches once the primary has overshot the
        # threshold — not at dispatch (that would double every suspect
        # serve's work) — and no earlier than the standby is free (a
        # backed-up standby simply loses the race).
        hedge_start = max(standby.busy_until_ms, start + threshold)
        hedge.start_ms = hedge_start
        htr = None
        if self.tracer is not None:
            from repro.observability.spans import Tracer

            htr = Tracer()
        try:
            if isinstance(request, VisitRequest):
                hedge_ms = self._run_visit(
                    standby, hedge, request.problem, request.source,
                    target=request.target,
                    iteration_budget=adm.iteration_budget,
                    tracer=htr,
                )
            else:
                hedge_ms = self._run_visit(
                    standby, hedge, "bfs", request.source,
                    target=None, iteration_budget=adm.iteration_budget,
                    tracer=htr,
                )
        except ReproError:
            # A failed hedge leg never touches the request: the primary
            # already answered.  The standby is clean by construction
            # (no injector), so a failure here is request-shaped, not a
            # lane-health signal.
            return None
        hedge_finish = hedge_start + hedge_ms
        standby.busy_until_ms = max(standby.busy_until_ms, hedge_finish)
        standby.served += 1
        self.clock_ms = max(self.clock_ms, hedge_finish)
        if not np.array_equal(
            np.asarray(response.result.labels),
            np.asarray(hedge.result.labels),
        ):
            raise DataCorruptionError(
                f"hedge legs disagree on seq {adm.seq}: lane "
                f"{worker.index} and the hedge standby returned "
                f"different labels for {request.describe()}"
            )
        hedge_clean = not (
            hedge.degraded or hedge.attempts > 1 or hedge.faults_seen
        )
        if hedge_clean:
            plane.record_latency(request.endpoint, hedge_ms)
        response.hedged = True
        if hedge_finish < response.finish_ms:
            plane.hedge_wins += 1
            response.hedge_won = True
            self.metrics.inc("service.hedge_wins", tenant=request.tenant,
                             endpoint=request.endpoint)
            # Only the finish moves: the tenant got its (identical)
            # answer at the standby leg's earlier completion, but the
            # payload and result stay the primary's so the response is
            # digest-identical to a hedge-off run.
            response.finish_ms = hedge_finish
        if htr is None:
            return None
        return {
            "records": htr.records,
            "start_ms": hedge_start,
            "dur_ms": hedge_ms,
            "lane": standby.index,
            "threshold_ms": threshold,
        }

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _execute(
        self, adm: AdmittedRequest, worker: PoolWorker,
        response: TraversalResponse, tracer=None,
    ) -> float:
        """Run one endpoint on ``worker``; fills the response payload and
        returns the simulated service time (ms).  ``tracer`` is the
        request-local :class:`~repro.observability.Tracer` the engine
        records into (``None`` with telemetry off)."""
        request = adm.request
        if isinstance(request, VisitRequest):
            return self._run_visit(
                worker, response, request.problem, request.source,
                target=request.target, iteration_budget=adm.iteration_budget,
                tracer=tracer,
            )
        if isinstance(request, NeighborhoodRequest):
            return self._run_neighborhood(
                worker, response, request, adm, tracer=tracer,
            )
        if isinstance(request, ShortestPathRequest):
            return self._run_shortest_path(
                response, request, adm, tracer=tracer,
            )
        if isinstance(request, PageRankRequest):
            return self._run_pagerank(response, request, adm, tracer=tracer)
        if isinstance(request, StatsRequest):
            return self._run_stats(response)
        raise ConfigError(
            f"no endpoint for request type {type(request).__name__}"
        )

    def _run_visit(
        self, worker: PoolWorker, response: TraversalResponse,
        problem: str, source: int, *, target: int | None,
        iteration_budget: int | None, tracer=None,
    ) -> float:
        """The traversal core shared by visit and neighborhood: one
        engine query on the worker's resident session, bit-identical to
        the same query on a bare session.  ``tracer`` (when given) is
        attached to the session for the duration of the query, so the
        engine's spans land on the request-local timeline."""
        session = worker.session
        prev_tracer = session.tracer
        if tracer is not None:
            session.tracer = tracer
        try:
            if worker.resilient:
                policy = worker.session.policy
                if iteration_budget is not None:
                    policy = replace(policy, max_iterations=iteration_budget)
                outcome = worker.session.run(
                    problem, source, target=target, policy=policy,
                )
                result = outcome.result
                response.placement = outcome.final_placement
                response.degraded = outcome.degraded
                response.attempts = outcome.num_attempts
                response.faults_seen = list(outcome.faults_seen)
                response.result = outcome.result
                response.value = outcome.result.labels
                # Retry backoff is real lane time: a flaky serve makes
                # the requests queued behind it wait through its
                # backoffs too.
                return (outcome.result.total_ms + outcome.result.d2h_ms
                        + outcome.backoff_ms)
            else:
                from repro.errors import ConvergenceError

                try:
                    result = worker.session.query(
                        problem, source, target=target,
                        max_iterations=iteration_budget,
                    )
                except ConvergenceError as exc:
                    if iteration_budget is not None:
                        # Budget exhaustion is an SLO outcome, not an
                        # engine defect — same mapping the resilient
                        # path applies.
                        raise DeadlineExceededError(
                            f"query exceeded its iteration budget of "
                            f"{iteration_budget}"
                        ) from exc
                    raise
        finally:
            if tracer is not None:
                session.tracer = prev_tracer
        response.result = result
        response.value = result.labels
        return result.total_ms + result.d2h_ms

    def _run_neighborhood(
        self, worker: PoolWorker, response: TraversalResponse,
        request: NeighborhoodRequest, adm: AdmittedRequest, tracer=None,
    ) -> float:
        service_ms = self._run_visit(
            worker, response, "bfs", request.source,
            target=None, iteration_budget=adm.iteration_budget,
            tracer=tracer,
        )
        levels = response.result.labels
        within = np.flatnonzero(
            np.isfinite(levels) & (levels <= request.hops)
        )
        response.value = {
            "vertices": within,
            "levels": levels[within].astype(np.int64),
        }
        return service_ms

    def _run_shortest_path(
        self, response: TraversalResponse, request: ShortestPathRequest,
        adm: AdmittedRequest, tracer=None,
    ) -> float:
        from repro.algorithms.paths import reconstruct_path

        pool = self._path_pool
        if pool is None:
            pool = self._path_pool = SessionPool(
                self.csr, self.config.with_track_parents(), self.device,
                size=1, fault_plan=self._fault_plan,
                policy=self.pool.policy if self.pool.resilient else None,
                resilient=self.pool.resilient,
            )
        worker = pool.checkout()
        try:
            service_ms = self._run_visit(
                worker, response, "bfs", request.source,
                target=request.target,
                iteration_budget=adm.iteration_budget,
                tracer=tracer,
            )
            worker.busy_until_ms = max(
                worker.busy_until_ms, response.start_ms + service_ms,
            )
            worker.served += 1
        finally:
            pool.checkin(worker)
        parents = response.result.extras.get("parents")
        if parents is None:
            # The CPU-oracle rung served this one: the exact host
            # traversal reports levels, not parents — reconstruct the
            # path from the levels instead.
            path = _path_from_levels(
                self.csr, response.result.labels,
                request.source, request.target,
            )
        else:
            path = reconstruct_path(parents, request.source, request.target)
        response.value = path
        return service_ms

    def _run_pagerank(
        self, response: TraversalResponse, request: PageRankRequest,
        adm: AdmittedRequest, tracer=None,
    ) -> float:
        from repro.core.pagerank import delta_pagerank

        pr = delta_pagerank(
            self.csr,
            damping=request.damping,
            tolerance=request.tolerance,
            max_iterations=(
                adm.iteration_budget
                if adm.iteration_budget is not None
                else self.config.max_iterations
            ),
            config=self.config,
            device=self.device,
        )
        response.result = pr
        response.value = pr.ranks
        if tracer is not None:
            # PageRank runs outside the session pool, so no kernel-level
            # sub-trace exists; a single engine span still gives the
            # request tree its compute leaf.
            tracer.emit(
                "pagerank", "engine", pr.total_ms, t_ms=0.0,
                damping=request.damping,
            )
        return pr.total_ms

    def _run_stats(self, response: TraversalResponse) -> float:
        if self._stats_cache is None:
            from repro.graph.properties import GraphSummary

            self._stats_cache = asdict(GraphSummary.of(self.csr))
        value = dict(self._stats_cache)
        if self.health is not None:
            # The stats endpoint doubles as the health surface: lane
            # scores, breaker states, generations and the brownout level
            # ride along when the self-healing plane is on.
            value["health"] = self.health.snapshot()
        response.value = value
        # Served from precomputed metadata: no simulated device time.
        return 0.0


def _path_from_levels(
    csr: CSRGraph, levels: np.ndarray, source: int, target: int,
) -> list[int]:
    """Reconstruct a minimum-hop path from BFS levels alone (the
    parents-free fallback).  Walks backwards from the target, picking at
    each step a predecessor one level closer that really has the edge."""
    from repro.algorithms.paths import PathError

    if not np.isfinite(levels[target]):
        raise PathError(f"vertex {target} was not reached from {source}")
    path = [int(target)]
    v = int(target)
    offsets, cols = csr.row_offsets, csr.column_indices
    while v != source:
        want = levels[v] - 1
        candidates = np.flatnonzero(levels == want)
        step = None
        for u in candidates:
            if v in cols[offsets[u]:offsets[u + 1]]:
                step = int(u)
                break
        if step is None:
            raise PathError(f"corrupt level structure at vertex {v}")
        path.append(step)
        v = step
    path.reverse()
    return path
