"""Execution timeline: transfer/compute interval bookkeeping (Fig. 4).

The paper's Fig. 4 plots data-transfer and kernel-execution activity of
EtaGraph w/o UMP over wall-clock time and observes 60-80% overlap.  The
engine records one interval per activity here; this module computes the
union-based overlap statistics and the cumulative series the figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.intervals import intersection_length, union


@dataclass(frozen=True)
class Interval:
    kind: str  # "compute" | "transfer"
    start_ms: float
    end_ms: float
    nbytes: float = 0.0
    label: str = ""

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class Timeline:
    """Ordered record of compute and transfer intervals."""

    intervals: list[Interval] = field(default_factory=list)

    def add(
        self,
        kind: str,
        start_ms: float,
        end_ms: float,
        *,
        nbytes: float = 0.0,
        label: str = "",
    ) -> None:
        if end_ms < start_ms:
            raise ValueError(f"interval ends before it starts: {start_ms}..{end_ms}")
        if kind not in ("compute", "transfer"):
            raise ValueError(f"unknown interval kind {kind!r}")
        self.intervals.append(Interval(kind, start_ms, end_ms, nbytes, label))

    def _of_kind(self, kind: str) -> list[tuple[float, float]]:
        return union(
            [(iv.start_ms, iv.end_ms) for iv in self.intervals if iv.kind == kind]
        )

    @property
    def span_ms(self) -> float:
        if not self.intervals:
            return 0.0
        return max(iv.end_ms for iv in self.intervals) - min(
            iv.start_ms for iv in self.intervals
        )

    @property
    def end_ms(self) -> float:
        """Wall-clock end of the last interval (absolute, from time 0)."""
        if not self.intervals:
            return 0.0
        return max(iv.end_ms for iv in self.intervals)

    def busy_ms(self, kind: str) -> float:
        return sum(hi - lo for lo, hi in self._of_kind(kind))

    def overlap_ms(self) -> float:
        """Time during which transfer and compute proceed concurrently."""
        return intersection_length(self._of_kind("compute"), self._of_kind("transfer"))

    def overlap_fraction(self) -> float:
        """Overlapped time as a share of the total span (Fig. 4's 60-80%)."""
        span = self.span_ms
        return self.overlap_ms() / span if span > 0 else 0.0

    def to_trace_events(self) -> list[dict]:
        """The timeline as Chrome trace-event dicts — the same code path
        the telemetry exporter uses, so Fig. 4 data loads in Perfetto
        alongside (and consistent with) traced-query spans."""
        from repro.observability.export import intervals_to_events

        return intervals_to_events(self.intervals)

    def cumulative_bytes_series(self, kind: str) -> list[tuple[float, float]]:
        """(time, cumulative bytes) steps for transfer-progress plots."""
        points = []
        total = 0.0
        for iv in sorted(
            (iv for iv in self.intervals if iv.kind == kind),
            key=lambda iv: iv.end_ms,
        ):
            total += iv.nbytes
            points.append((iv.end_ms, total))
        return points
