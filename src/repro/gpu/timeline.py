"""Execution timeline: transfer/compute interval bookkeeping (Fig. 4).

The paper's Fig. 4 plots data-transfer and kernel-execution activity of
EtaGraph w/o UMP over wall-clock time and observes 60-80% overlap.  The
engine records one interval per activity here; this module computes the
union-based overlap statistics and the cumulative series the figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Interval:
    kind: str  # "compute" | "transfer"
    start_ms: float
    end_ms: float
    nbytes: float = 0.0
    label: str = ""

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge possibly-overlapping intervals into a disjoint union."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _intersection_length(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclass
class Timeline:
    """Ordered record of compute and transfer intervals."""

    intervals: list[Interval] = field(default_factory=list)

    def add(
        self,
        kind: str,
        start_ms: float,
        end_ms: float,
        *,
        nbytes: float = 0.0,
        label: str = "",
    ) -> None:
        if end_ms < start_ms:
            raise ValueError(f"interval ends before it starts: {start_ms}..{end_ms}")
        if kind not in ("compute", "transfer"):
            raise ValueError(f"unknown interval kind {kind!r}")
        self.intervals.append(Interval(kind, start_ms, end_ms, nbytes, label))

    def _of_kind(self, kind: str) -> list[tuple[float, float]]:
        return _union(
            [(iv.start_ms, iv.end_ms) for iv in self.intervals if iv.kind == kind]
        )

    @property
    def span_ms(self) -> float:
        if not self.intervals:
            return 0.0
        return max(iv.end_ms for iv in self.intervals) - min(
            iv.start_ms for iv in self.intervals
        )

    @property
    def end_ms(self) -> float:
        """Wall-clock end of the last interval (absolute, from time 0)."""
        if not self.intervals:
            return 0.0
        return max(iv.end_ms for iv in self.intervals)

    def busy_ms(self, kind: str) -> float:
        return sum(hi - lo for lo, hi in self._of_kind(kind))

    def overlap_ms(self) -> float:
        """Time during which transfer and compute proceed concurrently."""
        return _intersection_length(self._of_kind("compute"), self._of_kind("transfer"))

    def overlap_fraction(self) -> float:
        """Overlapped time as a share of the total span (Fig. 4's 60-80%)."""
        span = self.span_ms
        return self.overlap_ms() / span if span > 0 else 0.0

    def cumulative_bytes_series(self, kind: str) -> list[tuple[float, float]]:
        """(time, cumulative bytes) steps for transfer-progress plots."""
        points = []
        total = 0.0
        for iv in sorted(
            (iv for iv in self.intervals if iv.kind == kind),
            key=lambda iv: iv.end_ms,
        ):
            total += iv.nbytes
            points.append((iv.end_ms, total))
        return points
