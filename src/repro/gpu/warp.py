"""Warp-level SIMT arithmetic.

A warp executes in lockstep (Section II-A): a warp instruction retires
when its slowest lane finishes, so a warp's issue time is the *maximum*
of its lanes' work — the root cause of the long-tail problem UDC solves.
These helpers reduce per-thread quantities to per-warp max/sum without
Python loops.
"""

from __future__ import annotations

import numpy as np


def pad_to_warps(values: np.ndarray, warp_size: int = 32, fill: float = 0) -> np.ndarray:
    """Pad a per-thread array to a whole number of warps and reshape to
    ``(num_warps, warp_size)``."""
    values = np.asarray(values)
    n = len(values)
    num_warps = -(-max(n, 1) // warp_size)
    padded = np.full(num_warps * warp_size, fill, dtype=values.dtype
                     if values.dtype.kind == "f" else np.float64)
    padded[:n] = values
    return padded.reshape(num_warps, warp_size)


def per_warp_max(values: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Lockstep cost: the slowest lane of each warp."""
    return pad_to_warps(values, warp_size).max(axis=1)


def per_warp_sum(values: np.ndarray, warp_size: int = 32) -> np.ndarray:
    """Total work of each warp (useful work, regardless of balance)."""
    return pad_to_warps(values, warp_size).sum(axis=1)


def warp_efficiency(lane_work: np.ndarray, warp_size: int = 32) -> float:
    """Useful-lane-cycles / issued-lane-cycles across all warps.

    1.0 means perfectly balanced warps; skewed degrees without UDC push
    this far below 1 (most lanes idle while the hub lane runs).
    """
    lane_work = np.asarray(lane_work, dtype=np.float64)
    if len(lane_work) == 0:
        return 1.0
    total = float(lane_work.sum())
    issued = float(per_warp_max(lane_work, warp_size).sum()) * warp_size
    return total / issued if issued > 0 else 1.0


def assign_warps_to_sms(warp_costs: np.ndarray, num_sms: int) -> np.ndarray:
    """Round-robin warp scheduling; returns total cycles per SM."""
    warp_costs = np.asarray(warp_costs, dtype=np.float64)
    if len(warp_costs) == 0:
        return np.zeros(num_sms)
    sm_of_warp = np.arange(len(warp_costs)) % num_sms
    return np.bincount(sm_of_warp, weights=warp_costs, minlength=num_sms)
