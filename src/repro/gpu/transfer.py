"""Explicit host<->device copy model (``cudaMemcpy`` analogue).

Used by the non-UM frameworks (CuSha, Gunrock, Tigr, and EtaGraph's
"w/o UM" ablation): the whole graph is staged over PCIe before the first
kernel, which is exactly the ``t_total - t_kernel`` gap Table III shows
for the baselines.
"""

from __future__ import annotations

from repro.gpu.device import DeviceSpec
from repro.gpu.profiler import Profiler


def h2d_copy(
    spec: DeviceSpec, profiler: Profiler, nbytes: float, *, pinned: bool = False
) -> float:
    """Host-to-device copy; returns elapsed ms and records it.

    Pageable host memory (the default) pays an extra staging pass through
    a pinned bounce buffer, modelled as a 50% bandwidth derate — typical
    for pageable vs pinned PCIe 3.0 throughput (~6 vs ~12 GB/s).
    """
    bandwidth = spec.pcie_bandwidth_gbps * (1.0 if pinned else 0.5)
    time_ms = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(nbytes, bandwidth)
    profiler.record_h2d(nbytes, time_ms)
    return time_ms


def d2h_copy(
    spec: DeviceSpec, profiler: Profiler, nbytes: float, *, pinned: bool = False
) -> float:
    """Device-to-host copy; returns elapsed ms and records it."""
    bandwidth = spec.pcie_bandwidth_gbps * (1.0 if pinned else 0.5)
    time_ms = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(nbytes, bandwidth)
    profiler.record_d2h(nbytes, time_ms)
    return time_ms
