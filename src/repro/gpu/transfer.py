"""Explicit host<->device copy model (``cudaMemcpy`` analogue).

Used by the non-UM frameworks (CuSha, Gunrock, Tigr, and EtaGraph's
"w/o UM" ablation): the whole graph is staged over PCIe before the first
kernel, which is exactly the ``t_total - t_kernel`` gap Table III shows
for the baselines.

Both copy directions accept an optional
:class:`repro.resilience.faults.FaultInjector`; an injected
``transfer_fault`` raises :class:`~repro.errors.TransferError` *before*
any time or bytes are recorded, modelling a copy that failed in flight
and can be retried wholesale.
"""

from __future__ import annotations

from repro.gpu.device import DeviceSpec
from repro.gpu.profiler import Profiler


def h2d_copy(
    spec: DeviceSpec,
    profiler: Profiler,
    nbytes: float,
    *,
    pinned: bool = False,
    injector=None,
    tracer=None,
    label: str = "",
) -> float:
    """Host-to-device copy; returns elapsed ms and records it.

    Pageable host memory (the default) pays an extra staging pass through
    a pinned bounce buffer, modelled as a 50% bandwidth derate — typical
    for pageable vs pinned PCIe 3.0 throughput (~6 vs ~12 GB/s).

    ``tracer`` (a :class:`repro.observability.Tracer`, normally ``None``)
    gets one ``transfer`` event at its write cursor; the copy's own
    timing is computed identically with or without it.
    """
    if injector is not None:
        injector.on_transfer("h2d", nbytes)
    bandwidth = spec.pcie_bandwidth_gbps * (1.0 if pinned else 0.5)
    time_ms = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(nbytes, bandwidth)
    profiler.record_h2d(nbytes, time_ms)
    if tracer is not None:
        tracer.emit(label or "h2d", "transfer", time_ms, nbytes=float(nbytes))
    return time_ms


def d2h_copy(
    spec: DeviceSpec,
    profiler: Profiler,
    nbytes: float,
    *,
    pinned: bool = False,
    injector=None,
    tracer=None,
    label: str = "",
) -> float:
    """Device-to-host copy; returns elapsed ms and records it."""
    if injector is not None:
        injector.on_transfer("d2h", nbytes)
    bandwidth = spec.pcie_bandwidth_gbps * (1.0 if pinned else 0.5)
    time_ms = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(nbytes, bandwidth)
    profiler.record_d2h(nbytes, time_ms)
    if tracer is not None:
        tracer.emit(label or "d2h", "transfer", time_ms, nbytes=float(nbytes))
    return time_ms
