"""Explicit host<->device copy model (``cudaMemcpy`` analogue).

Used by the non-UM frameworks (CuSha, Gunrock, Tigr, and EtaGraph's
"w/o UM" ablation): the whole graph is staged over PCIe before the first
kernel, which is exactly the ``t_total - t_kernel`` gap Table III shows
for the baselines.

Both copy directions accept an optional
:class:`repro.resilience.faults.FaultInjector`; an injected
``transfer_fault`` raises :class:`~repro.errors.TransferError` *before*
any time or bytes are recorded, modelling a copy that failed in flight
and can be retried wholesale.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.profiler import Profiler

#: PCIe read granularity of EMOGI-style direct access: the GPU issues
#: cacheline-sized (128 B) bus reads against pinned host memory, so a
#: sparse traversal pays for exactly the sectors its frontier touches —
#: not the 4 KiB pages UM would migrate.
DIRECT_ACCESS_SECTOR_BYTES = 128

#: Bus efficiency of coalesced sector reads.  EMOGI's measured point is
#: that aligned, merged cacheline reads sustain near-peak PCIe
#: throughput — far above the fine-grained-read derate zero-copy pays
#: for streaming whole adjacency lists uncoalesced.
DIRECT_ACCESS_EFFICIENCY = 0.85


def h2d_copy(
    spec: DeviceSpec,
    profiler: Profiler,
    nbytes: float,
    *,
    pinned: bool = False,
    injector=None,
    tracer=None,
    label: str = "",
) -> float:
    """Host-to-device copy; returns elapsed ms and records it.

    Pageable host memory (the default) pays an extra staging pass through
    a pinned bounce buffer, modelled as a 50% bandwidth derate — typical
    for pageable vs pinned PCIe 3.0 throughput (~6 vs ~12 GB/s).

    ``tracer`` (a :class:`repro.observability.Tracer`, normally ``None``)
    gets one ``transfer`` event at its write cursor; the copy's own
    timing is computed identically with or without it.
    """
    if injector is not None:
        injector.on_transfer("h2d", nbytes)
    bandwidth = spec.pcie_bandwidth_gbps * (1.0 if pinned else 0.5)
    time_ms = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(nbytes, bandwidth)
    profiler.record_h2d(nbytes, time_ms)
    if tracer is not None:
        tracer.emit(label or "h2d", "transfer", time_ms, nbytes=float(nbytes))
    return time_ms


def d2h_copy(
    spec: DeviceSpec,
    profiler: Profiler,
    nbytes: float,
    *,
    pinned: bool = False,
    injector=None,
    tracer=None,
    label: str = "",
) -> float:
    """Device-to-host copy; returns elapsed ms and records it."""
    if injector is not None:
        injector.on_transfer("d2h", nbytes)
    bandwidth = spec.pcie_bandwidth_gbps * (1.0 if pinned else 0.5)
    time_ms = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(nbytes, bandwidth)
    profiler.record_d2h(nbytes, time_ms)
    if tracer is not None:
        tracer.emit(label or "d2h", "transfer", time_ms, nbytes=float(nbytes))
    return time_ms


def direct_access_sectors(
    start_bytes: np.ndarray, length_bytes: np.ndarray
) -> int:
    """Distinct 128-byte sectors covered by the given byte ranges.

    ``start_bytes`` should already include each array's base address so
    ranges on different arrays never alias in sector space.  Empty
    ranges cover no sectors.
    """
    start_bytes = np.asarray(start_bytes, dtype=np.int64)
    length_bytes = np.asarray(length_bytes, dtype=np.int64)
    live = length_bytes > 0
    if not live.any():
        return 0
    lo = start_bytes[live] // DIRECT_ACCESS_SECTOR_BYTES
    hi = (start_bytes[live] + length_bytes[live] - 1) \
        // DIRECT_ACCESS_SECTOR_BYTES
    # Union of the [lo, hi] sector intervals without materializing the
    # individual sector ids: sort by lo, then count each interval's
    # contribution past the running right edge.
    order = np.argsort(lo, kind="stable")
    lo, hi = lo[order], hi[order]
    reach = np.maximum.accumulate(hi)
    prev_reach = np.empty_like(reach)
    prev_reach[0] = lo[0] - 1
    prev_reach[1:] = reach[:-1]
    fresh = np.minimum(hi - lo + 1, hi - prev_reach)
    return int(np.clip(fresh, 0, None).sum())


def direct_access_read(
    spec: DeviceSpec,
    profiler: Profiler,
    start_bytes: np.ndarray,
    length_bytes: np.ndarray,
    *,
    injector=None,
    tracer=None,
    label: str = "direct-access",
) -> tuple[float, int]:
    """One iteration's EMOGI-style direct host reads over PCIe.

    Deduplicates the requested byte ranges to
    :data:`DIRECT_ACCESS_SECTOR_BYTES` sectors (the kernel's coalescer
    merges threads' reads into cacheline bus transactions; a sector read
    twice in one iteration is served once) and charges the sector bytes
    at near-peak pinned bandwidth.  Returns ``(time_ms, bytes_read)``.

    An injected ``direct_access_fault`` raises
    :class:`~repro.errors.TransferError` *before* any time or bytes are
    recorded — a failed bus read aborts the launch and is retryable
    wholesale, like an explicit copy.
    """
    n_sectors = direct_access_sectors(start_bytes, length_bytes)
    nbytes = n_sectors * DIRECT_ACCESS_SECTOR_BYTES
    if injector is not None:
        injector.on_direct_access(nbytes)
    if n_sectors == 0:
        return 0.0, 0
    bandwidth = spec.pcie_bandwidth_gbps * DIRECT_ACCESS_EFFICIENCY
    time_ms = spec.pcie_latency_us * 1e-3 + spec.bytes_time_ms(
        nbytes, bandwidth
    )
    profiler.record_h2d(nbytes, time_ms)
    if tracer is not None:
        tracer.emit(label, "transfer", time_ms, nbytes=float(nbytes),
                    sectors=float(n_sectors))
    return time_ms, nbytes
