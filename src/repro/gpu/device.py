"""Device specification and cost-model constants.

One place holds every calibration constant of the simulator (DESIGN.md
section 6).  The preset mirrors the paper's evaluation hardware: an NVIDIA
GTX 1080 Ti attached over PCIe 3.0 x16 to a dual-socket Xeon host.  These
constants are set once, globally — never tuned per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.units import GIB, KIB, MIB


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU and its cost model."""

    name: str

    # --- execution resources -----------------------------------------
    num_sms: int = 28
    cores_per_sm: int = 128
    warp_size: int = 32
    clock_ghz: float = 1.48
    max_warps_per_sm: int = 64
    max_threads_per_block: int = 1024

    # --- memory hierarchy ---------------------------------------------
    memory_capacity: int = 11 * GIB
    sector_bytes: int = 32
    unified_cache_bytes: int = 48 * KIB  # per SM (L1 + texture, Pascal)
    l2_cache_bytes: int = 2816 * KIB
    shared_mem_bytes_per_sm: int = 96 * KIB
    dram_bandwidth_gbps: float = 484.0
    l2_bandwidth_gbps: float = 1300.0
    unified_cache_bandwidth_gbps: float = 3500.0
    dram_latency_cycles: int = 400
    l2_latency_cycles: int = 200
    unified_cache_latency_cycles: int = 30
    shared_mem_latency_cycles: int = 25

    # --- host link / unified memory ------------------------------------
    pcie_bandwidth_gbps: float = 12.0
    pcie_latency_us: float = 8.0
    page_bytes: int = 4 * KIB
    #: Per-migration driver overhead.  Calibrated from the paper's Table V:
    #: on-demand UM moves ~44 KiB chunks at a mildly degraded effective
    #: throughput vs prefetch, implying a few microseconds per fault batch.
    um_fault_latency_us: float = 5.0
    #: Per-4KiB-page handling cost on the on-demand path (unmap, TLB
    #: shootdown, page-table update).  This is what makes the ~44 KiB
    #: fault-merged migrations of Table V slower per byte than the 2 MiB
    #: prefetch chunks, and hence UMP profitable on full traversals.
    um_page_handling_us: float = 0.4
    um_max_migration_bytes: int = 1 * MIB
    um_prefetch_chunk_bytes: int = 2 * MIB
    #: One-time cost of creating/registering a managed allocation
    #: (``cudaMallocManaged`` page-table setup) — why tiny graphs don't
    #: benefit from UM (the paper's Slashdot case).
    um_alloc_overhead_us: float = 40.0

    # --- kernel cost model ----------------------------------------------
    kernel_launch_us: float = 6.0
    #: Warps an SM can interleave to hide memory latency; stalls are
    #: divided by min(resident warps, this).
    latency_hiding_warps: int = 12
    #: Memory-level parallelism of the unrolled SMP load burst vs the
    #: one-load-per-loop-iteration baseline.
    smp_mlp: float = 3.2
    base_mlp: float = 1.6
    #: Cache-window contention divisor: concurrent warps thrash the
    #: caches, shrinking the effective reuse window (Section V-A).
    cache_contention: float = 48.0

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / self.clock_hz * 1e3

    def ms_to_cycles(self, ms: float) -> float:
        return ms * 1e-3 * self.clock_hz

    def bytes_time_ms(self, nbytes: float, bandwidth_gbps: float) -> float:
        """Time to move ``nbytes`` at ``bandwidth_gbps`` (decimal GB/s)."""
        return nbytes / (bandwidth_gbps * 1e9) * 1e3

    def dram_time_ms(self, nbytes: float) -> float:
        return self.bytes_time_ms(nbytes, self.dram_bandwidth_gbps)

    def l2_time_ms(self, nbytes: float) -> float:
        return self.bytes_time_ms(nbytes, self.l2_bandwidth_gbps)

    def pcie_time_ms(self, nbytes: float) -> float:
        return self.pcie_latency_us * 1e-3 + self.bytes_time_ms(
            nbytes, self.pcie_bandwidth_gbps
        )

    def with_capacity(self, capacity_bytes: int) -> "DeviceSpec":
        """The same device with a different memory capacity.

        The benchmark harness scales capacity by the dataset scale factor
        so footprint/capacity ratios — and hence the O.O.M pattern of
        Table III — match the paper's full-size setup.
        """
        return replace(self, memory_capacity=int(capacity_bytes))

    @property
    def total_unified_cache_bytes(self) -> int:
        return self.unified_cache_bytes * self.num_sms


#: The paper's evaluation GPU.
GTX_1080TI = DeviceSpec(name="GTX 1080 Ti")

#: Tesla V100 (the "high-end computing card" of the paper's introduction:
#: 16 GB HBM2, more SMs, ~900 GB/s) — for capacity-sensitivity studies.
TESLA_V100 = DeviceSpec(
    name="Tesla V100",
    num_sms=80,
    cores_per_sm=64,
    clock_ghz=1.53,
    memory_capacity=16 * GIB,
    l2_cache_bytes=6 * MIB,
    shared_mem_bytes_per_sm=96 * KIB,
    dram_bandwidth_gbps=900.0,
    l2_bandwidth_gbps=2500.0,
)

#: An older Kepler-class card (K40-like): no UM page faulting in hardware,
#: smaller caches — useful for showing where the paper's techniques need
#: Pascal+ features.
TESLA_K40 = DeviceSpec(
    name="Tesla K40",
    num_sms=15,
    cores_per_sm=192,
    clock_ghz=0.745,
    memory_capacity=12 * GIB,
    l2_cache_bytes=1536 * KIB,
    unified_cache_bytes=48 * KIB,
    shared_mem_bytes_per_sm=48 * KIB,
    dram_bandwidth_gbps=288.0,
    l2_bandwidth_gbps=800.0,
)
