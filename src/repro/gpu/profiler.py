"""nvprof-style counter collection.

The paper's Fig. 7 reports, for BFS on LiveJournal with and without SMP:
IPC, Unified-Cache hit rate, L2 hit rate, read throughput at L2 / unified
cache / DRAM, and global-memory read transactions.  Every one of those is
a counter or a derived ratio collected here; kernels update the counters
through :meth:`Profiler.record_kernel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _ratio(numerator: float, denominator: float) -> float:
    """A derived ratio that is 0.0 — never NaN/inf — when the kernel did
    no work (zero or non-finite denominator)."""
    if denominator <= 0 or not math.isfinite(denominator):
        return 0.0
    value = numerator / denominator
    return value if math.isfinite(value) else 0.0


@dataclass
class KernelCounters:
    """Raw event counts for one kernel launch (or an accumulation)."""

    launches: int = 0
    threads: int = 0
    warps: int = 0
    #: Total instructions issued across all threads.
    instructions: float = 0.0
    #: Elapsed SM cycles of the kernel (per-SM clock; max across SMs).
    cycles: float = 0.0
    elapsed_ms: float = 0.0

    # Memory system -----------------------------------------------------
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    unified_cache_accesses: int = 0
    unified_cache_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    shared_load_bytes: float = 0.0

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate ``other`` into this counter set (cycle counts add —
        kernels in one stream execute back-to-back).

        Non-finite contributions are dropped rather than added: one NaN
        sample must not poison a whole accumulation (and with it every
        derived ratio) for the rest of a session.
        """
        for f in self.__dataclass_fields__:
            value = getattr(other, f)
            if isinstance(value, float) and not math.isfinite(value):
                continue
            setattr(self, f, getattr(self, f) + value)

    # Derived metrics (the Fig. 7 bars) ---------------------------------
    #
    # Every ratio degrades to 0.0 — never NaN, inf or a ZeroDivisionError
    # — when the counter set saw no work (zero launches, zero accesses, a
    # zero-duration kernel).  Empty accumulations are routine: a query
    # that memo-hits every frontier launches nothing, and the metrics
    # registry lifts these values verbatim.

    @property
    def ipc(self) -> float:
        """Instructions per cycle per SM-equivalent (nvprof ``ipc``)."""
        return _ratio(self.instructions, self.cycles)

    @property
    def unified_hit_rate(self) -> float:
        return _ratio(self.unified_cache_hits, self.unified_cache_accesses)

    @property
    def l2_hit_rate(self) -> float:
        return _ratio(self.l2_hits, self.l2_accesses)

    def _throughput(self, nbytes: float) -> float:
        return _ratio(nbytes, self.elapsed_ms * 1e-3) / 1e9  # GB/s

    @property
    def dram_read_throughput_gbps(self) -> float:
        return self._throughput(self.dram_read_bytes)

    @property
    def l2_read_throughput_gbps(self) -> float:
        sector = 32
        return self._throughput(self.l2_accesses * sector)

    @property
    def unified_read_throughput_gbps(self) -> float:
        sector = 32
        return self._throughput(self.unified_cache_accesses * sector)

    # Structured views (consumed by repro.observability.metrics) --------

    def as_dict(self) -> dict[str, float]:
        """Raw counter fields, in declaration order."""
        return {f: getattr(self, f) for f in self.__dataclass_fields__}

    def derived_dict(self) -> dict[str, float]:
        """The derived ratios/throughputs, each 0.0 on an empty set."""
        return {
            "ipc": self.ipc,
            "unified_hit_rate": self.unified_hit_rate,
            "l2_hit_rate": self.l2_hit_rate,
            "dram_read_throughput_gbps": self.dram_read_throughput_gbps,
            "l2_read_throughput_gbps": self.l2_read_throughput_gbps,
            "unified_read_throughput_gbps": self.unified_read_throughput_gbps,
        }


@dataclass
class Profiler:
    """Accumulates kernel counters and transfer/migration statistics."""

    kernels: KernelCounters = field(default_factory=KernelCounters)
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    h2d_time_ms: float = 0.0
    d2h_time_ms: float = 0.0
    #: Sizes (bytes) of individual UM migrations — Table V's data.
    migration_sizes: list[int] = field(default_factory=list)
    migration_time_ms: float = 0.0

    def record_kernel(self, counters: KernelCounters) -> None:
        self.kernels.merge(counters)

    def record_h2d(self, nbytes: float, time_ms: float) -> None:
        self.h2d_bytes += nbytes
        self.h2d_time_ms += time_ms

    def record_d2h(self, nbytes: float, time_ms: float) -> None:
        self.d2h_bytes += nbytes
        self.d2h_time_ms += time_ms

    def record_migration(self, nbytes: int, time_ms: float) -> None:
        self.migration_sizes.append(int(nbytes))
        self.migration_time_ms += time_ms

    # Table V summary ----------------------------------------------------

    def migration_size_stats(self) -> tuple[float, int, int]:
        """(average, min, max) migrated-chunk size in bytes; zeros if none."""
        if not self.migration_sizes:
            return (0.0, 0, 0)
        sizes = self.migration_sizes
        return (sum(sizes) / len(sizes), min(sizes), max(sizes))

    def snapshot(self) -> KernelCounters:
        """Copy of the accumulated kernel counters (for before/after diffs)."""
        out = KernelCounters()
        out.merge(self.kernels)
        return out
