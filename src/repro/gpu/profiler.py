"""nvprof-style counter collection.

The paper's Fig. 7 reports, for BFS on LiveJournal with and without SMP:
IPC, Unified-Cache hit rate, L2 hit rate, read throughput at L2 / unified
cache / DRAM, and global-memory read transactions.  Every one of those is
a counter or a derived ratio collected here; kernels update the counters
through :meth:`Profiler.record_kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelCounters:
    """Raw event counts for one kernel launch (or an accumulation)."""

    launches: int = 0
    threads: int = 0
    warps: int = 0
    #: Total instructions issued across all threads.
    instructions: float = 0.0
    #: Elapsed SM cycles of the kernel (per-SM clock; max across SMs).
    cycles: float = 0.0
    elapsed_ms: float = 0.0

    # Memory system -----------------------------------------------------
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    unified_cache_accesses: int = 0
    unified_cache_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    shared_load_bytes: float = 0.0

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate ``other`` into this counter set (cycle counts add —
        kernels in one stream execute back-to-back)."""
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))

    # Derived metrics (the Fig. 7 bars) ---------------------------------

    @property
    def ipc(self) -> float:
        """Instructions per cycle per SM-equivalent (nvprof ``ipc``)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def unified_hit_rate(self) -> float:
        if self.unified_cache_accesses == 0:
            return 0.0
        return self.unified_cache_hits / self.unified_cache_accesses

    @property
    def l2_hit_rate(self) -> float:
        if self.l2_accesses == 0:
            return 0.0
        return self.l2_hits / self.l2_accesses

    def _throughput(self, nbytes: float) -> float:
        if self.elapsed_ms <= 0:
            return 0.0
        return nbytes / (self.elapsed_ms * 1e-3) / 1e9  # GB/s

    @property
    def dram_read_throughput_gbps(self) -> float:
        return self._throughput(self.dram_read_bytes)

    @property
    def l2_read_throughput_gbps(self) -> float:
        sector = 32
        return self._throughput(self.l2_accesses * sector)

    @property
    def unified_read_throughput_gbps(self) -> float:
        sector = 32
        return self._throughput(self.unified_cache_accesses * sector)


@dataclass
class Profiler:
    """Accumulates kernel counters and transfer/migration statistics."""

    kernels: KernelCounters = field(default_factory=KernelCounters)
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    h2d_time_ms: float = 0.0
    d2h_time_ms: float = 0.0
    #: Sizes (bytes) of individual UM migrations — Table V's data.
    migration_sizes: list[int] = field(default_factory=list)
    migration_time_ms: float = 0.0

    def record_kernel(self, counters: KernelCounters) -> None:
        self.kernels.merge(counters)

    def record_h2d(self, nbytes: float, time_ms: float) -> None:
        self.h2d_bytes += nbytes
        self.h2d_time_ms += time_ms

    def record_d2h(self, nbytes: float, time_ms: float) -> None:
        self.d2h_bytes += nbytes
        self.d2h_time_ms += time_ms

    def record_migration(self, nbytes: int, time_ms: float) -> None:
        self.migration_sizes.append(int(nbytes))
        self.migration_time_ms += time_ms

    # Table V summary ----------------------------------------------------

    def migration_size_stats(self) -> tuple[float, int, int]:
        """(average, min, max) migrated-chunk size in bytes; zeros if none."""
        if not self.migration_sizes:
            return (0.0, 0, 0)
        sizes = self.migration_sizes
        return (sum(sizes) / len(sizes), min(sizes), max(sizes))

    def snapshot(self) -> KernelCounters:
        """Copy of the accumulated kernel counters (for before/after diffs)."""
        out = KernelCounters()
        out.merge(self.kernels)
        return out
