"""Simulated GPU execution model.

This package stands in for the paper's GTX 1080 Ti + CUDA runtime.  It is
an *execution-model* simulator, not a cycle-accurate one: it counts the
events that determine graph-traversal performance (warp lockstep work,
coalesced memory transactions, cache hits, DRAM/PCIe bytes, unified-memory
page migrations) and converts them to time with a roofline-style cost
model.  Every counter `nvprof` reports in the paper's Fig. 7 is collected
by :mod:`repro.gpu.profiler`.
"""

from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.memory import DeviceMemory, DeviceArray
from repro.gpu.profiler import Profiler, KernelCounters
from repro.gpu.cache import ReuseWindowCache, ExactLRUCache, CacheHierarchy
from repro.gpu.um import UnifiedMemoryManager
from repro.gpu.timeline import Timeline

__all__ = [
    "DeviceSpec",
    "GTX_1080TI",
    "DeviceMemory",
    "DeviceArray",
    "Profiler",
    "KernelCounters",
    "ReuseWindowCache",
    "ExactLRUCache",
    "CacheHierarchy",
    "UnifiedMemoryManager",
    "Timeline",
]
