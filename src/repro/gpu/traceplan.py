"""Fused per-launch trace pipeline for the vertex kernel.

Before this module, :func:`repro.gpu.kernel.simulate_vertex_kernel`
built its memory-access streams piecemeal: the ragged edge expansion
(``ragged_arange`` + ``np.repeat`` + strided group keys) was computed
once for the adjacency stream and *again* for the label stream, and
every stream ran its own sorted dedup inside
:func:`repro.gpu.coalescing.coalesce` — three to four sorts per launch.

:class:`TracePlan` computes each ingredient exactly once:

* one edge expansion (loop steps, per-edge thread ids, strided group
  keys, flat CSR edge indices) shared by the adjacency, weight and
  label streams;
* one packed ``(group, sector)`` key array per stream, produced by the
  packing stage of the coalescing model;
* **at most one sort** over the concatenation of all packed keys.  Each
  stream's group keys are lifted by a per-stream offset one past the
  previous stream's maximum, so a single ascending sort + dedup of the
  combined array reproduces, segment by segment, exactly the
  concatenation of the per-stream ``coalesce`` results.  If the lifted
  group keys would overflow the packed 64-bit layout the plan falls
  back to per-stream dedup — bit-identical either way.

Warp sampling (the ``TRACE_CAP`` bound) happens inside the plan, so a
plan fully describes the traced launch.  Plans are immutable and safe
to reuse: :class:`repro.core.session.EngineSession` memoizes them per
frontier so repeated queries skip the whole pipeline (the cache models
still *consume* the stream every launch — they are stateful).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidLaunchError
from repro.gpu import coalescing
from repro.gpu.coalescing import (
    _SECTOR_BITS,
    max_group_key,
    packed_to_sectors,
    run_packed_keys,
    scatter_packed_keys,
)
from repro.utils.ragged import ragged_arange
from repro.utils.sorting import sorted_unique

#: Maximum traced edge accesses per launch before warp sampling kicks in.
TRACE_CAP = 400_000

#: Group keys must stay below this after per-stream lifting, or the
#: packed (group, sector) key no longer fits in a non-negative int64.
_MAX_GROUP = 1 << (63 - _SECTOR_BITS)


def fuse_packed_streams(segments: list[np.ndarray]) -> np.ndarray:
    """Dedup + order every stream's packed keys with one sort.

    Equivalent to ``concatenate([packed_to_sectors(sorted_unique(s))
    for s in segments])``: stream ``i``'s group keys are lifted by one
    past stream ``i-1``'s maximum, making the combined keys
    segment-major, so one ascending sort + run-length dedup yields each
    segment's sorted unique transactions in segment order.
    """
    segments = [s for s in segments if len(s)]
    if not segments:
        return np.empty(0, dtype=np.int64)
    if len(segments) == 1:
        return packed_to_sectors(sorted_unique(segments[0]))

    offset = 0
    lifted = []
    for seg in segments:
        lifted.append(seg + (offset << _SECTOR_BITS) if offset else seg)
        offset += max_group_key(seg) + 1
    if offset >= _MAX_GROUP:
        # Lifting would overflow the packed layout: dedup per stream.
        return np.concatenate(
            [packed_to_sectors(sorted_unique(s)) for s in segments]
        )
    fused = np.concatenate(lifted)
    fused.sort()
    keep = np.empty(len(fused), dtype=bool)
    keep[0] = True
    np.not_equal(fused[1:], fused[:-1], out=keep[1:])
    return packed_to_sectors(fused[keep])


@dataclass(frozen=True)
class TracePlan:
    """The precomputed memory trace of one vertex-kernel launch.

    ``stream`` is the coalesced sector stream fed to the cache
    hierarchy; ``degrees``/``n_threads``/``sampled_edges`` describe the
    (possibly warp-sampled) traced subset the instruction model runs
    over; ``scale`` rescales traced counts back to the full launch;
    ``threads_full``/``warps_full`` are the *exact* launched thread and
    warp counts (sampling never distorts them).
    """

    stream: np.ndarray
    scale: float
    degrees: np.ndarray
    n_threads: int
    sampled_edges: int
    total_edges: int
    threads_full: int
    warps_full: int
    fingerprint: tuple

    def check_compatible(self, fingerprint: tuple) -> None:
        """Reject reuse against a launch the plan was not built for."""
        if fingerprint != self.fingerprint:
            raise InvalidLaunchError(
                "TracePlan does not match this launch: "
                f"plan {self.fingerprint} vs launch {fingerprint}"
            )

    @property
    def nbytes(self) -> int:
        """Approximate retained memory (for memo budgeting)."""
        return self.stream.nbytes + self.degrees.nbytes


def plan_fingerprint(
    spec,
    *,
    n_threads: int,
    total_edges: int,
    adj_array,
    label_array,
    weight_array=None,
    meta_array=None,
    meta_words_per_thread: int = 0,
    smp: bool = False,
    idle_threads: int = 0,
) -> tuple:
    """Cheap launch identity: shapes and array placements, not contents.

    Two launches with equal fingerprints *and* equal input arrays
    produce identical plans; callers passing a cached plan are
    responsible for content equality (the session keys its memo by a
    content hash of the active set, which determines every array here).
    """
    return (
        n_threads,
        total_edges,
        adj_array.base_address,
        adj_array.itemsize,
        label_array.base_address,
        label_array.itemsize,
        weight_array.base_address if weight_array is not None else -1,
        meta_array.base_address if meta_array is not None else -1,
        meta_words_per_thread,
        bool(smp),
        idle_threads,
        spec.warp_size,
        spec.sector_bytes,
    )


def build_vertex_trace(
    spec,
    *,
    starts: np.ndarray,
    degrees: np.ndarray,
    adj_array,
    neighbor_ids: np.ndarray,
    label_array,
    weight_array=None,
    meta_array=None,
    meta_words_per_thread: int = 0,
    smp: bool = False,
    smp_planned_words: np.ndarray | None = None,
    idle_threads: int = 0,
    trace_cap: int | None = None,
) -> TracePlan:
    """Build the fused trace of one vertex-kernel launch.

    Inputs mirror :func:`repro.gpu.kernel.simulate_vertex_kernel`
    (which calls this when no plan is supplied); ``trace_cap`` bounds
    the traced edge count before warp sampling engages.
    """
    starts = np.asarray(starts, dtype=np.int64)
    degrees = np.asarray(degrees, dtype=np.int64)
    if trace_cap is None:
        trace_cap = TRACE_CAP
    warp_size = spec.warp_size
    n_threads_full = len(starts)
    total_edges = int(degrees.sum())
    fingerprint = plan_fingerprint(
        spec,
        n_threads=n_threads_full,
        total_edges=total_edges,
        adj_array=adj_array,
        label_array=label_array,
        weight_array=weight_array,
        meta_array=meta_array,
        meta_words_per_thread=meta_words_per_thread,
        smp=smp,
        idle_threads=idle_threads,
    )
    n_threads = n_threads_full
    warps_full = -(-max(n_threads_full, 1) // warp_size)

    # ------------------------------------------------------------------
    # Warp sampling for very large launches: whole warps are kept at a
    # fixed stride and the traced counts rescaled.
    # ------------------------------------------------------------------
    scale = 1.0
    if total_edges > trace_cap and n_threads > warp_size:
        stride = max(1, int(np.ceil(total_edges / trace_cap)))
        thread_ids = np.arange(n_threads)
        keep = (thread_ids // warp_size) % stride == 0
        kept_edges = int(degrees[keep].sum())
        if kept_edges > 0:
            edge_keep = np.repeat(keep, degrees)
            starts, degrees = starts[keep], degrees[keep]
            neighbor_ids = np.asarray(neighbor_ids)[edge_keep]
            if smp_planned_words is not None:
                smp_planned_words = np.asarray(smp_planned_words)[keep]
            scale = total_edges / kept_edges
            n_threads = len(starts)

    sampled_edges = int(degrees.sum())
    thread_ids = np.arange(n_threads, dtype=np.int64)

    # ------------------------------------------------------------------
    # Packed (group, sector) keys, one segment per access stream, in
    # the kernel's issue order: metadata, adjacency (+weights), labels,
    # idle-thread flag checks.
    # ------------------------------------------------------------------
    segments: list[np.ndarray] = []
    sector_bytes = spec.sector_bytes

    if meta_array is not None and meta_words_per_thread > 0 and n_threads:
        meta_item = meta_words_per_thread * meta_array.itemsize
        segments.append(run_packed_keys(
            meta_array.base_address + thread_ids * meta_item,
            np.full(n_threads, meta_item, dtype=np.int64),
            coalescing.burst_group_keys(thread_ids),
            sector_bytes,
        ))

    strided_keys = None
    if sampled_edges:
        # The single edge expansion every scattered stream shares.
        steps = ragged_arange(degrees)
        edge_thread = np.repeat(thread_ids, degrees)
        strided_keys = coalescing.strided_group_keys(
            edge_thread, steps, warp_size
        )

        itemsize = adj_array.itemsize
        if smp:
            # Unrolled burst: the whole warp's prefetch loads coalesce.
            # The burst length is the *planned* K / K-1 bin size, which
            # may over-fetch beyond the actual slice (Section V-B).
            burst_words = (
                np.asarray(smp_planned_words, dtype=np.int64)
                if smp_planned_words is not None
                else degrees
            )
            burst_keys = coalescing.burst_group_keys(thread_ids)
            adj_addresses = adj_array.addresses_of(starts)
            segments.append(run_packed_keys(
                adj_addresses, burst_words * itemsize, burst_keys,
                sector_bytes,
            ))
            if weight_array is not None:
                segments.append(run_packed_keys(
                    weight_array.addresses_of(starts),
                    burst_words * weight_array.itemsize,
                    burst_keys,
                    sector_bytes,
                ))
        else:
            # One scattered warp access per loop step.
            edge_idx = np.repeat(starts, degrees) + steps
            segments.append(scatter_packed_keys(
                adj_array.addresses_of(edge_idx), strided_keys, sector_bytes
            ))
            if weight_array is not None:
                segments.append(scatter_packed_keys(
                    weight_array.addresses_of(edge_idx), strided_keys,
                    sector_bytes,
                ))

        # Label gathers: scattered by destination id; one per step in
        # both modes (SMP prefetches topology, not labels).
        segments.append(scatter_packed_keys(
            label_array.addresses_of(np.asarray(neighbor_ids, dtype=np.int64)),
            strided_keys,
            sector_bytes,
        ))

    if idle_threads:
        idle_ids = np.arange(idle_threads, dtype=np.int64)
        segments.append(run_packed_keys(
            label_array.base_address + idle_ids * 4,
            np.full(idle_threads, 4, dtype=np.int64),
            coalescing.burst_group_keys(idle_ids) + (1 << 20),
            sector_bytes,
        ))

    return TracePlan(
        stream=fuse_packed_streams(segments),
        scale=scale,
        degrees=degrees,
        n_threads=n_threads,
        sampled_edges=sampled_edges,
        total_edges=total_edges,
        threads_full=n_threads_full,
        warps_full=warps_full,
        fingerprint=fingerprint,
    )
