"""Kernel cost model: traversal kernels on the simulated GPU.

:func:`simulate_vertex_kernel` models one launch of a vertex-centric
traversal kernel (one thread per work item, each scanning <= its item's
degree of adjacency).  It is parametrized enough to express every engine
in this repo:

* EtaGraph's shadow-vertex kernel (``smp`` on/off, bounded degrees),
* Tigr's virtual-node kernel (``idle_threads`` for inactive flag checks),
* Gunrock's advance (``balanced_issue`` for merge-based load balancing),
* the naive vertex-centric baseline (unbounded degrees, lockstep max).

:func:`simulate_streaming_kernel` models CuSha-style edge-centric passes
whose reads are coalesced sequential streams.

Cost model (DESIGN.md section 5): per-warp issue cycles follow SIMT
lockstep (max over lanes); memory transactions come from the coalescing
model and are filtered through the cache hierarchy; stall cycles are
transactions x miss latency, divided by memory-level parallelism and
latency-hiding warps; kernel time is a roofline over compute, L2 and DRAM
bandwidth plus a fixed launch overhead.

Large launches are *warp-sampled*: whole warps are traced exactly and the
resulting counts rescaled, preserving intra-warp coalescing statistics at
bounded simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidLaunchError
from repro.gpu import coalescing, sharedmem, warp as warpmod
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import DeviceArray
from repro.gpu.profiler import KernelCounters
from repro.gpu.traceplan import (
    TRACE_CAP,
    TracePlan,
    build_vertex_trace,
    plan_fingerprint,
)


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown of one simulated kernel launch."""

    time_ms: float
    compute_ms: float
    dram_ms: float
    l2_ms: float
    launch_ms: float
    counters: KernelCounters

    @property
    def bound_by(self) -> str:
        best = max(
            ("compute", self.compute_ms),
            ("dram", self.dram_ms),
            ("l2", self.l2_ms),
            key=lambda kv: kv[1],
        )
        return best[0]


def _finalize(
    spec: DeviceSpec,
    *,
    threads: int,
    warps: int,
    instructions: float,
    sm_cycles_max: float,
    hier_result,
    extra_dram_write_bytes: float,
    load_transactions: float,
    store_transactions: float,
    shared_load_bytes: float = 0.0,
) -> KernelTiming:
    """Roofline combination + counter assembly shared by all kernels."""
    compute_ms = spec.cycles_to_ms(sm_cycles_max)
    dram_bytes = hier_result.dram_bytes + extra_dram_write_bytes
    dram_ms = spec.dram_time_ms(dram_bytes)
    l2_ms = spec.l2_time_ms(hier_result.l2_accesses * spec.sector_bytes)
    launch_ms = spec.kernel_launch_us * 1e-3
    time_ms = launch_ms + max(compute_ms, dram_ms, l2_ms)

    counters = KernelCounters(
        launches=1,
        threads=int(threads),
        warps=int(warps),
        instructions=float(instructions),
        cycles=spec.ms_to_cycles(time_ms),
        elapsed_ms=time_ms,
        global_load_transactions=int(load_transactions),
        global_store_transactions=int(store_transactions),
        unified_cache_accesses=int(hier_result.accesses),
        unified_cache_hits=int(hier_result.unified_hits),
        l2_accesses=int(hier_result.l2_accesses),
        l2_hits=int(hier_result.l2_hits),
        dram_read_bytes=float(hier_result.dram_bytes),
        dram_write_bytes=float(extra_dram_write_bytes),
        shared_load_bytes=float(shared_load_bytes),
    )
    return KernelTiming(
        time_ms=time_ms,
        compute_ms=compute_ms,
        dram_ms=dram_ms,
        l2_ms=l2_ms,
        launch_ms=launch_ms,
        counters=counters,
    )


@dataclass
class _ScaledHierarchyResult:
    accesses: float
    unified_hits: float
    l2_accesses: float
    l2_hits: float
    dram_transactions: float

    @property
    def dram_bytes(self) -> float:
        return self.dram_transactions * 32


def simulate_vertex_kernel(
    spec: DeviceSpec,
    caches: CacheHierarchy,
    *,
    starts: np.ndarray,
    degrees: np.ndarray,
    adj_array: DeviceArray,
    neighbor_ids: np.ndarray,
    label_array: DeviceArray,
    weight_array: DeviceArray | None = None,
    meta_array: DeviceArray | None = None,
    meta_words_per_thread: int = 0,
    smp: bool = False,
    smp_planned_words: np.ndarray | None = None,
    degree_limit: int | None = None,
    updates: int = 0,
    balanced_issue: bool = False,
    instr_base: float = 24.0,
    instr_per_edge: float = 8.0,
    idle_threads: int = 0,
    idle_instr: float = 6.0,
    threads_per_block: int = 256,
    plan: TracePlan | None = None,
    tracer=None,
    trace_name: str = "vertex_kernel",
) -> KernelTiming:
    """Simulate one vertex-centric traversal kernel launch.

    Parameters
    ----------
    starts, degrees:
        Per-thread first edge index into ``adj_array`` and edge count.
    neighbor_ids:
        Destination vertex ids of all scanned edges, concatenated in
        thread order (``len == degrees.sum()``); their label-array
        addresses form the scattered access stream.
    smp:
        Shared Memory Prefetch: adjacency (and weight) reads become
        per-lane contiguous unrolled bursts; processing reads then hit
        shared memory.  Requires ``degree_limit``.
    smp_planned_words:
        Per-thread burst length in words when it exceeds the actual
        degree (the K / K-1 bin over-fetch of Section V-B).  Defaults to
        the actual degrees.
    idle_threads:
        Additional launched threads that only perform an activity check
        and exit (Tigr's inactive virtual nodes).
    updates:
        Number of label updates performed (scattered stores + atomic
        frontier appends).
    plan:
        A :class:`TracePlan` previously built for *this exact launch*
        (same arrays, same shapes) by :func:`build_vertex_trace` —
        typically from the engine session's frontier memo.  When given,
        the whole trace pipeline (sampling, edge expansion, coalescing
        sort) is skipped; only the stateful cache walk and the
        instruction model run.  The plan's fingerprint is checked.
    tracer:
        A :class:`repro.observability.Tracer` (normally ``None``) that
        receives one ``compute`` event named ``trace_name`` at its write
        cursor; timing is computed identically with or without it.
    """
    starts = np.asarray(starts, dtype=np.int64)
    degrees = np.asarray(degrees, dtype=np.int64)
    if len(starts) != len(degrees):
        raise InvalidLaunchError("starts/degrees length mismatch")
    if smp and degree_limit is None:
        raise InvalidLaunchError("SMP requires a degree_limit")
    n_threads = len(starts)
    if n_threads == 0 and idle_threads == 0:
        raise InvalidLaunchError("empty kernel launch")
    total_edges = int(degrees.sum())
    if len(neighbor_ids) != total_edges:
        raise InvalidLaunchError(
            f"neighbor_ids has {len(neighbor_ids)} entries, expected {total_edges}"
        )
    warp_size = spec.warp_size

    # ------------------------------------------------------------------
    # Memory trace: warp sampling, edge expansion and coalescing all
    # happen inside the plan (built once here, or reused from a memo).
    # ------------------------------------------------------------------
    if plan is None:
        plan = build_vertex_trace(
            spec,
            starts=starts,
            degrees=degrees,
            adj_array=adj_array,
            neighbor_ids=neighbor_ids,
            label_array=label_array,
            weight_array=weight_array,
            meta_array=meta_array,
            meta_words_per_thread=meta_words_per_thread,
            smp=smp,
            smp_planned_words=smp_planned_words,
            idle_threads=idle_threads,
            trace_cap=TRACE_CAP,
        )
    else:
        plan.check_compatible(plan_fingerprint(
            spec,
            n_threads=n_threads,
            total_edges=total_edges,
            adj_array=adj_array,
            label_array=label_array,
            weight_array=weight_array,
            meta_array=meta_array,
            meta_words_per_thread=meta_words_per_thread,
            smp=smp,
            idle_threads=idle_threads,
        ))

    scale = plan.scale
    sampled_edges = plan.sampled_edges
    degrees = plan.degrees
    n_threads = plan.n_threads

    # The cache hierarchy is stateful across launches, so the stream is
    # replayed through it even when the plan itself was memoized.
    hier = caches.access(plan.stream)
    load_transactions = len(plan.stream) * scale
    hier_scaled = _ScaledHierarchyResult(
        accesses=hier.accesses * scale,
        unified_hits=hier.unified_hits * scale,
        l2_accesses=hier.l2_accesses * scale,
        l2_hits=hier.l2_hits * scale,
        dram_transactions=hier.dram_transactions * scale,
    )

    # ------------------------------------------------------------------
    # Instruction / cycle model
    # ------------------------------------------------------------------
    if smp:
        # Unrolling removes per-iteration loop overhead; prefetch adds a
        # shared-memory store per edge.
        eff_instr_per_edge = max(2.0, instr_per_edge - 3.0) + 1.0
    else:
        eff_instr_per_edge = instr_per_edge
    lane_instr = instr_base + degrees.astype(np.float64) * eff_instr_per_edge
    if n_threads:
        if balanced_issue:
            warp_issue = warpmod.per_warp_sum(lane_instr, warp_size) / warp_size \
                + instr_base
        else:
            warp_issue = warpmod.per_warp_max(lane_instr, warp_size)
        warp_edges = warpmod.per_warp_sum(degrees.astype(np.float64), warp_size)
    else:
        warp_issue = np.zeros(0)
        warp_edges = np.zeros(0)

    # Occupancy / latency hiding.
    shared_per_block = (
        sharedmem.smp_shared_bytes_per_block(threads_per_block, degree_limit)
        if smp
        else 0
    )
    occ = sharedmem.occupancy(spec, threads_per_block, shared_per_block)
    hiding = min(occ.warps_per_sm, spec.latency_hiding_warps)
    mlp = spec.smp_mlp if smp else spec.base_mlp

    if hier_scaled.accesses > 0:
        avg_latency = (
            hier_scaled.unified_hits * spec.unified_cache_latency_cycles
            + hier_scaled.l2_hits * spec.l2_latency_cycles
            + hier_scaled.dram_transactions * spec.dram_latency_cycles
        ) / hier_scaled.accesses
    else:
        avg_latency = 0.0
    total_stall = (hier_scaled.accesses / scale) * avg_latency / (mlp * hiding)
    if sampled_edges > 0:
        warp_stall = total_stall * warp_edges / sampled_edges
    else:
        warp_stall = np.full_like(warp_issue, total_stall / max(len(warp_issue), 1))

    warp_cycles = warp_issue + warp_stall
    sm_cycles = warpmod.assign_warps_to_sms(warp_cycles, spec.num_sms) * scale
    sm_cycles_max = float(sm_cycles.max()) if len(sm_cycles) else 0.0

    # Idle-thread analytic contribution, spread evenly over SMs.
    idle_cycles = 0.0
    if idle_threads:
        idle_warps = -(-idle_threads // warp_size)
        idle_cycles = idle_warps * idle_instr / spec.num_sms
        sm_cycles_max += idle_cycles

    instructions = (
        float(lane_instr.sum()) * scale + idle_threads * idle_instr
        + updates * 6.0  # atomicMin + frontier append
    )
    store_transactions = updates
    dram_write_bytes = updates * spec.sector_bytes
    shared_load_bytes = float(sampled_edges) * scale * 4.0 if smp else 0.0

    # Launched thread/warp counts are exact — warp sampling bounds the
    # *trace*, not the launch, so rescaling sampled counts by the
    # edge-based ``scale`` would misreport them whenever kept warps have
    # skewed degrees.  The plan keeps the pre-sampling counts.
    timing = _finalize(
        spec,
        threads=plan.threads_full + idle_threads,
        warps=plan.warps_full + (-(-idle_threads // warp_size)),
        instructions=instructions,
        sm_cycles_max=sm_cycles_max,
        hier_result=hier_scaled,
        extra_dram_write_bytes=dram_write_bytes,
        load_transactions=load_transactions,
        store_transactions=store_transactions,
        shared_load_bytes=shared_load_bytes,
    )
    if tracer is not None:
        tracer.emit(
            trace_name, "compute", timing.time_ms,
            threads=int(timing.counters.threads),
            edges=int(total_edges),
            smp=bool(smp),
        )
    return timing


def simulate_streaming_kernel(
    spec: DeviceSpec,
    caches: CacheHierarchy,
    *,
    read_bytes: float,
    write_bytes: float,
    n_threads: int,
    instr_per_thread: float = 12.0,
    scattered_read_words: int = 0,
    scatter_base_address: int = 0,
    scatter_indices: np.ndarray | None = None,
    threads_per_block: int = 256,
    tracer=None,
    trace_name: str = "streaming_kernel",
) -> KernelTiming:
    """Simulate an edge-centric streaming pass (CuSha shards, compaction).

    Sequential streams are perfectly coalesced: ``read_bytes / 32``
    transactions with no reuse (they are modelled as cold DRAM reads —
    streaming data is evicted long before any revisit).  An optional
    scattered-gather component (``scatter_indices`` into a value array)
    goes through the cache hierarchy like any other random stream.
    """
    if n_threads < 1:
        raise InvalidLaunchError("empty kernel launch")
    stream_transactions = int(np.ceil(read_bytes / spec.sector_bytes))

    scatter_trans = 0
    hier = None
    if scatter_indices is not None and len(scatter_indices):
        idx = np.asarray(scatter_indices, dtype=np.int64)
        cap = TRACE_CAP
        s_scale = 1.0
        if len(idx) > cap:
            stride = int(np.ceil(len(idx) / cap))
            idx = idx[::stride]
            s_scale = float(len(scatter_indices)) / len(idx)
        keys = np.arange(len(idx), dtype=np.int64) // spec.warp_size
        sectors = coalescing.coalesce(
            scatter_base_address + idx * 4, keys, spec.sector_bytes
        )
        raw = caches.access(sectors)
        scatter_trans = len(sectors) * s_scale
        hier = _ScaledHierarchyResult(
            accesses=raw.accesses * s_scale + stream_transactions,
            unified_hits=raw.unified_hits * s_scale,
            l2_accesses=raw.l2_accesses * s_scale + stream_transactions,
            l2_hits=raw.l2_hits * s_scale,
            dram_transactions=raw.dram_transactions * s_scale + stream_transactions,
        )
    if hier is None:
        hier = _ScaledHierarchyResult(
            accesses=stream_transactions,
            unified_hits=0,
            l2_accesses=stream_transactions,
            l2_hits=0,
            dram_transactions=stream_transactions,
        )

    warp_size = spec.warp_size
    n_warps = -(-n_threads // warp_size)
    occ = sharedmem.occupancy(spec, threads_per_block, 0)
    hiding = min(occ.warps_per_sm, spec.latency_hiding_warps)
    # Streaming reads prefetch well: high effective MLP.
    total_stall = (
        (stream_transactions + scatter_trans)
        * spec.dram_latency_cycles
        / (spec.smp_mlp * hiding)
    )
    issue_cycles = n_warps * instr_per_thread
    sm_cycles_max = (issue_cycles + total_stall) / spec.num_sms

    timing = _finalize(
        spec,
        threads=n_threads,
        warps=n_warps,
        instructions=n_threads * instr_per_thread,
        sm_cycles_max=sm_cycles_max,
        hier_result=hier,
        extra_dram_write_bytes=write_bytes,
        load_transactions=stream_transactions + scatter_trans,
        store_transactions=int(np.ceil(write_bytes / spec.sector_bytes)),
    )
    if tracer is not None:
        tracer.emit(trace_name, "compute", timing.time_ms,
                    threads=int(n_threads))
    return timing
