"""Shared-memory occupancy model.

SMP reserves ``K`` words of shared memory per thread (Section V-B: every
thread prefetches its shadow vertex's <= K neighbor ids).  Shared memory
per SM is finite, so large K reduces how many thread blocks — and hence
latency-hiding warps — an SM can keep resident.  This is the mechanism
that makes the degree limit K a real tuning knob rather than a free
parameter (the ``degree_cut_tuning`` example sweeps it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidLaunchError
from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Residency achievable for one kernel configuration on one SM."""

    blocks_per_sm: int
    warps_per_sm: int
    shared_bytes_per_block: int

    @property
    def limited_by_shared_memory(self) -> bool:
        return self.shared_bytes_per_block > 0 and self.blocks_per_sm < 32


def smp_shared_bytes_per_block(
    threads_per_block: int, degree_limit: int, word_bytes: int = 4
) -> int:
    """Shared memory an SMP kernel block reserves: K words per thread."""
    if threads_per_block < 1:
        raise InvalidLaunchError(f"threads_per_block={threads_per_block}")
    if degree_limit < 1:
        raise InvalidLaunchError(f"degree_limit={degree_limit}")
    return threads_per_block * degree_limit * word_bytes


def max_smp_block_threads(
    spec: DeviceSpec, degree_limit: int, word_bytes: int = 4
) -> int:
    """Largest whole-warp block size whose SMP buffers fit one SM.

    Returns 0 when even a single warp's K-word buffers exceed shared
    memory — the engine then falls back to the non-SMP kernel (very large
    K makes prefetch physically impossible, which is itself a finding the
    degree-cut tuning example demonstrates).
    """
    if degree_limit < 1:
        raise InvalidLaunchError(f"degree_limit={degree_limit}")
    max_threads = spec.shared_mem_bytes_per_sm // (degree_limit * word_bytes)
    max_threads = min(max_threads, spec.max_threads_per_block)
    return (max_threads // 32) * 32


def occupancy(
    spec: DeviceSpec,
    threads_per_block: int,
    shared_bytes_per_block: int = 0,
) -> OccupancyResult:
    """Resident blocks/warps per SM under warp and shared-memory limits."""
    if threads_per_block < 1 or threads_per_block > spec.max_threads_per_block:
        raise InvalidLaunchError(
            f"threads_per_block must be in [1, {spec.max_threads_per_block}], "
            f"got {threads_per_block}"
        )
    if shared_bytes_per_block > spec.shared_mem_bytes_per_sm:
        raise InvalidLaunchError(
            f"block needs {shared_bytes_per_block} B shared memory, SM has "
            f"{spec.shared_mem_bytes_per_sm} B"
        )
    warps_per_block = -(-threads_per_block // spec.warp_size)
    by_warps = spec.max_warps_per_sm // warps_per_block
    if shared_bytes_per_block > 0:
        by_shared = spec.shared_mem_bytes_per_sm // shared_bytes_per_block
    else:
        by_shared = by_warps
    blocks = max(1, min(by_warps, by_shared))
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=blocks * warps_per_block,
        shared_bytes_per_block=shared_bytes_per_block,
    )
