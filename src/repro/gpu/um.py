"""Unified Memory simulator: page faults, fault merging, prefetch, eviction.

Models the CUDA UM driver behaviour the paper measures:

* On-demand migration (EtaGraph **w/o UMP**): a kernel touching a
  non-resident page triggers a GPU page fault; the driver merges runs of
  *contiguous* faulting 4 KiB pages into one migration, capped at
  ``um_max_migration_bytes`` (1 MiB).  Table V's observed sizes — min
  4 KiB, average ~44 KiB, max just under 1 MiB — are exactly this policy's
  signature, and fall out of it here.
* ``cudaMemPrefetchAsync`` (EtaGraph with UMP): bulk migration in
  ``um_prefetch_chunk_bytes`` (2 MiB) chunks at full PCIe bandwidth, which
  is why Table V's with-UMP sizes cluster at 2048 KiB.
* Oversubscription (Pascal+): residency is capped at device capacity
  minus ``cudaMalloc``'d bytes; exceeding it evicts least-recently-touched
  pages (graph topology is read-only, so evictions are drops, not
  writebacks).  This is what lets EtaGraph process uk-2006.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import DeviceArray, DeviceMemory
from repro.gpu.profiler import Profiler


@dataclass
class _PageState:
    """Residency bookkeeping for one UM allocation."""

    array: DeviceArray
    resident: np.ndarray  # bool per page
    last_touch: np.ndarray  # int64 clock per page

    @property
    def num_pages(self) -> int:
        return len(self.resident)


@dataclass
class MigrationBatch:
    """Result of servicing one ``touch``/``prefetch`` call."""

    migrations: list[int] = field(default_factory=list)  # bytes each
    time_ms: float = 0.0
    evicted_pages: int = 0

    @property
    def bytes_moved(self) -> int:
        return sum(self.migrations)


class UnifiedMemoryManager:
    """Driver-side manager for all UM allocations of one device."""

    def __init__(self, spec: DeviceSpec, memory: DeviceMemory):
        self.spec = spec
        self.memory = memory
        self._states: dict[int, _PageState] = {}
        self._clock = 0
        self.total_resident_pages = 0
        #: Optional :class:`repro.resilience.faults.FaultInjector`
        #: consulted after every migration batch that moved bytes; it may
        #: stretch the batch (stall) or raise
        #: :class:`~repro.errors.MigrationStallError`.
        self.injector = None

    def _inject_stall(self, batch: MigrationBatch) -> MigrationBatch:
        if self.injector is not None and batch.bytes_moved:
            batch.time_ms += self.injector.on_um_migration(batch.bytes_moved)
        return batch

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, array: DeviceArray) -> None:
        if array.kind != "um":
            raise AllocationError(
                f"{array.name!r} is a {array.kind} allocation, not UM"
            )
        n_pages = max(1, -(-array.nbytes // self.spec.page_bytes))
        self._states[array.base_address] = _PageState(
            array=array,
            resident=np.zeros(n_pages, dtype=bool),
            last_touch=np.zeros(n_pages, dtype=np.int64),
        )

    def _state(self, array: DeviceArray) -> _PageState:
        try:
            return self._states[array.base_address]
        except KeyError:
            raise AllocationError(
                f"{array.name!r} is not registered with the UM manager"
            ) from None

    # ------------------------------------------------------------------
    # Residency budget / eviction
    # ------------------------------------------------------------------

    @property
    def resident_budget_pages(self) -> int:
        """How many UM pages may be resident alongside device allocations."""
        free = self.memory.capacity - self.memory.device_bytes_in_use
        return max(0, free // self.spec.page_bytes)

    def _evict_for(self, incoming_pages: int, batch: MigrationBatch) -> None:
        budget = self.resident_budget_pages
        overflow = self.total_resident_pages + incoming_pages - budget
        if overflow <= 0:
            return
        # Gather (last_touch, state, local_page) for all resident pages and
        # drop the least recently touched.  Rare path (oversubscription
        # only), so clarity beats speed here.
        candidates = []
        for state in self._states.values():
            local = np.flatnonzero(state.resident)
            if len(local):
                candidates.append(
                    (state.last_touch[local], np.full(len(local),
                     state.array.base_address, dtype=np.int64), local)
                )
        if not candidates:
            return
        touches = np.concatenate([c[0] for c in candidates])
        bases = np.concatenate([c[1] for c in candidates])
        pages = np.concatenate([c[2] for c in candidates])
        overflow = min(overflow, len(touches))
        victims = np.argpartition(touches, overflow - 1)[:overflow]
        for base in np.unique(bases[victims]):
            state = self._states[base]
            local = pages[victims[bases[victims] == base]]
            state.resident[local] = False
        self.total_resident_pages -= overflow
        batch.evicted_pages += int(overflow)
        # Topology data is read-only: eviction is a TLB shootdown + drop,
        # modelled as one fault-latency charge per eviction burst.
        batch.time_ms += self.spec.um_fault_latency_us * 1e-3

    def _admit(self, missing: np.ndarray, batch: MigrationBatch) -> np.ndarray:
        """Evict for an incoming burst and return the pages that remain
        resident once it completes.

        A burst larger than the whole residency budget thrashes: every
        page still crosses the bus, but the driver evicts the burst's own
        earliest pages to make room for its latest, so only the tail
        survives — residency never exceeds the budget.
        """
        self._evict_for(len(missing), batch)
        capacity = self.resident_budget_pages - self.total_resident_pages
        if capacity >= len(missing):
            return missing
        dropped = len(missing) - max(capacity, 0)
        batch.evicted_pages += int(dropped)
        # The within-burst thrash is one more eviction burst.
        batch.time_ms += self.spec.um_fault_latency_us * 1e-3
        return missing[dropped:]

    # ------------------------------------------------------------------
    # On-demand faulting (w/o UMP path)
    # ------------------------------------------------------------------

    def touch(
        self,
        array: DeviceArray,
        local_pages: np.ndarray,
        profiler: Profiler | None = None,
        tracer=None,
    ) -> MigrationBatch:
        """Fault in the given pages of ``array`` (kernel access path).

        ``local_pages`` are page indices relative to the allocation start.
        Returns the migrations performed; already-resident pages only get
        their LRU clock refreshed.  ``tracer`` (normally ``None``) gets
        one ``migration`` event per batch that actually moved or evicted
        pages; timings are identical with or without it.
        """
        state = self._state(array)
        batch = MigrationBatch()
        pages = np.unique(np.asarray(local_pages, dtype=np.int64))
        if len(pages) == 0:
            return batch
        if pages[0] < 0 or pages[-1] >= state.num_pages:
            raise AllocationError(
                f"page index out of range for {array.name!r}: "
                f"[{pages[0]}, {pages[-1]}] of {state.num_pages}"
            )
        self._clock += 1
        state.last_touch[pages] = self._clock

        missing = pages[~state.resident[pages]]
        if len(missing) == 0:
            return batch

        stay = self._admit(missing, batch)

        # Merge contiguous runs of faulting pages, capped at the driver's
        # maximum migration size — the Table V mechanism.
        max_pages = max(1, self.spec.um_max_migration_bytes // self.spec.page_bytes)
        breaks = np.flatnonzero(np.diff(missing) != 1) + 1
        for run in np.split(missing, breaks):
            for start in range(0, len(run), max_pages):
                chunk = run[start : start + max_pages]
                nbytes = len(chunk) * self.spec.page_bytes
                # Fault-path cost: per-batch fault latency, per-page
                # handling, then the DMA itself.
                time_ms = (
                    self.spec.um_fault_latency_us * 1e-3
                    + len(chunk) * self.spec.um_page_handling_us * 1e-3
                    + self.spec.bytes_time_ms(nbytes, self.spec.pcie_bandwidth_gbps)
                )
                batch.migrations.append(nbytes)
                batch.time_ms += time_ms
                if profiler is not None:
                    profiler.record_migration(nbytes, time_ms)
        state.resident[stay] = True
        self.total_resident_pages += len(stay)
        batch = self._inject_stall(batch)
        self._trace_batch(tracer, "um.touch", array, batch)
        return batch

    def touch_byte_ranges(
        self,
        array: DeviceArray,
        start_bytes: np.ndarray,
        length_bytes: np.ndarray,
        profiler: Profiler | None = None,
        tracer=None,
    ) -> MigrationBatch:
        """Fault in all pages overlapped by the given intra-array ranges."""
        start = np.asarray(start_bytes, dtype=np.int64)
        length = np.asarray(length_bytes, dtype=np.int64)
        nonzero = length > 0
        start, length = start[nonzero], length[nonzero]
        if len(start) == 0:
            return MigrationBatch()
        first = start // self.spec.page_bytes
        last = (start + length - 1) // self.spec.page_bytes
        counts = last - first + 1
        from repro.utils.ragged import ragged_arange

        pages = np.repeat(first, counts) + ragged_arange(counts)
        return self.touch(array, pages, profiler, tracer)

    # ------------------------------------------------------------------
    # Prefetch (UMP path)
    # ------------------------------------------------------------------

    def prefetch(
        self, array: DeviceArray, profiler: Profiler | None = None,
        tracer=None,
    ) -> MigrationBatch:
        """``cudaMemPrefetchAsync``: migrate all non-resident pages in
        2 MiB chunks at full PCIe bandwidth."""
        state = self._state(array)
        batch = MigrationBatch()
        # The whole array is being staged for use: refresh every page's
        # LRU clock, not just the missing ones — otherwise the resident
        # pages of a just-prefetched array look cold and are the first
        # evicted by the next fault burst.
        self._clock += 1
        state.last_touch[:] = self._clock
        missing = np.flatnonzero(~state.resident)
        if len(missing) == 0:
            return batch
        stay = self._admit(missing, batch)

        chunk_pages = max(1, self.spec.um_prefetch_chunk_bytes // self.spec.page_bytes)
        breaks = np.flatnonzero(np.diff(missing) != 1) + 1
        for run in np.split(missing, breaks):
            for start in range(0, len(run), chunk_pages):
                chunk = run[start : start + chunk_pages]
                nbytes = len(chunk) * self.spec.page_bytes
                # One enqueue latency per chunk, no per-page fault cost.
                time_ms = self.spec.pcie_latency_us * 1e-3 + \
                    self.spec.bytes_time_ms(nbytes, self.spec.pcie_bandwidth_gbps)
                batch.migrations.append(nbytes)
                batch.time_ms += time_ms
                if profiler is not None:
                    profiler.record_migration(nbytes, time_ms)
        state.resident[stay] = True
        self.total_resident_pages += len(stay)
        batch = self._inject_stall(batch)
        self._trace_batch(tracer, "um.prefetch", array, batch)
        return batch

    @staticmethod
    def _trace_batch(tracer, name: str, array: DeviceArray,
                     batch: MigrationBatch) -> None:
        if tracer is None or not (batch.bytes_moved or batch.evicted_pages):
            return
        tracer.emit(
            name, "migration", batch.time_ms,
            array=array.name,
            nbytes=float(batch.bytes_moved),
            migrations=len(batch.migrations),
            evicted_pages=batch.evicted_pages,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def resident_fraction(self, array: DeviceArray) -> float:
        state = self._state(array)
        return float(state.resident.mean())

    def resident_bytes(self) -> int:
        return self.total_resident_pages * self.spec.page_bytes
