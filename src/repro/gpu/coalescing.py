"""Memory-coalescing model: warp accesses -> 32-byte sector transactions.

Section V-A of the paper: "memory requests from a warp are transformed
into cache line requests with a size of 32B".  A warp instruction that
reads 32 scattered 4-byte values therefore costs up to 32 transactions,
while a contiguous 128-byte read costs 4.

The central primitive here is :func:`coalesce`: given per-access byte
addresses and an integer *group key* identifying which accesses are issued
simultaneously (same warp, same step — or same warp for an unrolled SMP
burst), it returns one representative sector per transaction.  Everything
is one sorted dedup over a packed 64-bit ``(group, sector)`` key, so
tracing millions of edge accesses stays cheap.

The packing stage is exposed separately (:func:`scatter_packed_keys`,
:func:`run_packed_keys`, :func:`packed_to_sectors`) so that
:class:`repro.gpu.traceplan.TracePlan` can fuse the packed keys of *all*
of a launch's access streams into a single sort instead of one per
stream.
"""

from __future__ import annotations

import numpy as np

from repro.utils.sorting import sorted_unique

#: Bits reserved for the sector id inside the packed (group, sector) key.
#: 2**38 sectors * 32 B = 8 TiB of address space — far beyond any
#: simulated allocation.
_SECTOR_BITS = 38
_SECTOR_MASK = (1 << _SECTOR_BITS) - 1


def sector_of(addresses: np.ndarray, sector_bytes: int = 32) -> np.ndarray:
    """Sector id for each byte address."""
    return np.asarray(addresses, dtype=np.int64) // sector_bytes


def coalesce(
    addresses: np.ndarray,
    group_keys: np.ndarray,
    sector_bytes: int = 32,
) -> np.ndarray:
    """Coalesce simultaneous accesses into unique sector transactions.

    Parameters
    ----------
    addresses:
        Byte address of every individual access.
    group_keys:
        Same-length int array; accesses sharing a key are issued by the
        same warp in the same cycle and may be merged by the coalescer.

    Returns
    -------
    The sector ids of the resulting transactions, ordered by
    ``(group, sector)`` — i.e. roughly in issue order.  ``len(result)`` is
    the transaction count; the array doubles as the access stream fed to
    the cache model.
    """
    packed = scatter_packed_keys(addresses, group_keys, sector_bytes)
    return packed_to_sectors(sorted_unique(packed))


def scatter_packed_keys(
    addresses: np.ndarray,
    group_keys: np.ndarray,
    sector_bytes: int = 32,
) -> np.ndarray:
    """The packed ``(group << SECTOR_BITS) | sector`` key of every access
    (unsorted, undeduplicated) — :func:`coalesce` is a sorted dedup of
    this array."""
    addresses = np.asarray(addresses, dtype=np.int64)
    group_keys = np.asarray(group_keys, dtype=np.int64)
    if addresses.shape != group_keys.shape:
        raise ValueError(
            f"addresses/group_keys shape mismatch: "
            f"{addresses.shape} vs {group_keys.shape}"
        )
    if len(addresses) == 0:
        return np.empty(0, dtype=np.int64)
    sectors = addresses // sector_bytes
    if sectors.max() > _SECTOR_MASK:
        raise ValueError("address exceeds simulated address space")
    return (group_keys << _SECTOR_BITS) | sectors


def packed_to_sectors(packed: np.ndarray) -> np.ndarray:
    """Strip the group key off packed ``(group, sector)`` keys."""
    return packed & _SECTOR_MASK


def max_group_key(packed: np.ndarray) -> int:
    """Largest group key present in a packed-key array (0 when empty).

    Packed keys are non-negative and group-major, so the maximum packed
    key carries the maximum group key.
    """
    if len(packed) == 0:
        return 0
    return int(packed.max()) >> _SECTOR_BITS


def warp_ids(n_threads: int, warp_size: int = 32) -> np.ndarray:
    """Warp index of each thread in a flat 1-thread-per-item launch."""
    return np.arange(n_threads, dtype=np.int64) // warp_size


def strided_group_keys(
    thread_ids: np.ndarray, steps: np.ndarray, warp_size: int = 32
) -> np.ndarray:
    """Group key for "lane ``t`` issues its ``step``-th access": accesses
    of the same warp at the same loop step coalesce together.

    This is the access pattern of a *non*-SMP vertex-centric kernel: at
    loop step ``s`` every lane reads its own adjacency slot ``s`` —
    simultaneous but scattered.

    Keys are **step-major**: all warps' step-``s`` accesses precede any
    warp's step ``s+1``.  Since :func:`coalesce` orders the resulting
    transaction stream by key, this models warp interleaving on the SMs —
    a warp's consecutive loop iterations are separated by every other
    resident warp's accesses, which is precisely the cache-thrash
    mechanism of Section V-A (lines evicted before step-to-step reuse).
    """
    thread_ids = np.asarray(thread_ids, dtype=np.int64)
    steps = np.asarray(steps, dtype=np.int64)
    if len(thread_ids) == 0:
        return np.empty(0, dtype=np.int64)
    num_warps = int(thread_ids.max()) // warp_size + 1
    return steps * num_warps + (thread_ids // warp_size)


def burst_group_keys(
    thread_ids: np.ndarray, warp_size: int = 32
) -> np.ndarray:
    """Group key for an unrolled SMP burst: *all* of a warp's prefetch
    loads are in flight together, so the coalescer may merge across both
    lanes and steps (Section V-B)."""
    return np.asarray(thread_ids, dtype=np.int64) // warp_size


def contiguous_run_sectors(
    start_addresses: np.ndarray,
    lengths_bytes: np.ndarray,
    group_keys: np.ndarray,
    sector_bytes: int = 32,
) -> np.ndarray:
    """Transactions for per-lane *contiguous* reads of given byte lengths.

    Equivalent to expanding every byte range into word accesses and
    calling :func:`coalesce`, but computed per run: a contiguous run of
    ``L`` bytes starting at ``a`` touches sectors ``a//32 .. (a+L-1)//32``.
    Used for SMP adjacency bursts, where each lane reads its whole CSR
    slice front-to-back.
    """
    packed = run_packed_keys(
        start_addresses, lengths_bytes, group_keys, sector_bytes
    )
    return packed_to_sectors(sorted_unique(packed))


def run_packed_keys(
    start_addresses: np.ndarray,
    lengths_bytes: np.ndarray,
    group_keys: np.ndarray,
    sector_bytes: int = 32,
) -> np.ndarray:
    """Packed ``(group, sector)`` keys of per-lane contiguous runs
    (unsorted, undeduplicated) — the packing stage of
    :func:`contiguous_run_sectors`."""
    start = np.asarray(start_addresses, dtype=np.int64)
    length = np.asarray(lengths_bytes, dtype=np.int64)
    group = np.asarray(group_keys, dtype=np.int64)
    if not (len(start) == len(length) == len(group)):
        raise ValueError("start/length/group length mismatch")
    nonzero = length > 0
    start, length, group = start[nonzero], length[nonzero], group[nonzero]
    if len(start) == 0:
        return np.empty(0, dtype=np.int64)
    first = start // sector_bytes
    last = (start + length - 1) // sector_bytes
    counts = (last - first + 1).astype(np.int64)
    from repro.utils.ragged import ragged_arange

    sectors = np.repeat(first, counts) + ragged_arange(counts)
    groups = np.repeat(group, counts)
    return (groups << _SECTOR_BITS) | sectors
