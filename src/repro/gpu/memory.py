"""Simulated device-memory allocator.

Frameworks allocate their *actual* arrays through this allocator, so
footprints — and the O.O.M pattern of Table III — emerge from real data
structure sizes rather than hard-coded formulas.  Two allocation kinds
exist, mirroring CUDA:

* ``device`` — ``cudaMalloc``: must fit in capacity or
  :class:`~repro.errors.DeviceOutOfMemoryError` is raised.
* ``um`` — ``cudaMallocManaged``: never fails for size; pages migrate on
  demand and may oversubscribe capacity (Pascal+ behaviour the paper
  relies on for uk-2006).  Residency is managed by
  :class:`repro.gpu.um.UnifiedMemoryManager`.
* ``zerocopy`` — ``cudaHostAlloc``-style pinned host memory mapped into
  the device address space: consumes no device capacity and never
  migrates; every device access crosses PCIe (Section IV-B's rejected
  alternative to UM).

Addresses are assigned by a monotone bump pointer in a flat virtual
address space; they feed the coalescing and cache models, so two arrays
never alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError, DeviceOutOfMemoryError
from repro.gpu.device import DeviceSpec

_ALIGN = 256  # cudaMalloc alignment


@dataclass
class DeviceArray:
    """A named allocation: host-side numpy storage plus a device address."""

    name: str
    base_address: int
    data: np.ndarray
    kind: str  # "device" | "um"
    freed: bool = field(default=False, compare=False)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def itemsize(self) -> int:
        return self.data.itemsize

    def addresses_of(self, indices: np.ndarray) -> np.ndarray:
        """Byte addresses of the given element indices."""
        if self.freed:
            raise AllocationError(f"use after free: {self.name}")
        return self.base_address + np.asarray(indices, dtype=np.int64) * self.itemsize

    def address_range(self) -> tuple[int, int]:
        """[start, end) byte addresses of the allocation."""
        return self.base_address, self.base_address + self.nbytes

    def __repr__(self) -> str:
        return (
            f"DeviceArray({self.name!r}, {self.kind}, {self.nbytes} B "
            f"@ 0x{self.base_address:x})"
        )


class DeviceMemory:
    """Capacity-accounted allocator over a flat virtual address space."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self.capacity = spec.memory_capacity
        self._next_address = spec.page_bytes  # keep address 0 unused
        self._device_in_use = 0
        self._allocations: dict[int, DeviceArray] = {}
        #: Optional :class:`repro.resilience.faults.FaultInjector`
        #: consulted on every allocation request (may raise an injected
        #: :class:`~repro.errors.DeviceOutOfMemoryError`).
        self.injector = None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _bump(self, nbytes: int, alignment: int) -> int:
        addr = -(-self._next_address // alignment) * alignment
        self._next_address = addr + nbytes
        return addr

    def alloc(self, name: str, array: np.ndarray, *, kind: str = "device") -> DeviceArray:
        """Place ``array`` on the device (or in UM / pinned-host space)."""
        if kind not in ("device", "um", "zerocopy"):
            raise ValueError(f"unknown allocation kind {kind!r}")
        array = np.ascontiguousarray(array)
        if self.injector is not None:
            self.injector.on_alloc(
                name, array.nbytes, self._device_in_use, self.capacity
            )
        if kind == "device":
            if self._device_in_use + array.nbytes > self.capacity:
                raise DeviceOutOfMemoryError(
                    array.nbytes, self._device_in_use, self.capacity
                )
            self._device_in_use += array.nbytes
        alignment = self.spec.page_bytes if kind in ("um", "zerocopy") else _ALIGN
        base = self._bump(max(array.nbytes, 1), alignment)
        da = DeviceArray(name=name, base_address=base, data=array, kind=kind)
        self._allocations[base] = da
        return da

    def alloc_empty(
        self, name: str, shape, dtype, *, kind: str = "device"
    ) -> DeviceArray:
        return self.alloc(name, np.empty(shape, dtype=dtype), kind=kind)

    def alloc_full(
        self, name: str, shape, fill_value, dtype, *, kind: str = "device"
    ) -> DeviceArray:
        return self.alloc(name, np.full(shape, fill_value, dtype=dtype), kind=kind)

    def free(self, array: DeviceArray) -> None:
        if array.base_address not in self._allocations:
            raise AllocationError(f"unknown or double-freed allocation {array.name!r}")
        del self._allocations[array.base_address]
        if array.kind == "device":
            self._device_in_use -= array.nbytes
        array.freed = True

    def free_all(self) -> None:
        for da in list(self._allocations.values()):
            self.free(da)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def device_bytes_in_use(self) -> int:
        return self._device_in_use

    @property
    def um_bytes_allocated(self) -> int:
        return sum(a.nbytes for a in self._allocations.values() if a.kind == "um")

    @property
    def bytes_free(self) -> int:
        return self.capacity - self._device_in_use

    def allocations(self) -> list[DeviceArray]:
        return list(self._allocations.values())

    def __repr__(self) -> str:
        return (
            f"DeviceMemory({self._device_in_use}/{self.capacity} B device, "
            f"{self.um_bytes_allocated} B UM, {len(self._allocations)} allocs)"
        )
