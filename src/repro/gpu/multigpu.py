"""Multi-GPU scaling model (Totem / Groute-style partitioned traversal).

Section I argues that multi-GPU systems scale poorly because "communication
bandwidth through the PCI-e interface is relatively low and the overhead
significantly limits the scalability (often no more than 8 GPUs)".  This
module makes that claim executable: vertices are range-partitioned across
``num_gpus`` simulated devices; each iteration runs the local frontier
kernel on every GPU in parallel and then exchanges *boundary updates*
(label writes whose destination lives on another GPU) through host-staged
PCIe transfers that share the root-complex bandwidth.

The functional result is unchanged (labels are global); only the cost
model is partitioned — which is exactly the level at which the paper's
scalability argument lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import TraversalProblem, get_problem
from repro.baselines.base import check_iteration_budget, propagate_step
from repro.core.config import EtaGraphConfig
from repro.core.udc import degree_cut
from repro.errors import ConfigError
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.kernel import simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.profiler import Profiler
from repro.gpu.transfer import h2d_copy
from repro.graph.csr import CSRGraph
from repro.utils.ragged import ragged_gather_indices


@dataclass
class MultiGPUResult:
    """Labels plus the partitioned execution record."""

    labels: np.ndarray
    num_gpus: int
    iterations: int
    total_ms: float
    kernel_ms: float
    comm_ms: float
    comm_bytes: float
    per_gpu_vertices: list[int] = field(default_factory=list)
    profiler: Profiler | None = None

    @property
    def comm_fraction(self) -> float:
        return self.comm_ms / self.total_ms if self.total_ms else 0.0


def partition_ranges(num_vertices: int, num_gpus: int) -> np.ndarray:
    """Range partition boundaries: GPU g owns [bounds[g], bounds[g+1])."""
    return np.linspace(0, num_vertices, num_gpus + 1).astype(np.int64)


def multi_gpu_traversal(
    csr: CSRGraph,
    source: int,
    *,
    num_gpus: int = 2,
    problem: TraversalProblem | str = "bfs",
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
) -> MultiGPUResult:
    """Run one traversal over a ``num_gpus``-way partitioned graph."""
    if num_gpus < 1:
        raise ConfigError(f"num_gpus must be >= 1, got {num_gpus}")
    if isinstance(problem, str):
        problem = get_problem(problem)
    problem.check_graph(csr)
    cfg = config or EtaGraphConfig()
    spec = device

    bounds = partition_ranges(csr.num_vertices, num_gpus)
    owner_of = np.searchsorted(bounds, np.arange(csr.num_vertices),
                               side="right") - 1

    # Each GPU holds its partition's slice of the topology + full labels
    # (the Totem model: replicated state, partitioned edges).
    mems = [DeviceMemory(spec) for _ in range(num_gpus)]
    caches = [CacheHierarchy(spec) for _ in range(num_gpus)]
    prof = Profiler()
    clock = 0.0

    cols_arrs = []
    labels_arrs = []
    for g, mem in enumerate(mems):
        lo, hi = bounds[g], bounds[g + 1]
        e_lo = csr.row_offsets[lo]
        e_hi = csr.row_offsets[hi]
        part_cols = csr.column_indices[e_lo:e_hi]
        cols_arrs.append(mem.alloc(f"cols_gpu{g}", part_cols))
        labels_arrs.append(mem.alloc_empty(
            f"labels_gpu{g}", max(csr.num_vertices, 1), np.float32
        ))
        # Upfront transfer of each partition happens in parallel across
        # GPUs: the slowest link sets the clock.
    setup = max(
        h2d_copy(spec, prof, cols_arrs[g].nbytes + 4 * csr.num_vertices)
        for g in range(num_gpus)
    )
    clock += setup

    labels = problem.initial_labels(csr.num_vertices, source)
    offsets = csr.row_offsets
    kernel_ms = 0.0
    comm_ms = 0.0
    comm_bytes = 0.0
    iterations = 0
    active = np.array([source], dtype=np.int64)
    while len(active):
        check_iteration_budget(iterations, "multi-gpu")
        changed, attempted, nbr, edges = propagate_step(
            csr, labels, active, problem
        )

        # Per-GPU kernel time on its share of the frontier.
        gpu_times = []
        for g in range(num_gpus):
            mine = active[owner_of[active] == g]
            if len(mine) == 0:
                gpu_times.append(0.0)
                continue
            shadows = degree_cut(mine, offsets, cfg.degree_limit)
            if len(shadows) == 0:
                gpu_times.append(0.0)
                continue
            e_idx = ragged_gather_indices(shadows.starts, shadows.degrees)
            local_nbr = csr.column_indices[e_idx].astype(np.int64)
            timing = simulate_vertex_kernel(
                spec, caches[g],
                starts=shadows.starts,
                degrees=shadows.degrees,
                adj_array=cols_arrs[g],
                neighbor_ids=local_nbr,
                label_array=labels_arrs[g],
                smp=cfg.smp,
                degree_limit=cfg.degree_limit,
                updates=int(len(local_nbr) * attempted / max(edges, 1)),
                instr_per_edge=problem.instr_per_edge,
                threads_per_block=cfg.threads_per_block,
            )
            prof.record_kernel(timing.counters)
            gpu_times.append(timing.time_ms)
        iter_kernel = max(gpu_times) if gpu_times else 0.0
        kernel_ms += iter_kernel

        # Boundary exchange: updates whose destination is foreign-owned
        # cross PCIe twice (device -> host -> device) and all links share
        # the host root complex, so the exchange serializes across GPUs.
        if len(changed) and num_gpus > 1:
            # A destination is "remote" for every GPU except its owner;
            # with replicated labels each update must reach all peers.
            update_bytes = len(changed) * 8 * (num_gpus - 1)
            exchange = spec.pcie_time_ms(update_bytes) + \
                (num_gpus - 1) * spec.pcie_latency_us * 1e-3
            comm_ms += exchange
            comm_bytes += update_bytes
        else:
            exchange = 0.0

        clock += iter_kernel + exchange
        active = changed
        iterations += 1

    return MultiGPUResult(
        labels=labels.copy(),
        num_gpus=num_gpus,
        iterations=iterations,
        total_ms=clock,
        kernel_ms=kernel_ms,
        comm_ms=comm_ms,
        comm_bytes=comm_bytes,
        per_gpu_vertices=[int(bounds[g + 1] - bounds[g])
                          for g in range(num_gpus)],
        profiler=prof,
    )


def scaling_sweep(
    csr: CSRGraph,
    source: int,
    gpu_counts: list[int] = (1, 2, 4, 8, 16),
    **kwargs,
) -> dict[int, MultiGPUResult]:
    """Run the same traversal at several GPU counts (the scalability
    curve of the paper's introduction)."""
    return {
        g: multi_gpu_traversal(csr, source, num_gpus=g, **kwargs)
        for g in gpu_counts
    }
