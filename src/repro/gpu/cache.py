"""Cache models: a vectorized reuse-window LRU approximation (the
simulator's hot path) and an exact set-associative LRU (its validation
oracle on small traces).

Section V-A of the paper explains why graph traversal sees poor cache
behaviour on GPUs: per-warp cache shares are a few hundred bytes, so lines
are evicted before reuse (they measure ~19% L2 read hit rate for Tigr).
The reuse-window model captures exactly that mechanism: an access hits iff
the same sector was touched within the last ``window`` accesses, where the
window is the cache's sector capacity shrunk by a contention factor
standing in for the thousands of concurrently resident warps.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.utils.sorting import stable_argsort

_NEVER = -(1 << 62)


class ReuseWindowCache:
    """Approximate LRU: hit iff the sector recurs within ``window`` accesses.

    The reuse *distance in accesses* is a standard surrogate for the LRU
    stack distance; it is exact when every access touches a distinct line
    and optimistic otherwise, which the contention divisor compensates
    for.  Fully vectorized: one stable argsort per batch.
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._last = np.empty(0, dtype=np.int64)
        self._clock = 0
        self.accesses = 0
        self.hits = 0

    def _ensure_capacity(self, max_sector: int) -> None:
        if max_sector >= len(self._last):
            new_size = max(1024, int(max_sector * 1.5) + 1)
            grown = np.full(new_size, _NEVER, dtype=np.int64)
            grown[: len(self._last)] = self._last
            self._last = grown

    def access(self, sectors: np.ndarray) -> np.ndarray:
        """Process an access stream; returns a boolean hit mask."""
        sectors = np.asarray(sectors, dtype=np.int64)
        n = len(sectors)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if sectors.min() < 0:
            raise ValueError("negative sector id")
        self._ensure_capacity(int(sectors.max()))

        positions = self._clock + np.arange(n, dtype=np.int64)
        # Previous occurrence of each sector: within the batch via a
        # stable sort (equal sectors stay in stream order), falling back
        # to the persistent last-access table for first occurrences.
        order = stable_argsort(sectors)
        sorted_sectors = sectors[order]
        sorted_positions = self._clock + order
        prev_sorted = self._last[sorted_sectors]
        same_as_left = np.empty(n, dtype=bool)
        same_as_left[0] = False
        np.equal(sorted_sectors[1:], sorted_sectors[:-1], out=same_as_left[1:])
        prev_sorted[same_as_left] = sorted_positions[:-1][same_as_left[1:]]
        prev = np.empty(n, dtype=np.int64)
        prev[order] = prev_sorted

        hits = (positions - prev) <= self.window
        # Fancy assignment applies in index order, so the latest position
        # of a duplicated sector wins — matching true LRU update order.
        self._last[sectors] = positions
        self._clock += n
        self.accesses += n
        self.hits += int(hits.sum())
        return hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self._last.fill(_NEVER)
        self._clock = 0
        self.accesses = 0
        self.hits = 0


class ExactLRUCache:
    """Reference set-associative LRU cache (slow, for tests).

    Models ``capacity_bytes`` of ``line_bytes`` lines with ``ways``-way
    associativity and true per-set LRU replacement.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 32, ways: int = 8):
        n_lines = capacity_bytes // line_bytes
        if n_lines < ways:
            raise ValueError("cache smaller than one set")
        self.num_sets = n_lines // ways
        self.ways = ways
        self.line_bytes = line_bytes
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.hits = 0

    def access(self, sectors: np.ndarray) -> np.ndarray:
        sectors = np.asarray(sectors, dtype=np.int64)
        hits = np.zeros(len(sectors), dtype=bool)
        for i, sector in enumerate(sectors):
            s = self._sets[int(sector) % self.num_sets]
            if sector in s:
                s.move_to_end(sector)
                hits[i] = True
            else:
                if len(s) >= self.ways:
                    s.popitem(last=False)
                s[int(sector)] = True
        self.accesses += len(sectors)
        self.hits += int(hits.sum())
        return hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class HierarchyResult:
    """Outcome of routing one access stream through L1 -> L2 -> DRAM."""

    accesses: int
    unified_hits: int
    l2_accesses: int
    l2_hits: int
    dram_transactions: int

    @property
    def dram_bytes(self) -> int:
        return self.dram_transactions * 32


class CacheHierarchy:
    """Unified cache (L1+texture) in front of the device-wide L2.

    Transactions that miss the unified cache are forwarded to L2;
    L2 misses become DRAM sector reads.  Window sizes derive from the
    device spec's cache capacities shrunk by the contention divisor.
    """

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        sector = spec.sector_bytes
        l1_window = max(64, int(spec.total_unified_cache_bytes / sector
                                / spec.cache_contention))
        l2_window = max(128, int(spec.l2_cache_bytes / sector
                                 / spec.cache_contention))
        self.unified = ReuseWindowCache(l1_window)
        self.l2 = ReuseWindowCache(l2_window)

    def access(self, sectors: np.ndarray) -> HierarchyResult:
        sectors = np.asarray(sectors, dtype=np.int64)
        l1_hits = self.unified.access(sectors)
        to_l2 = sectors[~l1_hits]
        l2_hits = self.l2.access(to_l2)
        dram = int((~l2_hits).sum())
        return HierarchyResult(
            accesses=len(sectors),
            unified_hits=int(l1_hits.sum()),
            l2_accesses=len(to_l2),
            l2_hits=int(l2_hits.sum()),
            dram_transactions=dram,
        )

    def reset(self) -> None:
        self.unified.reset()
        self.l2.reset()
