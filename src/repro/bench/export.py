"""JSON export of experiment reports.

Every :class:`~repro.bench.runner.ExperimentReport` can be serialized so
successive reproduction runs can be diffed mechanically (CI regression
checks on the *shapes*, not just eyeballing tables).  Numpy scalars,
arrays and the library's dataclasses are flattened to plain JSON types.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.bench.runner import ExperimentReport


def _jsonable(value: Any) -> Any:
    """Recursively convert to JSON-compatible types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        v = float(value)
        return v if np.isfinite(v) else repr(v)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    # Objects with a useful dict view (stats, profilers); fall back to repr.
    if hasattr(value, "__dict__") and value.__dict__:
        return {k: _jsonable(v) for k, v in value.__dict__.items()
                if not k.startswith("_")}
    return repr(value)


def _key(k: Any) -> str:
    if isinstance(k, tuple):
        return "/".join(str(p) for p in k)
    return str(k)


def report_to_dict(report: ExperimentReport) -> dict:
    """Flatten a report to JSON-compatible primitives."""
    return {
        "experiment": report.experiment,
        "title": report.title,
        "data": _jsonable(report.data),
    }


def save_report(report: ExperimentReport, path: str | Path) -> None:
    """Write a report (data only, not the rendered text) as JSON."""
    Path(path).write_text(json.dumps(report_to_dict(report), indent=2))


def load_report_dict(path: str | Path) -> dict:
    """Load a previously saved report's data for comparison."""
    return json.loads(Path(path).read_text())
