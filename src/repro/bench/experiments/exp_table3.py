"""Table III — the headline performance comparison.

Runs CuSha, Gunrock, Tigr (reporting ``t_kernel/t_total``), EtaGraph and
EtaGraph w/o UMP (reporting total) for BFS / SSSP / SSWP over all seven
datasets on the capacity-scaled device.  O.O.M cells arise from real
allocation failures.

Shapes that must hold (Section VI-C):

* EtaGraph total beats every baseline's total on the mid/large datasets;
* the O.O.M pattern: CuSha dies first (RMAT25+), Gunrock at sk-2005+,
  Tigr at uk-2006 (BFS) / sk-2005 (SSSP), EtaGraph never;
* EtaGraph w/o UMP slower than EtaGraph everywhere except uk-2006, where
  the tiny activatable subgraph makes on-demand migration win big.
"""

from __future__ import annotations

from repro.bench.runner import (
    BenchContext,
    CellResult,
    ExperimentReport,
    error_taxonomy,
    run_cell,
)
from repro.bench import workloads
from repro.bench.reporting import grid_table


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = workloads.dataset_names(quick)

    cells: dict[str, dict[tuple[str, str], CellResult]] = {}
    sections = []
    for alg in workloads.ALGORITHMS:
        frameworks = workloads.frameworks_for(alg)
        grid: dict[tuple[str, str], CellResult] = {}
        for fw in frameworks:
            for ds in names:
                grid[(fw, ds)] = run_cell(ctx, fw, alg, ds)
        cells[alg] = grid
        sections.append(grid_table(
            f"Table III ({alg.upper()}): runtime ms "
            "(baselines t_kernel/t_total, EtaGraph total)",
            frameworks, names, grid,
            etagraph_rows=[f for f in frameworks if f.startswith("etagraph")],
        ))

    return ExperimentReport(
        experiment="table3",
        title="Performance comparison",
        text="\n\n".join(sections),
        data={
            "cells": cells,
            "datasets": names,
            "error_taxonomy": error_taxonomy(
                cell for grid in cells.values() for cell in grid.values()
            ),
        },
    )
