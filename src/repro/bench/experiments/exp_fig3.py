"""Fig. 3 — the paper's worked UDC example (illustrative figure).

Fig. 3 shows a 6-vertex example graph, its CSR arrays, and the active set
{1, 2, 4} transformed into the virtual active set at K=4: vertex 1
(out-degree > K) becomes two shadow vertices, vertex 2 (out-degree 0)
disappears, vertex 4 stays whole.  This experiment reconstructs the
example end-to-end and prints the resulting 3-tuples.

(Figs. 1 and 3 are schematic figures, not measurements; this module
exists so the artifact index covers every figure with *something*
executable.  Fig. 1 — a hardware block diagram — has no executable
content and is represented by the device model itself.)
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import BenchContext, ExperimentReport
from repro.core.udc import degree_cut
from repro.graph.csr import CSRGraph
from repro.utils.tables import render_table


def example_graph() -> CSRGraph:
    """The Fig. 3(a) example: 6 vertices, vertex 1 a small hub."""
    edges = [
        (0, 1), (0, 2),
        (1, 0), (1, 2), (1, 3), (1, 4), (1, 5),
        (3, 4),
        (4, 2), (4, 5),
        (5, 1),
    ]
    src, dst = map(np.array, zip(*edges))
    return CSRGraph.from_edges(src, dst, num_vertices=6)


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    g = example_graph()
    active = np.array([1, 2, 4])
    k = 4
    shadows = degree_cut(active, g.row_offsets, k)
    shadows.validate_against(g.row_offsets, k)

    rows = [
        [i, int(s_id), int(start), int(start + deg), int(deg)]
        for i, (s_id, start, deg) in enumerate(
            zip(shadows.ids, shadows.starts, shadows.degrees)
        )
    ]
    text = render_table(
        ["shadow", "vertex ID", "start index", "end index", "degree"],
        rows,
        title=f"Fig. 3: active set {active.tolist()} -> virtual active set "
              f"(K={k}); vertex 1 split, vertex 2 filtered, vertex 4 whole",
    )
    return ExperimentReport(
        experiment="fig3",
        title="UDC worked example",
        text=text,
        data={
            "ids": shadows.ids.tolist(),
            "starts": shadows.starts.tolist(),
            "degrees": shadows.degrees.tolist(),
        },
    )
