"""Fig. 7 — microarchitectural effect of SMP (BFS on LiveJournal).

nvprof-equivalent counters with SMP on vs off, normalized to the
without-SMP run.  Paper values: IPC 1.42x, unified-cache hit rate 1.02x,
L2 hit rate 1.19x, ~2.2x read throughput at L2 / unified cache / DRAM,
and 0.48x global read transactions.
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.utils.tables import render_table

PAPER = {
    "ipc": 1.42,
    "unified_hit_rate": 1.02,
    "l2_hit_rate": 1.19,
    "l2_read_throughput": 2.2,
    "unified_read_throughput": 2.2,
    "dram_read_throughput": 2.2,
    "global_read_transactions": 0.48,
}


def _metrics(counters) -> dict[str, float]:
    return {
        "ipc": counters.ipc,
        "unified_hit_rate": counters.unified_hit_rate,
        "l2_hit_rate": counters.l2_hit_rate,
        "l2_read_throughput": counters.l2_read_throughput_gbps,
        "unified_read_throughput": counters.unified_read_throughput_gbps,
        "dram_read_throughput": counters.dram_read_throughput_gbps,
        "global_read_transactions": float(counters.global_load_transactions),
    }


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()

    with_smp = run_cell(ctx, "etagraph", "bfs", "livejournal")
    without = run_cell(ctx, "etagraph-nosmp", "bfs", "livejournal")
    m_smp = _metrics(with_smp.extras["profiler"].kernels)
    m_base = _metrics(without.extras["profiler"].kernels)

    rows = []
    normalized = {}
    for key, paper in PAPER.items():
        norm = m_smp[key] / m_base[key] if m_base[key] else float("nan")
        normalized[key] = norm
        rows.append([
            key,
            f"{m_base[key]:.4g}",
            f"{m_smp[key]:.4g}",
            f"{norm:.2f}x",
            f"{paper:.2f}x",
        ])

    text = render_table(
        ["metric", "w/o SMP", "with SMP", "normalized", "paper"],
        rows,
        title="Fig. 7: effect of SMP on memory-system metrics "
              "(BFS, LiveJournal)",
    )
    return ExperimentReport(
        experiment="fig7",
        title="SMP microarchitecture metrics",
        text=text,
        data={"with_smp": m_smp, "without_smp": m_base,
              "normalized": normalized, "paper": PAPER},
    )
