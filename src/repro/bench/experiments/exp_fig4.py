"""Fig. 4 — transfer/compute overlap of EtaGraph w/o UMP running SSSP.

The paper shows data transfer and computation proceeding concurrently for
the first 60-80% of total time on LJ / Orkut / RMAT25 / uk-2005, with
uk-2005's transfer arriving in several waves (new graph regions only
become active after many iterations).
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.utils.tables import render_table

DATASETS = ["livejournal", "com-orkut", "rmat25", "uk-2005"]


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = DATASETS[:2] if quick else DATASETS

    rows = []
    data = {}
    for ds in names:
        cell = run_cell(ctx, "etagraph-noump", "sssp", ds)
        tl = cell.extras["timeline"]
        series = tl.cumulative_bytes_series("transfer")
        span = tl.span_ms
        end = tl.end_ms
        # When does the last byte land, as a fraction of total time?
        transfer_done_frac = series[-1][0] / end if series and end else 0.0
        data[ds] = {
            "overlap_fraction": tl.overlap_fraction(),
            "transfer_busy_ms": tl.busy_ms("transfer"),
            "compute_busy_ms": tl.busy_ms("compute"),
            "span_ms": span,
            "transfer_done_fraction": transfer_done_frac,
            "transfer_series": series,
        }
        rows.append([
            ds,
            f"{100 * tl.overlap_fraction():.0f}%",
            f"{100 * transfer_done_frac:.0f}%",
            f"{tl.busy_ms('transfer'):.3f}",
            f"{span:.3f}",
        ])

    text = render_table(
        ["dataset", "overlap (paper: 60-80%)", "transfer done by",
         "transfer busy ms", "total ms"],
        rows,
        title="Fig. 4: execution status, EtaGraph w/o UMP running SSSP",
    )
    # Activity-band rendering of the first dataset's run (the figure's
    # visual: transfer and compute proceeding concurrently).
    from repro.utils.charts import timeline_chart

    first = names[0]
    cell = run_cell(ctx, "etagraph-noump", "sssp", first)
    tl = cell.extras["timeline"]
    bands = [(iv.kind, iv.start_ms, iv.end_ms) for iv in tl.intervals]
    text += "\n\n" + timeline_chart(
        bands, title=f"{first}: activity over time"
    )
    return ExperimentReport(
        experiment="fig4",
        title="Transfer/compute overlap",
        text=text,
        data=data,
    )
