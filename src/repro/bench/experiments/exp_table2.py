"""Table II — dataset statistics.

Reports |V|, |E|, average degree, on-disk size and %LCC for every
surrogate next to the paper's full-scale values.  The surrogates are
1/256-scale (DESIGN.md), so vertex/edge counts differ by construction;
what must match is average degree and the LCC character (high for social
graphs, ~65-71% strongly-connected core for the web crawls).
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport
from repro.bench import workloads
from repro.graph import datasets, properties
from repro.utils.tables import render_table
from repro.utils.units import format_bytes


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = workloads.dataset_names(quick)

    rows = []
    data = {}
    for name in names:
        spec = datasets.get_spec(name)
        csr, _src = ctx.load(name, weighted=False)
        # Web crawls report the strongly-connected core (their weak
        # component is ~the whole crawl); social graphs report the weak
        # LCC like SNAP does.
        strong = spec.kind == "web"
        summary = properties.GraphSummary.of(csr, strong_lcc=strong)
        data[name] = summary
        rows.append([
            name,
            f"{summary.num_vertices:,}",
            f"{summary.num_edges:,}",
            f"{summary.average_degree:.1f}",
            f"{spec.paper.average_degree:.1f}",
            format_bytes(summary.size_bytes),
            f"{100 * summary.lcc_fraction:.1f}",
            f"{spec.paper.lcc_percent:.1f}",
        ])

    text = render_table(
        ["dataset", "|V|", "|E|", "avg.deg", "paper deg", "size",
         "%LCC", "paper %LCC"],
        rows,
        title="Table II: surrogate datasets (1/256 scale)",
    )
    return ExperimentReport(
        experiment="table2",
        title="Dataset statistics",
        text=text,
        data={"summaries": data},
    )
