"""Table IV — EtaGraph activation percentage and iteration count.

BFS from each dataset's query source.  Paper values: Act% near 100 for
everything except RMAT25 (81) and uk-2006 (1.15e-4); iteration counts 8
(Slashdot), 15 (LJ), 8 (Orkut), 9 (RMAT25), 200 (uk-2005), 57 (sk-2005),
4 (uk-2006).
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.bench import workloads
from repro.utils.tables import render_table

PAPER = {
    "slashdot": (100.0, 8),
    "livejournal": (91.0, 15),
    "com-orkut": (99.0, 8),
    "rmat25": (81.0, 9),
    "uk-2005": (99.0, 200),
    "sk-2005": (99.0, 57),
    "uk-2006": (1.15e-4, 4),
}


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = workloads.dataset_names(quick)

    rows = []
    data = {}
    for ds in names:
        cell = run_cell(ctx, "etagraph", "bfs", ds)
        stats = cell.extras["stats"]
        act = 100.0 * stats.activation_fraction()
        data[ds] = {"act_percent": act, "iterations": cell.iterations}
        paper_act, paper_itr = PAPER[ds]
        rows.append([
            ds,
            f"{act:.4g}",
            f"{paper_act:.4g}",
            cell.iterations,
            paper_itr,
        ])

    text = render_table(
        ["dataset", "Act. % (measured)", "Act. % (paper)",
         "Itr. # (measured)", "Itr. # (paper)"],
        rows,
        title="Table IV: activation and iteration details of EtaGraph (BFS)",
    )
    return ExperimentReport(
        experiment="table4",
        title="Activation and iteration details",
        text=text,
        data=data,
    )
