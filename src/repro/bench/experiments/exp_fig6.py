"""Fig. 6 — ablation: normalized runtimes of EtaGraph setups.

Runs EtaGraph, 'w/o SMP' and 'w/o UM' (plain cudaMalloc) on every dataset
and reports runtimes normalized to full EtaGraph.  Paper shapes:

* w/o SMP costs 1.11-2.14x on the datasets where kernels dominate, and
  ~1.0x on uk-2006 (transfer-dominated);
* w/o UM costs 1.02-1.26x — and cannot process uk-2006 at all (the
  topology exceeds device capacity without UM oversubscription).
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.bench import workloads
from repro.utils.tables import render_table

VARIANTS = ("etagraph", "etagraph-nosmp", "etagraph-noum")
LABELS = {"etagraph": "EtaGraph", "etagraph-nosmp": "w/o SMP",
          "etagraph-noum": "w/o UM"}


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = workloads.dataset_names(quick)

    rows = []
    data = {}
    for ds in names:
        base = run_cell(ctx, "etagraph", "bfs", ds)
        row = [ds, f"{base.total_ms:.3f}"]
        entry = {"etagraph_ms": base.total_ms}
        for variant in VARIANTS[1:]:
            cell = run_cell(ctx, variant, "bfs", ds)
            if cell.oom:
                row.append("O.O.M")
                entry[LABELS[variant]] = None
            else:
                norm = cell.total_ms / base.total_ms
                row.append(f"{norm:.2f}x")
                entry[LABELS[variant]] = norm
        data[ds] = entry
        rows.append(row)

    text = render_table(
        ["dataset", "EtaGraph ms", "w/o SMP (norm)", "w/o UM (norm)"],
        rows,
        title="Fig. 6: normalized runtimes of EtaGraph setups (BFS); "
              "paper: w/o SMP 1.11-2.14x, w/o UM 1.02-1.26x, "
              "uk-2006 impossible w/o UM",
    )
    return ExperimentReport(
        experiment="fig6",
        title="Ablation of SMP and UM",
        text=text,
        data=data,
    )
