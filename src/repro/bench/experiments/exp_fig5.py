"""Fig. 5 — number of visited vertices over time.

BFS on every dataset; the paper observes near-linear growth of the
visited count over wall-clock time regardless of how many vertices are
active at each iteration (EtaGraph's throughput is consistent across
traversal stages).  We report the R^2 of a linear fit as the linearity
measure; Slashdot is the paper's stated exception (too few iterations).
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.bench import workloads
from repro.utils.tables import render_table


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = workloads.dataset_names(quick)
    # uk-2006's traversal visits 36 vertices in 4 iterations; the figure
    # is about sustained-throughput graphs, so the paper plots the others.
    names = [n for n in names if n != "uk-2006"]

    rows = []
    data = {}
    for ds in names:
        cell = run_cell(ctx, "etagraph", "bfs", ds)
        stats = cell.extras["stats"]
        series = stats.visited_over_time()
        r2 = stats.visited_growth_linearity()
        data[ds] = {"series": series, "r_squared": r2}
        rows.append([
            ds,
            len(series),
            series[-1][1] if series else 0,
            f"{series[-1][0]:.3f}" if series else "-",
            f"{r2:.4f}",
        ])

    text = render_table(
        ["dataset", "iterations", "visited", "elapsed ms", "linearity R^2"],
        rows,
        title="Fig. 5: visited vertices over time (BFS); near-linear "
              "growth => R^2 close to 1",
    )
    return ExperimentReport(
        experiment="fig5",
        title="Visited vertices over time",
        text=text,
        data=data,
    )
