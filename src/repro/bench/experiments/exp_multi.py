"""Multi-source batch amortization on a topology-resident session.

Data transfer "often dominates the total time" (Section I); a serving
deployment therefore keeps the topology resident and answers repeated
queries against warm state.  This experiment runs a batch of BFS
queries per memory mode through one :class:`EngineSession` and reports
the *measured* amortization: the shared setup equals the first query's
actual topology movement, and warm queries in the UM modes re-migrate
nothing while the graph fits the residency budget.

Not a paper table — this is the regression workload the CI bench-smoke
job diffs against a committed baseline (``benchmarks/baseline_pr2``).
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport
from repro.bench import workloads
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.multi import pick_sources, run_batch
from repro.utils.tables import render_table

DATASETS = ["slashdot", "livejournal"]

VARIANTS = {
    "etagraph": MemoryMode.UM_PREFETCH,
    "etagraph-noump": MemoryMode.UM_ON_DEMAND,
    "etagraph-noum": MemoryMode.DEVICE,
}

NUM_SOURCES = 8


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = [d for d in DATASETS if not quick or d == "slashdot"]

    rows = []
    data = {}
    for ds in names:
        csr, _ = ctx.load(ds, weighted=False)
        sources = pick_sources(csr, NUM_SOURCES, seed=2)
        for variant, mode in VARIANTS.items():
            cfg = EtaGraphConfig(memory_mode=mode)
            batch = run_batch(
                csr, sources, "bfs", config=cfg, device=ctx.device
            )
            first, rest = batch.results[0], batch.results[1:]
            warm_migrated = sum(
                sum(r.profiler.migration_sizes) for r in rest
            )
            data[(ds, variant)] = {
                "num_queries": len(batch.results),
                "shared_setup_ms": batch.shared_setup_ms,
                "first_setup_ms": first.setup_ms,
                "query_ms": batch.query_ms,
                "total_ms": batch.total_ms,
                "naive_total_ms": batch.naive_total_ms,
                "amortization_speedup": batch.amortization_speedup,
                "warm_migrated_bytes": warm_migrated,
            }
            rows.append([
                f"{ds} {variant}",
                f"{batch.shared_setup_ms:.3f}",
                f"{batch.query_ms:.3f}",
                f"{batch.total_ms:.3f}",
                f"{batch.naive_total_ms:.3f}",
                f"{batch.amortization_speedup:.2f}x",
                f"{warm_migrated // 1024} KiB",
            ])

    text = render_table(
        ["run", "setup ms", "queries ms", "batched ms", "naive ms",
         "speedup", "warm re-migration"],
        rows,
        title=f"Batch of {NUM_SOURCES} BFS sources on one warm session",
    )
    return ExperimentReport(
        experiment="multi",
        title="Multi-source batch amortization",
        text=text,
        data=data,
    )
