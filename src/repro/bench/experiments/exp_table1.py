"""Table I — theoretical space overhead and normalized usage.

Builds G-Shards, edge-list, VST (K=10) and CSR for the LiveJournal
surrogate and reports topology words normalized to CSR.  Paper values:
G-Shard 1.87, Edge List 1.87, VST 1.32, CSR 1.00.
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport
from repro.graph.edgelist import EdgeList
from repro.graph.gshard import GShards
from repro.graph.vst import VirtualSplitGraph
from repro.utils.tables import render_table

#: Table I computes |N| with K = 10.
VST_K = 10

PAPER_NORMALIZED = {
    "G-Shard": 1.87,
    "Edge List": 1.87,
    "VST": 1.32,
    "CSR": 1.00,
}


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    csr, _src = ctx.load("livejournal", weighted=False)
    base = csr.topology_words()

    measured = {
        "G-Shard": GShards.from_csr(csr).topology_words(),
        "Edge List": EdgeList.from_csr(csr).topology_words(),
        "VST": VirtualSplitGraph(csr, VST_K).topology_words(),
        "CSR": base,
    }
    normalized = {k: v / base for k, v in measured.items()}

    rows = [
        [name, f"{measured[name]:,}", f"{normalized[name]:.2f}",
         f"{PAPER_NORMALIZED[name]:.2f}"]
        for name in ("G-Shard", "Edge List", "VST", "CSR")
    ]
    text = render_table(
        ["structure", "topology words", "normalized", "paper"],
        rows,
        title="Table I: space overhead, LiveJournal surrogate "
              f"(|V|={csr.num_vertices:,}, |E|={csr.num_edges:,})",
    )
    return ExperimentReport(
        experiment="table1",
        title="Space overhead of graph layouts",
        text=text,
        data={"measured_words": measured, "normalized": normalized,
              "paper": PAPER_NORMALIZED},
    )
