"""Table I — theoretical space overhead and normalized usage.

Builds G-Shards, edge-list, VST (K=10), CSR and the delta-varint
compressed CSR for the LiveJournal surrogate and reports topology words
normalized to CSR, plus a ``bits_per_edge`` column for every format so
compressed layouts (which are not whole-word-per-edge) are accounted in
bits.  Paper values: G-Shard 1.87, Edge List 1.87, VST 1.32, CSR 1.00;
the compressed row is this repo's extension (the paper stores dense CSR
only) and lands below 1.00.
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport
from repro.graph.compressed import CompressedCSRGraph
from repro.graph.csr import WORD_BYTES
from repro.graph.edgelist import EdgeList
from repro.graph.gshard import GShards
from repro.graph.vst import VirtualSplitGraph
from repro.utils.tables import render_table

#: Table I computes |N| with K = 10.
VST_K = 10

PAPER_NORMALIZED = {
    "G-Shard": 1.87,
    "Edge List": 1.87,
    "VST": 1.32,
    "CSR": 1.00,
}

#: Row order in the rendered table (paper rows first, then ours).
_ROW_ORDER = ("G-Shard", "Edge List", "VST", "CSR", "Compressed CSR")


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    csr, _src = ctx.load("livejournal", weighted=False)
    base = csr.topology_words()
    compressed = CompressedCSRGraph(csr)

    measured = {
        "G-Shard": GShards.from_csr(csr).topology_words(),
        "Edge List": EdgeList.from_csr(csr).topology_words(),
        "VST": VirtualSplitGraph(csr, VST_K).topology_words(),
        "CSR": base,
        "Compressed CSR": compressed.topology_words(),
    }
    normalized = {k: v / base for k, v in measured.items()}
    # Whole-topology bits per edge.  Word-granular formats are exactly
    # ``words * 32 / |E|``; the compressed layout reports its measured
    # payload + offset bits (sub-word, so the word ceiling would
    # overstate it).
    bits_per_edge = {
        k: v * 8 * WORD_BYTES / csr.num_edges for k, v in measured.items()
    }
    bits_per_edge["Compressed CSR"] = compressed.total_bits_per_edge

    rows = [
        [name, f"{measured[name]:,}", f"{bits_per_edge[name]:.2f}",
         f"{normalized[name]:.2f}",
         f"{PAPER_NORMALIZED[name]:.2f}" if name in PAPER_NORMALIZED
         else "-"]
        for name in _ROW_ORDER
    ]
    text = render_table(
        ["structure", "topology words", "bits/edge", "normalized", "paper"],
        rows,
        title="Table I: space overhead, LiveJournal surrogate "
              f"(|V|={csr.num_vertices:,}, |E|={csr.num_edges:,})",
    )
    return ExperimentReport(
        experiment="table1",
        title="Space overhead of graph layouts",
        text=text,
        data={"measured_words": measured, "normalized": normalized,
              "bits_per_edge": bits_per_edge, "paper": PAPER_NORMALIZED,
              "num_vertices": csr.num_vertices, "num_edges": csr.num_edges},
    )
