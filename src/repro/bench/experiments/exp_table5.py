"""Table V — sizes of Unified Memory migrations.

SSSP on LiveJournal / Orkut / RMAT25 / uk-2005 with UMP disabled and
enabled; reports average / min / max migrated-chunk size.  Paper
behaviour: w/o UMP the driver merges contiguous faulting 4 KiB pages into
chunks of 4 KiB - ~1 MiB (average ~44 KiB); with UMP the prefetch moves
2 MiB chunks (smaller final remainders).

At 1/256 data scale the adjacency slices that fault together are 256x
smaller, so the measured w/o-UMP averages sit near the low end of the
paper's range; the structural signature — min at the 4 KiB page size, max
capped well below the prefetch chunk, UMP chunks at 2 MiB — is the
reproduced shape.
"""

from __future__ import annotations

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.bench import workloads
from repro.utils.tables import render_table

DATASETS = ["livejournal", "com-orkut", "rmat25", "uk-2005"]

PAPER_ROWS = {
    ("livejournal", False): (43.8, 4, 996),
    ("com-orkut", False): (44.3, 4, 924),
    ("rmat25", False): (44.3, 4, 964),
    ("uk-2005", False): (48.9, 4, 996),
    ("livejournal", True): (1974, 504, 2048),
    ("com-orkut", True): (1993, 1024, 2048),
    ("rmat25", True): (2048, 2048, 2048),
    ("uk-2005", True): (1998, 544, 2048),
}


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()
    names = [d for d in DATASETS if not quick or d in workloads.QUICK_DATASETS]

    rows = []
    data = {}
    for ump in (False, True):
        fw = "etagraph" if ump else "etagraph-noump"
        for ds in names:
            cell = run_cell(ctx, fw, "sssp", ds)
            prof = cell.extras["profiler"]
            avg, lo, hi = prof.migration_size_stats()
            label = f"{ds}{'' if ump else ' w/o UMP'}"
            data[(ds, ump)] = {
                "avg_kb": avg / 1024, "min_kb": lo / 1024, "max_kb": hi / 1024,
                "count": len(prof.migration_sizes),
            }
            paper = PAPER_ROWS[(ds, ump)]
            rows.append([
                label,
                f"{avg / 1024:.1f}",
                f"{lo / 1024:.0f}",
                f"{hi / 1024:.0f}",
                f"{paper[0]:.0f}/{paper[1]}/{paper[2]}",
                len(prof.migration_sizes),
            ])

    text = render_table(
        ["run", "avg KiB", "min KiB", "max KiB", "paper avg/min/max", "#migrations"],
        rows,
        title="Table V: size of migrated pages (SSSP)",
    )
    return ExperimentReport(
        experiment="table5",
        title="Unified Memory migration sizes",
        text=text,
        data=data,
    )
