"""One module per paper artifact (see DESIGN.md section 4).

Every module exposes ``run(quick: bool = False, ctx: BenchContext | None)
-> ExperimentReport``.
"""

from repro.bench.experiments import (  # noqa: F401
    exp_table1,
    exp_table2,
    exp_table3,
    exp_table4,
    exp_table5,
    exp_fig2,
    exp_fig3,
    exp_fig4,
    exp_fig5,
    exp_fig6,
    exp_fig7,
    exp_multi,
)

ALL_EXPERIMENTS = {
    "table1": exp_table1.run,
    "table2": exp_table2.run,
    "table3": exp_table3.run,
    "table4": exp_table4.run,
    "table5": exp_table5.run,
    "fig2": exp_fig2.run,
    "fig3": exp_fig3.run,
    "fig4": exp_fig4.run,
    "fig5": exp_fig5.run,
    "fig6": exp_fig6.run,
    "fig7": exp_fig7.run,
    "multi": exp_multi.run,
}
