"""Fig. 2 — active vertices per iteration and cumulative distribution.

BFS on LiveJournal and com-Orkut.  The paper's shape: the active count
grows exponentially over the first few iterations, peaks, then decays
exponentially; the cumulative share stays low initially, then rises
sharply to ~1.
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.utils.tables import render_table

DATASETS = ["livejournal", "com-orkut"]


def run(quick: bool = False, ctx: BenchContext | None = None) -> ExperimentReport:
    ctx = ctx or BenchContext()

    sections = []
    data = {}
    for ds in DATASETS:
        cell = run_cell(ctx, "etagraph", "bfs", ds)
        stats = cell.extras["stats"]
        active = stats.active_per_iteration()
        cum = stats.cumulative_active_fraction()
        peak = int(np.argmax(active))
        data[ds] = {
            "active": active.tolist(),
            "cumulative": cum.tolist(),
            "peak_iteration": peak,
        }
        rows = [
            [i, int(a), f"{c:.4f}"]
            for i, (a, c) in enumerate(zip(active, cum))
        ]
        from repro.utils.charts import bar_chart

        sections.append(render_table(
            ["iteration", "active vertices", "cumulative fraction"],
            rows,
            title=f"Fig. 2: vertex activation of {ds} (BFS), "
                  f"peak at iteration {peak}",
        ) + "\n" + bar_chart(
            active.tolist(), title=f"{ds}: active vertices per iteration"
        ))

    return ExperimentReport(
        experiment="fig2",
        title="Active vertices per iteration",
        text="\n\n".join(sections),
        data=data,
    )
