"""CLI for regenerating paper artifacts.

Usage::

    python -m repro.bench               # list experiments
    python -m repro.bench table3        # run one (full datasets)
    python -m repro.bench all --quick   # everything, small datasets only
    python -m repro.bench all --jobs 4  # same results, process-parallel
    python -m repro.bench perf          # simulator wall-clock harness
    python -m repro.bench serve         # closed-loop serving load bench
    python -m repro.bench msbfs         # MSBFS wave vs sequential batch
    python -m repro.bench compress      # compressed topology + placements
    python -m repro.bench compare A B   # diff two --json-dir outputs
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.runner import run_experiments


def _compare(argv: list[str]) -> int:
    """``compare A B``: diff two saved report directories; exit 1 on
    drift beyond tolerance so CI can gate on it."""
    from repro.bench.compare import compare_dirs, render

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench compare",
        description="Diff two --json-dir outputs; nonzero exit on drift.",
    )
    parser.add_argument("baseline", help="directory with baseline reports")
    parser.add_argument("candidate", help="directory with new reports")
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative drift tolerance (default 0.05)",
    )
    parser.add_argument(
        "--wall-tolerance", type=float, default=0.75,
        help="relative tolerance for wall_* (host wall-clock) metrics; "
        "only *regressions* are flagged (default 0.75)",
    )
    args = parser.parse_args(argv)
    from pathlib import Path

    for label, d in (("baseline", args.baseline), ("candidate", args.candidate)):
        if not list(Path(d).glob("*.json")):
            print(f"{label} directory {d!r} has no reports", file=sys.stderr)
            return 2
    drifts = compare_dirs(
        args.baseline, args.candidate, rel_tolerance=args.tolerance,
        wall_tolerance=args.wall_tolerance,
    )
    print(render(drifts))
    return 1 if drifts else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["compare"]:
        return _compare(argv[1:])
    if argv[:1] == ["perf"]:
        from repro.perf.harness import main as perf_main

        return perf_main(argv[1:])
    if argv[:1] == ["serve"]:
        from repro.serving.loadgen import main as serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["msbfs"]:
        from repro.perf.msbfs import main as msbfs_main

        return msbfs_main(argv[1:])
    if argv[:1] == ["compress"]:
        from repro.perf.compress import main as compress_main

        return compress_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"one of: {', '.join(sorted(ALL_EXPERIMENTS))}, 'all', "
        "'perf', 'serve', 'msbfs', 'compress', or 'compare A B'",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="restrict to the small datasets (fast)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="run experiments over N worker processes (same output as "
        "serial, merged in order)",
    )
    parser.add_argument(
        "--json-dir", default=None,
        help="also save each report's data as JSON into this directory",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="record a Chrome trace-event file per EtaGraph cell into "
        "this directory (including O.O.M/ERR cells)",
    )
    args = parser.parse_args(argv)

    if args.experiment is None:
        print("available experiments:")
        for name in sorted(ALL_EXPERIMENTS):
            print(f"  {name}")
        print("  perf  (simulator wall-clock harness)")
        print("  msbfs (MSBFS wave vs sequential batch)")
        print("  compress (compressed topology + placement throughput)")
        return 0

    if args.experiment == "all":
        names = sorted(ALL_EXPERIMENTS)
    elif args.experiment in ALL_EXPERIMENTS:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    out_dir = None
    if args.json_dir:
        from pathlib import Path

        out_dir = Path(args.json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)

    for run in run_experiments(
        names, quick=args.quick, jobs=args.jobs, trace_dir=args.trace_dir,
    ):
        print(run.text)
        print(f"[{run.name} completed in {run.elapsed_s:.1f}s]\n")
        if out_dir is not None:
            # Same bytes as export.save_report on the live report.
            (out_dir / f"{run.name}.json").write_text(
                json.dumps(run.report_dict, indent=2)
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
