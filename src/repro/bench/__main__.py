"""CLI for regenerating paper artifacts.

Usage::

    python -m repro.bench               # list experiments
    python -m repro.bench table3        # run one (full datasets)
    python -m repro.bench all --quick   # everything, small datasets only
    python -m repro.bench compare A B   # diff two --json-dir outputs
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.runner import BenchContext


def _compare(argv: list[str]) -> int:
    """``compare A B``: diff two saved report directories; exit 1 on
    drift beyond tolerance so CI can gate on it."""
    from repro.bench.compare import compare_dirs, render

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench compare",
        description="Diff two --json-dir outputs; nonzero exit on drift.",
    )
    parser.add_argument("baseline", help="directory with baseline reports")
    parser.add_argument("candidate", help="directory with new reports")
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative drift tolerance (default 0.05)",
    )
    args = parser.parse_args(argv)
    from pathlib import Path

    for label, d in (("baseline", args.baseline), ("candidate", args.candidate)):
        if not list(Path(d).glob("*.json")):
            print(f"{label} directory {d!r} has no reports", file=sys.stderr)
            return 2
    drifts = compare_dirs(
        args.baseline, args.candidate, rel_tolerance=args.tolerance
    )
    print(render(drifts))
    return 1 if drifts else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["compare"]:
        return _compare(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"one of: {', '.join(sorted(ALL_EXPERIMENTS))}, or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="restrict to the small datasets (fast)",
    )
    parser.add_argument(
        "--json-dir", default=None,
        help="also save each report's data as JSON into this directory",
    )
    args = parser.parse_args(argv)

    if args.experiment is None:
        print("available experiments:")
        for name in sorted(ALL_EXPERIMENTS):
            print(f"  {name}")
        return 0

    if args.experiment == "all":
        names = sorted(ALL_EXPERIMENTS)
    elif args.experiment in ALL_EXPERIMENTS:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        return 2

    ctx = BenchContext()
    for name in names:
        t0 = time.time()
        report = ALL_EXPERIMENTS[name](quick=args.quick, ctx=ctx)
        print(report.text)
        print(f"[{name} completed in {time.time() - t0:.1f}s]\n")
        if args.json_dir:
            from pathlib import Path

            from repro.bench.export import save_report

            out_dir = Path(args.json_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            save_report(report, out_dir / f"{name}.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
