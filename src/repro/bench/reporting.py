"""Rendering helpers for experiment reports."""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import CellResult
from repro.utils.tables import render_table


def grid_table(
    title: str,
    row_keys: Sequence[str],
    col_keys: Sequence[str],
    cells: dict[tuple[str, str], CellResult],
    *,
    etagraph_rows: Sequence[str] = (),
) -> str:
    """Render a framework x dataset grid the way Table III prints it."""
    rows = []
    for row in row_keys:
        cols = []
        for col in col_keys:
            cell = cells.get((row, col))
            if cell is None:
                cols.append("-")
            else:
                cols.append(cell.cell_text(etagraph_style=row in etagraph_rows))
        rows.append([row, *cols])
    return render_table(["framework", *col_keys], rows, title=title)


def ratio(a: float, b: float) -> float:
    """Safe ratio for speedup reporting."""
    if b == 0:
        return float("inf")
    return a / b


def fmt_speedup(x: float) -> str:
    return f"{x:.2f}x"
