"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment module exposes ``run(quick=False) -> ExperimentReport``;
the ``benchmarks/`` pytest-benchmark suite wraps them one-to-one.  See
DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.bench.runner import BenchContext, ExperimentReport, run_cell
from repro.bench import workloads, reporting

__all__ = [
    "BenchContext",
    "ExperimentReport",
    "run_cell",
    "workloads",
    "reporting",
]
