"""Experiment orchestration: run one (framework, algorithm, dataset) cell.

``run_cell`` is the single execution path every experiment uses: it loads
the (cached) surrogate dataset, instantiates the requested engine on the
capacity-scaled device, and returns a uniform :class:`CellResult` — with
``oom=True`` instead of timings when the framework exhausts device memory,
exactly how Table III reports it.

:func:`run_experiments` is the multi-experiment driver behind
``python -m repro.bench all``: serial by default, or fanned out over a
process pool with ``jobs > 1``.  Parallel mode is *observationally
identical* to serial mode — every experiment seeds its own RNGs (no
global random state exists in the suite), results are merged back in
request order, and the saved JSON is byte-for-byte what the serial path
writes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import get_framework
from repro.bench import workloads
from repro.core.api import EtaGraph
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.errors import ConfigError, DeviceOutOfMemoryError, ReproError
from repro.graph import datasets
from repro.gpu.device import DeviceSpec


@dataclass
class CellResult:
    """One cell of a results grid."""

    framework: str
    algorithm: str
    dataset: str
    oom: bool = False
    #: Name of the non-OOM ``ReproError`` type that killed the run, if
    #: any.  Only typed errors land here — anything else propagates, so
    #: fault-injected bench runs can't silently swallow real bugs.
    error: str | None = None
    kernel_ms: float = float("nan")
    total_ms: float = float("nan")
    iterations: int = 0
    labels: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    def cell_text(self, etagraph_style: bool = False) -> str:
        """Render like the paper: ``t_kernel/t_total`` for baselines,
        a single total for EtaGraph variants, ``O.O.M`` on exhaustion,
        ``ERR:<Type>`` for any other typed failure."""
        if self.oom:
            return "O.O.M"
        if self.error is not None:
            return f"ERR:{self.error}"
        if etagraph_style:
            return f"{self.total_ms:.3f}"
        return f"{self.kernel_ms:.3f}/{self.total_ms:.3f}"


@dataclass
class ExperimentReport:
    """What every experiment's ``run`` returns."""

    experiment: str
    title: str
    text: str
    data: dict

    def __str__(self) -> str:
        return self.text


class BenchContext:
    """Caches loaded datasets across experiments within one process.

    ``trace_dir`` (optional) turns on per-cell telemetry for EtaGraph
    cells: every cell writes a Chrome trace-event file there — including
    cells that end in ``O.O.M``/``ERR:<Type>``, whose partial trace is
    the diagnosis — and records its path in
    ``cell.extras["trace_path"]``.
    """

    def __init__(self, device: DeviceSpec | None = None, trace_dir=None):
        self.device = device or workloads.bench_device()
        self.trace_dir = trace_dir
        self._graphs: dict[tuple[str, bool], tuple] = {}

    def load(self, name: str, weighted: bool):
        key = (name, weighted)
        if key not in self._graphs:
            self._graphs[key] = datasets.load(name, weighted=weighted)
        return self._graphs[key]


def _etagraph_config(variant: str) -> EtaGraphConfig:
    if variant == "etagraph":
        return EtaGraphConfig()
    if variant == "etagraph-noump":
        return EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
    if variant == "etagraph-nosmp":
        return EtaGraphConfig(smp=False)
    if variant == "etagraph-noum":
        return EtaGraphConfig(memory_mode=MemoryMode.DEVICE)
    raise ConfigError(f"unknown EtaGraph variant {variant!r}")


def run_cell(
    ctx: BenchContext,
    framework: str,
    algorithm: str,
    dataset: str,
    *,
    keep_labels: bool = False,
) -> CellResult:
    """Execute one grid cell; OOM becomes a marked cell, and any other
    typed ``ReproError`` becomes an ``ERR:<Type>`` cell.  Untyped
    exceptions propagate — a bench run must never mask a real bug."""
    weighted = algorithm in ("sssp", "sswp")
    csr, source = ctx.load(dataset, weighted)
    cell = CellResult(framework=framework, algorithm=algorithm, dataset=dataset)
    # Resolve the framework/config before entering the guarded region: an
    # unknown variant is a caller bug and must raise, not become a cell.
    is_etagraph = framework.startswith("etagraph")
    cfg = _etagraph_config(framework) if is_etagraph else None
    fw = None if is_etagraph else get_framework(framework, ctx.device)
    try:
        if is_etagraph and ctx.trace_dir is not None:
            result = _run_traced_etagraph(
                ctx, cell, csr, cfg, algorithm, source
            )
        elif is_etagraph:
            result = EtaGraph(csr, cfg, ctx.device).run(algorithm, source)
        else:
            result = fw.run(csr, algorithm, source)
        cell.kernel_ms = result.kernel_ms
        cell.total_ms = result.total_ms
        cell.iterations = result.iterations
        if is_etagraph:
            cell.extras.update(
                stats=result.stats,
                timeline=result.timeline,
                profiler=result.profiler,
                oversubscribed=result.oversubscribed,
            )
        else:
            cell.extras.update(profiler=result.profiler)
        if keep_labels:
            cell.labels = result.labels
    except DeviceOutOfMemoryError:
        cell.oom = True
    except ReproError as exc:
        cell.error = type(exc).__name__
    return cell


def _run_traced_etagraph(
    ctx: BenchContext,
    cell: CellResult,
    csr,
    cfg: EtaGraphConfig,
    algorithm: str,
    source: int,
):
    """One EtaGraph cell with telemetry: the engine session records into
    an externally-owned tracer so the trace survives a typed failure, and
    the Chrome trace file lands next to the cell either way (its path in
    ``cell.extras["trace_path"]``).  ``EtaGraph.run`` is a session-of-one
    over the same :class:`~repro.core.session.EngineSession` code path,
    so timings and labels are bit-identical to the untraced cell."""
    from pathlib import Path

    from repro.core.session import EngineSession
    from repro.observability.export import write_chrome_trace
    from repro.observability.spans import Tracer

    trace_dir = Path(ctx.trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    path = trace_dir / f"{cell.framework}-{cell.algorithm}-{cell.dataset}.json"
    tracer = Tracer()
    try:
        with EngineSession(csr, cfg, ctx.device) as session:
            session.tracer = tracer
            return session.query(algorithm, source)
    except BaseException as exc:
        # Close whatever the failure left open, then let run_cell's typed
        # handling decide the cell's fate.
        tracer.unwind(tracer.max_end_ms, error=type(exc).__name__)
        raise
    finally:
        write_chrome_trace(
            tracer.trace(
                framework=cell.framework, algorithm=cell.algorithm,
                dataset=cell.dataset, source=source,
            ),
            path,
        )
        cell.extras["trace_path"] = str(path)


def error_taxonomy(cells) -> dict:
    """Count an iterable of :class:`CellResult` by outcome, mirroring how
    the paper tabulates O.O.M: ``{"ok": n, "oom": n, "errors": {type: n}}``."""
    taxonomy: dict = {"ok": 0, "oom": 0, "errors": {}}
    for cell in cells:
        if cell.oom:
            taxonomy["oom"] += 1
        elif cell.error is not None:
            taxonomy["errors"][cell.error] = \
                taxonomy["errors"].get(cell.error, 0) + 1
        else:
            taxonomy["ok"] += 1
    return taxonomy


# ----------------------------------------------------------------------
# Multi-experiment driver (serial or process-parallel)
# ----------------------------------------------------------------------


@dataclass
class ExperimentRun:
    """One completed experiment: the rendered report (as a plain dict so
    it crosses process boundaries losslessly) plus its wall time."""

    name: str
    text: str
    report_dict: dict
    elapsed_s: float


def _run_one(name: str, quick: bool, ctx: "BenchContext | None",
             trace_dir=None) -> ExperimentRun:
    # Imported here: the experiment modules import this module.
    from repro.bench.experiments import ALL_EXPERIMENTS
    from repro.bench.export import report_to_dict

    t0 = time.time()
    report = ALL_EXPERIMENTS[name](
        quick=quick, ctx=ctx or BenchContext(trace_dir=trace_dir)
    )
    return ExperimentRun(
        name=name,
        text=report.text,
        report_dict=report_to_dict(report),
        elapsed_s=time.time() - t0,
    )


def _run_one_job(args: tuple[str, bool, object]) -> ExperimentRun:
    """Process-pool entry point: fresh context per worker invocation."""
    name, quick, trace_dir = args
    return _run_one(name, quick, None, trace_dir)


def run_experiments(
    names: list[str], *, quick: bool = False, jobs: int = 1,
    trace_dir=None,
):
    """Yield one :class:`ExperimentRun` per name, always in ``names``
    order.  ``jobs > 1`` fans the experiments out over a process pool
    (results still stream back in order); the report dicts are identical
    to what a serial run produces.  ``trace_dir`` enables per-cell
    telemetry (see :class:`BenchContext`); trace files are written by
    whichever process runs the cell."""
    if jobs <= 1 or len(names) <= 1:
        ctx = BenchContext(trace_dir=trace_dir)
        for name in names:
            yield _run_one(name, quick, ctx)
        return

    import multiprocessing as mp

    # spawn (not fork): workers start from a clean interpreter, so no
    # inherited module/RNG/threading state can differ from a fresh
    # serial run.
    with mp.get_context("spawn").Pool(min(jobs, len(names))) as pool:
        yield from pool.imap(
            _run_one_job, [(name, quick, trace_dir) for name in names],
            chunksize=1,
        )
