"""Workload definitions shared by the experiment modules.

One place decides which datasets each experiment sweeps, which device
capacity is used (the paper's 11 GiB scaled by the dataset scale factor),
and what "quick mode" trims for CI-speed runs.
"""

from __future__ import annotations

from repro.graph import datasets
from repro.gpu.device import DeviceSpec, GTX_1080TI

#: Table III frameworks, in row order.
TABLE3_FRAMEWORKS = ("cusha", "gunrock", "tigr", "etagraph", "etagraph-noump")

#: Table III / IV datasets, in column order (Table II order).
FULL_DATASETS = list(datasets.ALL_DATASETS)

#: Quick-mode subset: the three graphs that fit every framework.
QUICK_DATASETS = ["slashdot", "livejournal", "com-orkut"]

#: Algorithms in Table III row-group order.
ALGORITHMS = ("bfs", "sssp", "sswp")

#: SSWP is only reported for Tigr and EtaGraph in the paper (CuSha and
#: Gunrock don't ship it).
SSWP_FRAMEWORKS = ("tigr", "etagraph", "etagraph-noump")


def bench_device() -> DeviceSpec:
    """The paper's GTX 1080 Ti with capacity scaled to the dataset scale."""
    return GTX_1080TI.with_capacity(datasets.scaled_device_capacity())


def dataset_names(quick: bool) -> list[str]:
    return QUICK_DATASETS if quick else FULL_DATASETS


def frameworks_for(algorithm: str) -> tuple[str, ...]:
    return SSWP_FRAMEWORKS if algorithm == "sswp" else TABLE3_FRAMEWORKS
