"""Compare two saved reproduction runs (JSON report directories).

``python -m repro.bench all --json-dir runs/A`` twice (e.g. before and
after a model change) and then::

    python -c "from repro.bench.compare import compare_dirs, render; \
               print(render(compare_dirs('runs/A', 'runs/B')))"

flags every numeric leaf whose relative drift exceeds a tolerance —
mechanical regression checking for the *shapes*, complementing the bench
suite's hard assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.bench.export import load_report_dict
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Drift:
    """One numeric leaf that moved between runs."""

    experiment: str
    path: str
    before: float
    after: float

    @property
    def rel_change(self) -> float:
        """Relative drift; infinite when a zero metric became non-zero
        (render such drifts as ``0 → x``, not as a percentage)."""
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / abs(self.before)

    @property
    def change_text(self) -> str:
        """Human-readable drift: a percentage when well-defined, an
        explicit ``0 → x`` transition when the baseline was zero."""
        if self.before == 0:
            return f"0 → {self.after:g}" if self.after else "unchanged"
        return f"{100 * self.rel_change:+.1f}%"


def _walk(value, path=""):
    """Yield (path, leaf) for every numeric leaf."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, float(value)
    elif isinstance(value, dict):
        for k, v in value.items():
            yield from _walk(v, f"{path}.{k}" if path else str(k))
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from _walk(v, f"{path}[{i}]")


def compare_reports(
    before: dict, after: dict, *, rel_tolerance: float = 0.05
) -> list[Drift]:
    """Numeric leaves present in both reports that drifted beyond
    ``rel_tolerance`` (relative)."""
    name = before.get("experiment", "?")
    b = dict(_walk(before.get("data", {})))
    a = dict(_walk(after.get("data", {})))
    drifts = []
    for path in sorted(set(b) & set(a)):
        x, y = b[path], a[path]
        denom = max(abs(x), 1e-12)
        if abs(y - x) / denom > rel_tolerance:
            drifts.append(Drift(experiment=name, path=path, before=x, after=y))
    return drifts


def compare_dirs(
    dir_a: str | Path, dir_b: str | Path, *, rel_tolerance: float = 0.05
) -> list[Drift]:
    """Compare all same-named ``<experiment>.json`` files in two dirs."""
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    drifts: list[Drift] = []
    for file_a in sorted(dir_a.glob("*.json")):
        file_b = dir_b / file_a.name
        if not file_b.exists():
            continue
        drifts.extend(compare_reports(
            load_report_dict(file_a), load_report_dict(file_b),
            rel_tolerance=rel_tolerance,
        ))
    return drifts


def render(drifts: list[Drift]) -> str:
    """Human-readable drift summary."""
    if not drifts:
        return "no drift beyond tolerance"
    rows = [
        [d.experiment, d.path, f"{d.before:g}", f"{d.after:g}",
         d.change_text]
        for d in drifts
    ]
    return render_table(
        ["experiment", "metric", "before", "after", "change"], rows,
        title=f"{len(drifts)} drifted metrics",
    )
