"""Compare two saved reproduction runs (JSON report directories).

``python -m repro.bench all --json-dir runs/A`` twice (e.g. before and
after a model change) and then::

    python -c "from repro.bench.compare import compare_dirs, render; \
               print(render(compare_dirs('runs/A', 'runs/B')))"

flags every numeric leaf whose relative drift exceeds a tolerance —
mechanical regression checking for the *shapes*, complementing the bench
suite's hard assertions.

Two tolerance regimes exist.  Ordinary leaves are deterministic
simulator outputs and get the tight ``rel_tolerance`` in both
directions.  Leaves whose key starts with ``wall_`` are **host
wall-clock** measurements from :mod:`repro.perf` — noisy across
machines, and only bad in one direction — so they get the generous
``wall_tolerance`` and are flagged only when they *regress* (throughput
``wall_*_per_sec`` falling, any other ``wall_*`` time rising).  A faster
candidate never fails the gate.

``bits_*`` leaves (``bits_per_edge``, ``bits_per_node`` — compression
density from :mod:`repro.perf.compress` and Table I) are deterministic
but also one-sided: a *denser* encoding is an improvement, so they use
the tight ``rel_tolerance`` and are flagged only when they **rise**.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.bench.export import load_report_dict
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Drift:
    """One numeric leaf that moved between runs."""

    experiment: str
    path: str
    before: float
    after: float

    @property
    def rel_change(self) -> float:
        """Relative drift; infinite when a zero metric became non-zero
        (render such drifts as ``0 → x``, not as a percentage)."""
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / abs(self.before)

    @property
    def change_text(self) -> str:
        """Human-readable drift: a percentage when well-defined, an
        explicit ``0 → x`` transition when the baseline was zero."""
        if self.before == 0:
            return f"0 → {self.after:g}" if self.after else "unchanged"
        return f"{100 * self.rel_change:+.1f}%"


def _walk(value, path=""):
    """Yield (path, leaf) for every numeric leaf."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, float(value)
    elif isinstance(value, dict):
        for k, v in value.items():
            yield from _walk(v, f"{path}.{k}" if path else str(k))
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from _walk(v, f"{path}[{i}]")


def is_wall_metric(path: str) -> bool:
    """Whether a leaf path is a host wall-clock measurement."""
    return path.rsplit(".", 1)[-1].startswith("wall_")


def is_bits_metric(path: str) -> bool:
    """Whether a leaf path is a compression-density measurement
    (``bits_per_edge`` / ``bits_per_node`` style)."""
    return path.rsplit(".", 1)[-1].startswith("bits_")


def _wall_regressed(path: str, before: float, after: float,
                    tolerance: float) -> bool:
    """Direction-aware gate for wall metrics: throughputs may not fall,
    times may not rise, each by more than ``tolerance`` (relative)."""
    denom = max(abs(before), 1e-12)
    if "per_sec" in path.rsplit(".", 1)[-1]:
        return (before - after) / denom > tolerance
    return (after - before) / denom > tolerance


def compare_reports(
    before: dict, after: dict, *, rel_tolerance: float = 0.05,
    wall_tolerance: float = 0.75,
) -> list[Drift]:
    """Numeric leaves present in both reports that drifted beyond
    tolerance — ``rel_tolerance`` (symmetric) for deterministic leaves,
    ``wall_tolerance`` (regressions only) for ``wall_*`` leaves."""
    name = before.get("experiment", "?")
    b = dict(_walk(before.get("data", {})))
    a = dict(_walk(after.get("data", {})))
    drifts = []
    for path in sorted(set(b) & set(a)):
        x, y = b[path], a[path]
        if is_wall_metric(path):
            if _wall_regressed(path, x, y, wall_tolerance):
                drifts.append(
                    Drift(experiment=name, path=path, before=x, after=y)
                )
            continue
        if is_bits_metric(path):
            # Direction-aware but tight: the encoding is deterministic,
            # and only *losing* density is a regression.
            if (y - x) / max(abs(x), 1e-12) > rel_tolerance:
                drifts.append(
                    Drift(experiment=name, path=path, before=x, after=y)
                )
            continue
        denom = max(abs(x), 1e-12)
        if abs(y - x) / denom > rel_tolerance:
            drifts.append(Drift(experiment=name, path=path, before=x, after=y))
    return drifts


def compare_dirs(
    dir_a: str | Path, dir_b: str | Path, *, rel_tolerance: float = 0.05,
    wall_tolerance: float = 0.75,
) -> list[Drift]:
    """Compare all same-named ``<experiment>.json`` files in two dirs."""
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    drifts: list[Drift] = []
    for file_a in sorted(dir_a.glob("*.json")):
        file_b = dir_b / file_a.name
        if not file_b.exists():
            continue
        drifts.extend(compare_reports(
            load_report_dict(file_a), load_report_dict(file_b),
            rel_tolerance=rel_tolerance, wall_tolerance=wall_tolerance,
        ))
    return drifts


def render(drifts: list[Drift]) -> str:
    """Human-readable drift summary."""
    if not drifts:
        return "no drift beyond tolerance"
    rows = [
        [d.experiment, d.path, f"{d.before:g}", f"{d.after:g}",
         d.change_text]
        for d in drifts
    ]
    return render_table(
        ["experiment", "metric", "before", "after", "change"], rows,
        title=f"{len(drifts)} drifted metrics",
    )
