"""Single-Source Shortest Path as label propagation.

Frontier-based Bellman-Ford relaxation, the standard GPU formulation
(Harish & Narayanan; Gunrock's SSSP): distances start at +inf, active
vertices push ``dist + w`` along out-edges, ``atomicMin`` merges.  With
non-uniform weights a vertex can activate multiple times (Section II-C);
the iteration count therefore exceeds the BFS depth on weighted graphs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import TraversalProblem

UNREACHED = np.float32(np.inf)


class SSSP(TraversalProblem):
    """Frontier Bellman-Ford over the (min, +) semiring."""

    name = "sssp"
    needs_weights = True
    instr_per_edge = 10.0

    def initial_labels(self, num_vertices: int, source: int) -> np.ndarray:
        labels = self._float_labels(num_vertices, UNREACHED)
        labels[source] = 0.0
        return labels

    def candidates(
        self, src_labels: np.ndarray, edge_weights: np.ndarray | None
    ) -> np.ndarray:
        if edge_weights is None:
            raise ValueError("SSSP candidates need edge weights")
        return src_labels + edge_weights

    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        return candidate < current

    def scatter_reduce(
        self, labels: np.ndarray, dst: np.ndarray, candidates: np.ndarray
    ) -> None:
        np.minimum.at(labels, dst, candidates)
