"""Single-Source Widest Path as label propagation.

The label is the best bottleneck capacity from the source: the source
gets +inf, everything else 0; along an edge of weight ``w`` the candidate
is ``min(label, w)``; ``atomicMax`` merges (the (max, min) semiring).
Like SSSP, vertices can activate repeatedly on non-uniform weights.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import TraversalProblem

UNREACHED = np.float32(0.0)


class SSWP(TraversalProblem):
    """Widest path over the (max, min) semiring."""

    name = "sswp"
    needs_weights = True
    instr_per_edge = 10.0

    def initial_labels(self, num_vertices: int, source: int) -> np.ndarray:
        labels = self._float_labels(num_vertices, UNREACHED)
        labels[source] = np.inf
        return labels

    def candidates(
        self, src_labels: np.ndarray, edge_weights: np.ndarray | None
    ) -> np.ndarray:
        if edge_weights is None:
            raise ValueError("SSWP candidates need edge weights")
        return np.minimum(src_labels, edge_weights)

    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        return candidate > current

    def scatter_reduce(
        self, labels: np.ndarray, dst: np.ndarray, candidates: np.ndarray
    ) -> None:
        np.maximum.at(labels, dst, candidates)
