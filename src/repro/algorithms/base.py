"""The traversal-problem interface shared by every engine.

A problem is defined by four pieces (Definition 1 of the paper phrased as
code): the initial label vector, the per-edge candidate computation, the
improvement predicate, and the atomic reduction that merges concurrent
updates (``atomicMin``/``atomicMax`` on real hardware, ``np.minimum.at`` /
``np.maximum.at`` here — both are order-insensitive, which is what makes
the GPU's nondeterministic scheduling safe).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import WEIGHT_DTYPE


class TraversalProblem(ABC):
    """One traversal algorithm expressed as label propagation."""

    #: Short name used in benchmark tables ("bfs", "sssp", "sswp").
    name: str = "?"
    #: Whether edge weights must be present on the input graph.
    needs_weights: bool = False
    #: Extra ALU instructions per scanned edge in the kernel cost model
    #: (weight handling costs a little more than BFS's +1).
    instr_per_edge: float = 8.0

    @abstractmethod
    def initial_labels(self, num_vertices: int, source: int) -> np.ndarray:
        """Label vector before iteration 0 (float32)."""

    def initial_frontier(self, num_vertices: int, source: int) -> np.ndarray:
        """Vertices active at iteration 0.

        Single-source traversals (the default) start from ``source``;
        all-active problems like connected components override this.
        """
        return np.array([source], dtype=np.int64)

    @abstractmethod
    def candidates(
        self, src_labels: np.ndarray, edge_weights: np.ndarray | None
    ) -> np.ndarray:
        """Candidate label pushed along each edge, given the source label."""

    @abstractmethod
    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        """Boolean mask: would ``candidate`` update ``current``?"""

    @abstractmethod
    def scatter_reduce(
        self, labels: np.ndarray, dst: np.ndarray, candidates: np.ndarray
    ) -> None:
        """Atomically merge candidates into ``labels`` at ``dst`` (in place)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def check_graph(self, csr) -> None:
        """Validate that the graph satisfies this problem's requirements."""
        if self.needs_weights and csr.edge_weights is None:
            raise ConfigError(f"{self.name} requires an edge-weighted graph")
        if self.needs_weights and csr.num_edges:
            w = csr.edge_weights
            if not np.isfinite(w).all():
                raise ConfigError(
                    f"{self.name} requires finite edge weights "
                    "(found NaN or infinity)"
                )
            if w.min() <= 0:
                raise ConfigError(
                    f"{self.name} requires strictly positive edge weights"
                )

    def reached_mask(self, labels: np.ndarray, source: int) -> np.ndarray:
        """Vertices whose final label differs from the unreached initial."""
        init = self.initial_labels(len(labels), source)
        init_unreached = init[np.arange(len(labels)) != source]
        if len(init_unreached) == 0:
            return np.ones(len(labels), dtype=bool)
        sentinel = init_unreached[0]
        mask = labels != sentinel
        mask[source] = True
        return mask

    @staticmethod
    def _float_labels(num_vertices: int, fill: float) -> np.ndarray:
        return np.full(num_vertices, fill, dtype=WEIGHT_DTYPE)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Names of the three paper algorithms, in Table III order.
PROBLEMS: tuple[str, ...] = ("bfs", "sssp", "sswp")


def get_problem(name: str) -> TraversalProblem:
    """Look up a problem instance by name ("bfs", "sssp", "sswp", "cc")."""
    from repro.algorithms.bfs import BFS
    from repro.algorithms.cc import ConnectedComponents
    from repro.algorithms.sssp import SSSP
    from repro.algorithms.sswp import SSWP

    registry = {"bfs": BFS, "sssp": SSSP, "sswp": SSWP,
                "cc": ConnectedComponents}
    try:
        return registry[name.lower()]()
    except KeyError:
        raise ConfigError(
            f"unknown traversal problem {name!r}; known: {sorted(registry)}"
        ) from None
