"""Serial CPU reference implementations — correctness oracles.

Every engine in the repo (EtaGraph and the three baselines) is tested
against these: BFS levels via level-synchronous expansion, SSSP via
Dijkstra (scipy's heap implementation), SSWP via a Dijkstra-style
widest-path search.  They favour obviousness over speed.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph, WEIGHT_DTYPE


def bfs_levels(csr: CSRGraph, source: int) -> np.ndarray:
    """BFS level of every vertex (inf if unreachable)."""
    n = csr.num_vertices
    levels = np.full(n, np.inf, dtype=WEIGHT_DTYPE)
    levels[source] = 0.0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for v in frontier:
            for u in csr.neighbors(v):
                if levels[u] == np.inf:
                    levels[u] = depth
                    nxt.append(int(u))
        frontier = nxt
    return levels


def sssp_distances(csr: CSRGraph, source: int) -> np.ndarray:
    """Shortest-path distance of every vertex (inf if unreachable)."""
    import scipy.sparse.csgraph as csgraph

    dist = csgraph.dijkstra(
        csr.to_scipy(), directed=True, indices=source
    )
    return dist.astype(WEIGHT_DTYPE)


def sswp_widths(csr: CSRGraph, source: int) -> np.ndarray:
    """Widest-path (maximum bottleneck) label of every vertex.

    Dijkstra with the (max, min) semiring: repeatedly settle the vertex
    with the widest known path; 0 marks unreachable, inf the source.
    """
    if csr.edge_weights is None:
        raise ValueError("SSWP reference needs edge weights")
    n = csr.num_vertices
    width = np.zeros(n, dtype=np.float64)
    width[source] = np.inf
    settled = np.zeros(n, dtype=bool)
    heap = [(-np.inf, source)]
    while heap:
        neg_w, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        w_v = -neg_w
        nbrs = csr.neighbors(v)
        wts = csr.neighbor_weights(v)
        for u, ew in zip(nbrs, wts):
            cand = min(w_v, float(ew))
            if cand > width[u]:
                width[u] = cand
                heapq.heappush(heap, (-cand, int(u)))
    return width.astype(WEIGHT_DTYPE)


def reference_labels(csr: CSRGraph, source: int, problem_name: str) -> np.ndarray:
    """Dispatch helper used by the test suite."""
    if problem_name == "bfs":
        return bfs_levels(csr, source)
    if problem_name == "sssp":
        return sssp_distances(csr, source)
    if problem_name == "sswp":
        return sswp_widths(csr, source)
    raise ValueError(f"unknown problem {problem_name!r}")
