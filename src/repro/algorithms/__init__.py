"""Graph-traversal problem definitions (Section II-C).

BFS, SSSP and SSWP are all label-propagation problems over a (min, +) /
(max, min)-style semiring: active vertices push a candidate label along
each out-edge; a vertex whose label improves becomes active in the next
iteration.  :class:`~repro.algorithms.base.TraversalProblem` captures that
interface once, so every engine (EtaGraph and all baselines) shares the
same algorithm definitions and differs only in execution strategy.
"""

from repro.algorithms.base import TraversalProblem, get_problem, PROBLEMS
from repro.algorithms.bfs import BFS
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import SSWP
from repro.algorithms import cpu_reference

__all__ = [
    "TraversalProblem",
    "get_problem",
    "PROBLEMS",
    "BFS",
    "SSSP",
    "SSWP",
    "cpu_reference",
]
