"""Fixed-point validation of traversal labels.

A label vector is correct iff it is the unique fixed point of the
problem's relaxation: *consistent* (no edge can still improve its
destination) and *tight* (every reached label is witnessed by some
in-edge, so labels are not merely a feasible over/under-estimate).
These checks are O(|E|) and independent of any engine — they validate
EtaGraph output without trusting EtaGraph, which both the test suite and
downstream users can rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import TraversalProblem, get_problem
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a label validation."""

    ok: bool
    violated_edges: int
    unwitnessed_vertices: int
    bad_source: bool

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def validate_labels(
    csr: CSRGraph,
    labels: np.ndarray,
    source: int,
    problem: TraversalProblem | str,
    *,
    atol: float = 1e-5,
) -> ValidationReport:
    """Check that ``labels`` is the fixed point of ``problem`` on ``csr``.

    Three conditions:

    1. the source carries its initial label;
    2. consistency — for no edge ``(u, v)`` does the candidate computed
       from ``labels[u]`` improve ``labels[v]``;
    3. witness — every non-source vertex whose label differs from the
       unreached sentinel has an in-edge ``(u, v)`` whose candidate
       equals its label (something actually produced that value).
    """
    if isinstance(problem, str):
        problem = get_problem(problem)
    problem.check_graph(csr)
    labels = np.asarray(labels)

    init = problem.initial_labels(csr.num_vertices, source)
    bad_source = not _close(labels[source], init[source], atol)

    src = csr.edge_sources().astype(np.int64)
    dst = csr.column_indices.astype(np.int64)
    cand = problem.candidates(labels[src], csr.edge_weights)

    # 2. consistency: candidates that would still improve, excluding
    # candidates propagated from unreached vertices (whose labels are the
    # sentinel and produce non-improving or undefined candidates anyway).
    improving = problem.improves(cand, labels[dst])
    reached_src = problem.reached_mask(labels, source)[src]
    violated = int((improving & reached_src).sum())

    # 3. witness: every reached non-source label equals some in-candidate.
    reached = problem.reached_mask(labels, source)
    witnessed = np.zeros(csr.num_vertices, dtype=bool)
    with np.errstate(invalid="ignore"):
        # inf - inf -> nan -> False, which is the intended semantics for
        # candidates propagated between unreached vertices.
        exact = np.abs(cand - labels[dst]) <= atol
    witnessed[dst[exact & reached_src]] = True
    need_witness = reached.copy()
    need_witness[source] = False
    unwitnessed = int((need_witness & ~witnessed).sum())

    ok = not bad_source and violated == 0 and unwitnessed == 0
    return ValidationReport(
        ok=ok,
        violated_edges=violated,
        unwitnessed_vertices=unwitnessed,
        bad_source=bad_source,
    )


def _close(a, b, atol: float) -> bool:
    a = float(a)
    b = float(b)
    if np.isinf(a) or np.isinf(b):
        return a == b
    return abs(a - b) <= atol
