"""Breadth-First Search as label propagation.

Labels are BFS levels: the source gets 0, everything else +inf; an active
vertex pushes ``level + 1`` along every out-edge; ``atomicMin`` merges.
BFS vertices activate at most once (Section II-C): once a vertex has its
level, no later candidate can be smaller.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import TraversalProblem

UNREACHED = np.float32(np.inf)


class BFS(TraversalProblem):
    """Level-synchronous BFS over the (min, +1) propagation."""

    name = "bfs"
    needs_weights = False
    instr_per_edge = 8.0

    def initial_labels(self, num_vertices: int, source: int) -> np.ndarray:
        labels = self._float_labels(num_vertices, UNREACHED)
        labels[source] = 0.0
        return labels

    def candidates(
        self, src_labels: np.ndarray, edge_weights: np.ndarray | None
    ) -> np.ndarray:
        # Weights, if present, are ignored: every edge costs one level.
        return src_labels + np.float32(1.0)

    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        return candidate < current

    def scatter_reduce(
        self, labels: np.ndarray, dst: np.ndarray, candidates: np.ndarray
    ) -> None:
        np.minimum.at(labels, dst, candidates)
