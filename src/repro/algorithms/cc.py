"""Connected Components as min-label propagation.

An extension beyond the paper's three algorithms, but squarely inside its
framework: CC is the canonical *all-active* member of the traversal
family — every vertex starts active carrying its own id, the minimum id
floods each component, and the frontier shrinks as labels settle.  On a
directed graph this computes weakly-connected components when the input
is symmetrized first (see :func:`weakly_connected_components`).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import TraversalProblem
from repro.graph.csr import CSRGraph, WEIGHT_DTYPE


class ConnectedComponents(TraversalProblem):
    """Min-id flooding over the (min, id) propagation."""

    name = "cc"
    needs_weights = False
    instr_per_edge = 7.0

    def initial_labels(self, num_vertices: int, source: int) -> np.ndarray:
        # Every vertex is its own component; `source` is irrelevant.
        return np.arange(num_vertices, dtype=WEIGHT_DTYPE)

    def initial_frontier(self, num_vertices: int, source: int) -> np.ndarray:
        return np.arange(num_vertices, dtype=np.int64)

    def candidates(
        self, src_labels: np.ndarray, edge_weights: np.ndarray | None
    ) -> np.ndarray:
        return src_labels

    def improves(self, candidate: np.ndarray, current: np.ndarray) -> np.ndarray:
        return candidate < current

    def scatter_reduce(
        self, labels: np.ndarray, dst: np.ndarray, candidates: np.ndarray
    ) -> None:
        np.minimum.at(labels, dst, candidates)

    def reached_mask(self, labels: np.ndarray, source: int) -> np.ndarray:
        # Every vertex always carries a valid component label.
        return np.ones(len(labels), dtype=bool)


def weakly_connected_components(csr: CSRGraph, engine_factory=None) -> np.ndarray:
    """Component id (the minimum member id) of every vertex.

    Symmetrizes the graph, then floods through the provided engine
    factory (defaults to EtaGraph with its default configuration).
    """
    from repro.graph.builder import build_csr_from_edges, symmetrize

    src, dst = symmetrize(csr.edge_sources(), csr.column_indices)
    sym = build_csr_from_edges(src, dst, num_vertices=csr.num_vertices)
    if engine_factory is None:
        from repro.core.engine import EtaGraphEngine

        engine_factory = EtaGraphEngine
    result = engine_factory(sym).run(ConnectedComponents(), 0)
    return result.labels.astype(np.int64)
