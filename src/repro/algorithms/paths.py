"""Parent pointers and path reconstruction.

With ``EtaGraphConfig(track_parents=True)`` the engine records, for every
vertex whose label was updated, one witnessing predecessor (the real
kernel's ``atomicMin`` returns the old value, so the winning thread knows
it won and stores its own id — one extra scattered word per update).
These helpers turn the parent array into actual paths and verify them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graph.csr import CSRGraph

#: Parent value for the source and for unreached vertices.
NO_PARENT = -1


class PathError(ReproError):
    """Raised when a path cannot be reconstructed."""


def reconstruct_path(
    parents: np.ndarray, source: int, target: int
) -> list[int]:
    """Vertices on the recorded path ``source -> ... -> target``.

    Raises :class:`PathError` if the target was never reached or the
    parent chain is corrupt (cycle / dangling).
    """
    parents = np.asarray(parents)
    n = len(parents)
    if not 0 <= target < n:
        raise PathError(f"target {target} out of range")
    if target == source:
        return [source]
    if parents[target] == NO_PARENT:
        raise PathError(f"vertex {target} was not reached from {source}")
    path = [int(target)]
    seen = {int(target)}
    v = int(target)
    while v != source:
        v = int(parents[v])
        if v == NO_PARENT or v in seen:
            raise PathError(f"corrupt parent chain at vertex {path[-1]}")
        path.append(v)
        seen.add(v)
    path.reverse()
    return path


def verify_path(
    csr: CSRGraph,
    path: list[int],
    labels: np.ndarray,
    problem_name: str,
    *,
    atol: float = 1e-5,
) -> bool:
    """Check that ``path`` is edge-valid and witnesses ``labels[target]``.

    Edge-valid: consecutive vertices are connected.  Witnessing: the
    path's accumulated cost (hops / weight sum / bottleneck) equals the
    target's label.
    """
    if not path:
        return False
    for u, v in zip(path, path[1:]):
        if v not in csr.neighbors(u):
            return False
    target = path[-1]
    if problem_name == "bfs":
        return abs(labels[target] - (len(path) - 1)) <= atol
    total: float
    if problem_name == "sssp":
        total = 0.0
        for u, v in zip(path, path[1:]):
            nbrs = csr.neighbors(u)
            w = csr.neighbor_weights(u)[np.flatnonzero(nbrs == v)[0]]
            total += float(w)
        return abs(labels[target] - total) <= atol
    if problem_name == "sswp":
        total = np.inf
        for u, v in zip(path, path[1:]):
            nbrs = csr.neighbors(u)
            w = csr.neighbor_weights(u)[np.flatnonzero(nbrs == v)[0]]
            total = min(total, float(w))
        return abs(labels[target] - total) <= atol
    raise PathError(f"unknown problem {problem_name!r}")
