"""Randomized differential + metamorphic sweep (no Hypothesis needed).

This is the engine behind ``python -m repro.testing``: generate a small
random graph, a random engine configuration and a random problem, run it
through EtaGraph (with inline invariant checking), every baseline and
the CPU oracle, and diff the labels.  A fraction of cases additionally
exercise a random metamorphic transform.  Everything is derived from one
seed, so a failing case prints the exact coordinates to replay it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.graph import generators
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.graph.weights import uniform_int_weights
from repro.testing.differential import (
    ALL_BASELINES, ALL_PROBLEMS, DifferentialReport, run_differential_case,
)
from repro.testing.metamorphic import (
    TRANSFORMS_BY_PROBLEM, run_metamorphic_case,
)

_GRAPH_KINDS = (
    "er", "er", "rmat", "rmat", "star", "grid", "path", "web", "empty",
    "islands",
)
_DEGREE_LIMITS = (1, 2, 3, 4, 8, 32, 256)
_MEMORY_MODES = (
    MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND,
    MemoryMode.DEVICE, MemoryMode.ZERO_COPY, MemoryMode.DIRECT_ACCESS,
)


def random_graph(rng: np.random.Generator, *, weighted: bool,
                 max_vertices: int = 96) -> CSRGraph:
    """One random small graph, biased toward traversal-hostile shapes."""
    kind = _GRAPH_KINDS[int(rng.integers(len(_GRAPH_KINDS)))]
    seed = int(rng.integers(2**31))
    if kind == "er":
        n = int(rng.integers(2, max_vertices))
        g = generators.erdos_renyi(n, int(rng.integers(0, 4 * n)), seed=seed)
    elif kind == "rmat":
        scale = int(rng.integers(2, 7))
        g = generators.rmat(scale, int(rng.integers(1, 2**scale * 4)),
                            seed=seed)
    elif kind == "star":
        g = generators.star_graph(int(rng.integers(1, max_vertices)),
                                  out=bool(rng.integers(2)))
    elif kind == "grid":
        g = generators.grid_graph(int(rng.integers(1, 9)),
                                  int(rng.integers(1, 9)))
    elif kind == "path":
        g = generators.path_graph(int(rng.integers(2, max_vertices)))
    elif kind == "web":
        n = int(rng.integers(20, max_vertices))
        g = generators.web_chain(n, 4 * n, depth=int(rng.integers(2, 6)),
                                 seed=seed)
    elif kind == "empty":
        n = int(rng.integers(1, max_vertices))
        g = build_csr_from_edges(np.empty(0, np.int64),
                                 np.empty(0, np.int64), num_vertices=n)
    else:  # two disconnected islands
        n = int(rng.integers(4, max_vertices))
        half = n // 2
        m = int(rng.integers(0, 2 * n))
        r = np.random.default_rng(seed)
        src = np.concatenate([r.integers(0, half, size=m),
                              r.integers(half, n, size=m)])
        dst = np.concatenate([r.integers(0, half, size=m),
                              r.integers(half, n, size=m)])
        keep = src != dst
        g = build_csr_from_edges(src[keep], dst[keep], num_vertices=n)
    if weighted:
        g = g.with_weights(uniform_int_weights(g.num_edges, seed=seed ^ 1))
    return g


def random_config(rng: np.random.Generator) -> EtaGraphConfig:
    return EtaGraphConfig(
        degree_limit=int(_DEGREE_LIMITS[int(rng.integers(len(_DEGREE_LIMITS)))]),
        smp=bool(rng.integers(2)),
        memory_mode=_MEMORY_MODES[int(rng.integers(len(_MEMORY_MODES)))],
        udc_mode="in_core" if rng.integers(2) else "out_of_core",
        check_invariants=True,
    )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz sweep."""

    seed: int
    cases: int = 0
    engine_runs: int = 0
    metamorphic_checks: int = 0
    elapsed_s: float = 0.0
    cases_per_problem: dict = field(default_factory=dict)
    #: Human-readable descriptions of every failure, with replay seeds.
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        per_problem = ", ".join(
            f"{k}={v}" for k, v in sorted(self.cases_per_problem.items())
        )
        head = (
            f"fuzz sweep (seed {self.seed}): {self.cases} differential cases "
            f"({per_problem}), {self.engine_runs} engine runs, "
            f"{self.metamorphic_checks} metamorphic checks "
            f"in {self.elapsed_s:.1f}s"
        )
        if self.ok:
            return f"{head}\nall labels match the CPU oracle; "\
                   "no invariant violations"
        lines = [f"{head}\n{len(self.failures)} FAILURES:"]
        lines += [f"  {f}" for f in self.failures]
        return "\n".join(lines)


def run_fuzz(
    *,
    max_cases: int | None = None,
    max_seconds: float | None = None,
    seed: int = 0,
    problems=ALL_PROBLEMS,
    baselines=ALL_BASELINES,
    engines: tuple[str, ...] = (),
    metamorphic_every: int = 4,
    log=None,
) -> FuzzReport:
    """Run a randomized sweep until a case or time budget is exhausted.

    Every case is a differential comparison of EtaGraph (invariant checks
    on) and every baseline against the CPU oracle; every
    ``metamorphic_every``-th case additionally checks one random
    metamorphic relation.  ``engines`` names extra serving paths from
    :data:`~repro.testing.differential.EXTRA_ENGINE_FACTORIES`
    (``etagraph-session``, ``etagraph-service``, ``etagraph-msbfs``)
    that join every case
    under the case's random configuration.  Failures never stop the
    sweep — they are collected with their case number so ``seed`` +
    case count replays them.
    """
    from repro.testing.differential import EXTRA_ENGINE_FACTORIES

    for name in engines:
        if name not in EXTRA_ENGINE_FACTORIES:
            raise ValueError(
                f"unknown extra engine {name!r}; "
                f"known: {sorted(EXTRA_ENGINE_FACTORIES)}"
            )
    if max_cases is None and max_seconds is None:
        max_cases = 100
    rng = np.random.default_rng(seed)
    report = FuzzReport(seed=seed)
    start = time.monotonic()

    case = 0
    while True:
        if max_cases is not None and case >= max_cases:
            break
        if max_seconds is not None and \
                time.monotonic() - start >= max_seconds:
            break
        problem = problems[case % len(problems)]
        weighted = problem in ("sssp", "sswp")
        graph = random_graph(rng, weighted=weighted)
        source = int(rng.integers(graph.num_vertices))
        config = random_config(rng)

        extra = {
            name: EXTRA_ENGINE_FACTORIES[name](config)
            for name in engines
        }
        diff_report: DifferentialReport = run_differential_case(
            graph, problem, source, config=config, baselines=baselines,
            extra_engines=extra or None,
        )
        report.cases += 1
        report.engine_runs += len(diff_report.engines)
        report.cases_per_problem[problem] = \
            report.cases_per_problem.get(problem, 0) + 1
        if not diff_report.ok:
            report.failures.append(
                f"case {case}: {diff_report.summary()}"
            )

        if metamorphic_every and case % metamorphic_every == 0 \
                and graph.num_vertices > 1:
            transforms = TRANSFORMS_BY_PROBLEM[problem]
            transform = transforms[int(rng.integers(len(transforms)))]
            diff = run_metamorphic_case(
                graph, problem, source, transform,
                seed=int(rng.integers(2**31)),
            )
            report.metamorphic_checks += 1
            report.engine_runs += 2
            if diff is not None:
                report.failures.append(
                    f"case {case}: metamorphic {transform} violated for "
                    f"{problem}: {diff}"
                )

        case += 1
        if log is not None and case % 25 == 0:
            log(f"  ... {case} cases, {len(report.failures)} failures")

    report.elapsed_s = time.monotonic() - start
    return report
