"""Pytest fixtures exposing the correctness machinery to test suites.

Registered as a plugin from ``tests/conftest.py``::

    pytest_plugins = ("repro.testing.fixtures",)

so any test can take these fixtures without importing the subsystem.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.graph import generators
from repro.graph.weights import uniform_int_weights
from repro.testing.differential import oracle_labels, run_differential_case
from repro.testing.fuzz import random_config, random_graph
from repro.testing.metamorphic import run_metamorphic_case


@pytest.fixture
def differential_runner():
    """:func:`repro.testing.differential.run_differential_case`, ready to
    call as ``differential_runner(graph, problem, source, **kw)``."""
    return run_differential_case


@pytest.fixture
def metamorphic_runner():
    """:func:`repro.testing.metamorphic.run_metamorphic_case`."""
    return run_metamorphic_case


@pytest.fixture
def oracle():
    """The CPU oracle dispatcher ``(graph, problem, source) -> labels``."""
    return lambda csr, problem, source: oracle_labels(csr, problem, source)


@pytest.fixture
def fuzz_case_factory():
    """Factory for random (graph, source, config) triples: call with a
    seed to get a reproducible case."""

    def make(seed: int, *, weighted: bool = False):
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, weighted=weighted)
        source = int(rng.integers(graph.num_vertices))
        return graph, source, random_config(rng)

    return make


@pytest.fixture(scope="session")
def matrix_configs() -> list[EtaGraphConfig]:
    """The full differential configuration matrix: {UDC in-core/out-of-
    core} x {SMP on/off} x {UM-prefetch, UM-on-demand, device-copy}."""
    return [
        EtaGraphConfig(
            degree_limit=4, smp=smp, memory_mode=mode, udc_mode=udc,
            check_invariants=True,
        )
        for udc in ("in_core", "out_of_core")
        for smp in (True, False)
        for mode in (MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND,
                     MemoryMode.DEVICE)
    ]


@pytest.fixture(scope="session")
def differential_graphs():
    """Five deterministic generated graphs per weighting, spanning the
    shape families (skewed, uniform, regular, deep, star)."""

    def build(weighted: bool):
        graphs = [
            generators.rmat(5, 128, seed=11),
            generators.erdos_renyi(40, 120, seed=12),
            generators.grid_graph(6, 6),
            generators.web_chain(60, 240, depth=5, seed=13),
            generators.star_graph(30),
        ]
        if weighted:
            graphs = [
                g.with_weights(
                    uniform_int_weights(g.num_edges, seed=20 + i)
                )
                for i, g in enumerate(graphs)
            ]
        return graphs

    return build
