"""Structural invariants of a traversal run.

Every check here states a property that must hold for *any* graph, source
and configuration — the Definition/Theorem layer of the paper turned into
executable assertions:

* UDC (Definition 3): the shadow slices of every cut vertex exactly
  partition its CSR adjacency and never exceed the degree limit K.
* The execution timeline: intervals are well-formed, and within one
  stream ("compute" or "transfer") they are monotone and non-overlapping
  — overlap only ever happens *across* streams, which is precisely what
  Fig. 4 measures.
* The cache hierarchy: hits + misses account for every access at each
  level (an L1 miss is an L2 access; an L2 miss is a DRAM transaction).
* :class:`~repro.core.stats.TraversalStats`: per-iteration records are
  internally consistent and their totals match the label vector.

All checks raise :class:`repro.errors.InvariantViolation` with a message
naming the first violated property; they return ``None`` on success so
they can run inline on the engine's hot path
(``EtaGraphConfig(check_invariants=True)``).

This module deliberately imports no engine or baseline code so the engine
can import it without a cycle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvariantViolation

#: Absolute slack (ms) for floating-point comparisons of simulated times.
TIME_TOL_MS = 1e-6


def _fail(message: str) -> None:
    raise InvariantViolation(message)


# ----------------------------------------------------------------------
# UDC (Definition 3)
# ----------------------------------------------------------------------

def check_udc_partition(
    shadows, active_vertices: np.ndarray, row_offsets: np.ndarray,
    degree_limit: int,
) -> None:
    """Check that ``shadows`` exactly partitions the adjacency of every
    active vertex (Definition 3 of the paper).

    ``active_vertices`` must be duplicate-free (engine active sets are).
    Properties checked:

    1. every slice has length in ``[1, degree_limit]``;
    2. per owner, slices are contiguous and disjoint: each starts where
       the previous one ends;
    3. the first slice starts at ``row_offsets[v]`` and the last ends at
       ``row_offsets[v + 1]`` — full coverage, no escape;
    4. exactly the active vertices with out-degree > 0 own slices, and
       the slice count per owner is ``ceil(degree / K)``.
    """
    active = np.asarray(active_vertices, dtype=np.int64)
    offsets = np.asarray(row_offsets, dtype=np.int64)
    if len(np.unique(active)) != len(active):
        _fail("active set contains duplicate vertices")
    degrees = offsets[active + 1] - offsets[active]
    expected_slices = -(-degrees // degree_limit)  # ceil; 0 for degree 0
    if int(expected_slices.sum()) != len(shadows):
        _fail(
            f"shadow count {len(shadows)} != sum of ceil(degree/K) "
            f"{int(expected_slices.sum())}"
        )
    if len(shadows) == 0:
        return

    sdeg = np.asarray(shadows.degrees, dtype=np.int64)
    if sdeg.min() < 1:
        _fail("empty shadow slice (degree < 1)")
    if sdeg.max() > degree_limit:
        _fail(
            f"shadow slice of degree {int(sdeg.max())} exceeds "
            f"degree limit K={degree_limit}"
        )

    order = np.lexsort((shadows.starts, shadows.ids))
    ids = np.asarray(shadows.ids, dtype=np.int64)[order]
    starts = np.asarray(shadows.starts, dtype=np.int64)[order]
    ends = starts + sdeg[order]

    same_owner = ids[1:] == ids[:-1]
    bad = same_owner & (starts[1:] != ends[:-1])
    if np.any(bad):
        v = int(ids[1:][bad][0])
        _fail(f"slices of vertex {v} leave a gap or overlap")

    first = np.ones(len(ids), dtype=bool)
    first[1:] = ~same_owner
    last = np.ones(len(ids), dtype=bool)
    last[:-1] = ~same_owner
    if np.any(starts[first] != offsets[ids[first]]):
        v = int(ids[first][starts[first] != offsets[ids[first]]][0])
        _fail(f"first slice of vertex {v} does not start at row_offsets[v]")
    if np.any(ends[last] != offsets[ids[last] + 1]):
        v = int(ids[last][ends[last] != offsets[ids[last] + 1]][0])
        _fail(f"last slice of vertex {v} does not end at row_offsets[v + 1]")

    owners = np.unique(ids)
    expected_owners = np.unique(active[degrees > 0])
    if not np.array_equal(owners, expected_owners):
        _fail("shadow owners differ from active vertices with out-degree > 0")


# ----------------------------------------------------------------------
# Timeline (Fig. 4 bookkeeping)
# ----------------------------------------------------------------------

def check_timeline(timeline) -> None:
    """Intervals are well-formed; per stream they are monotone and
    non-overlapping (concurrency exists only *across* streams)."""
    for iv in timeline.intervals:
        if iv.end_ms < iv.start_ms:
            _fail(f"interval {iv.label or iv.kind} ends before it starts")
        if iv.start_ms < -TIME_TOL_MS:
            _fail(f"interval {iv.label or iv.kind} starts before time 0")
        if iv.nbytes < 0:
            _fail(f"interval {iv.label or iv.kind} has negative byte count")
    for kind in ("compute", "transfer"):
        ivs = sorted(
            (iv for iv in timeline.intervals if iv.kind == kind),
            key=lambda iv: (iv.start_ms, iv.end_ms),
        )
        for prev, cur in zip(ivs, ivs[1:]):
            if cur.start_ms < prev.end_ms - TIME_TOL_MS:
                _fail(
                    f"{kind} intervals overlap: "
                    f"[{prev.start_ms:.6f}, {prev.end_ms:.6f}] and "
                    f"[{cur.start_ms:.6f}, {cur.end_ms:.6f}]"
                )


# ----------------------------------------------------------------------
# Cache hierarchy and profiler counters
# ----------------------------------------------------------------------

def check_hierarchy_result(result) -> None:
    """One routed access stream: hits + misses == accesses at each level."""
    if result.unified_hits + result.l2_accesses != result.accesses:
        _fail(
            "unified hits + L2 accesses != total accesses "
            f"({result.unified_hits} + {result.l2_accesses} "
            f"!= {result.accesses})"
        )
    if result.l2_hits + result.dram_transactions != result.l2_accesses:
        _fail(
            "L2 hits + DRAM transactions != L2 accesses "
            f"({result.l2_hits} + {result.dram_transactions} "
            f"!= {result.l2_accesses})"
        )
    for name in ("accesses", "unified_hits", "l2_accesses", "l2_hits",
                 "dram_transactions"):
        if getattr(result, name) < 0:
            _fail(f"negative cache counter {name}")


def check_cache(cache) -> None:
    """A single cache model never reports more hits than accesses."""
    if not 0 <= cache.hits <= cache.accesses:
        _fail(
            f"cache hits {cache.hits} outside [0, accesses={cache.accesses}]"
        )


def check_kernel_counters(counters) -> None:
    """Accumulated nvprof-style counters stay internally consistent."""
    for name in (
        "launches", "threads", "warps", "instructions", "cycles",
        "elapsed_ms", "global_load_transactions", "global_store_transactions",
        "unified_cache_accesses", "unified_cache_hits", "l2_accesses",
        "l2_hits", "dram_read_bytes", "dram_write_bytes", "shared_load_bytes",
    ):
        if getattr(counters, name) < 0:
            _fail(f"negative kernel counter {name}")
    if counters.unified_cache_hits > counters.unified_cache_accesses:
        _fail("unified-cache hits exceed accesses")
    if counters.l2_hits > counters.l2_accesses:
        _fail("L2 hits exceed accesses")


def check_profiler(profiler) -> None:
    """Transfer/migration bookkeeping: sizes positive, times non-negative."""
    check_kernel_counters(profiler.kernels)
    for name in ("h2d_bytes", "d2h_bytes", "h2d_time_ms", "d2h_time_ms",
                 "migration_time_ms"):
        if getattr(profiler, name) < 0:
            _fail(f"negative profiler field {name}")
    for size in profiler.migration_sizes:
        if size <= 0:
            _fail(f"non-positive UM migration size {size}")


# ----------------------------------------------------------------------
# Traversal statistics
# ----------------------------------------------------------------------

def check_stats(stats, *, degree_limit: int | None = None) -> None:
    """Per-iteration records are consistent and their totals add up."""
    prev_end = 0.0
    newly_sum = 0
    for i, s in enumerate(stats.iterations):
        if s.index != i:
            _fail(f"iteration index {s.index} != position {i}")
        for name in ("active_vertices", "shadow_vertices", "edges_scanned",
                     "updates", "newly_visited"):
            if getattr(s, name) < 0:
                _fail(f"negative {name} at iteration {i}")
        for name in ("kernel_ms", "transform_ms", "transfer_ms"):
            if getattr(s, name) < 0:
                _fail(f"negative {name} at iteration {i}")
        if s.active_vertices == 0:
            _fail(f"iteration {i} ran with an empty active set")
        if s.shadow_vertices == 0 and s.edges_scanned:
            _fail(f"iteration {i} scanned edges without shadow vertices")
        if s.updates > s.edges_scanned:
            _fail(
                f"iteration {i} attempted {s.updates} updates over "
                f"{s.edges_scanned} scanned edges"
            )
        if degree_limit is not None and \
                s.edges_scanned > s.shadow_vertices * degree_limit:
            _fail(
                f"iteration {i} scanned {s.edges_scanned} edges from "
                f"{s.shadow_vertices} shadow vertices at K={degree_limit}"
            )
        if s.edges_scanned and s.kernel_ms <= 0:
            _fail(f"iteration {i} scanned edges in zero kernel time")
        if s.transform_ms <= 0:
            _fail(f"iteration {i} has non-positive transform time")
        if s.elapsed_end_ms < prev_end - TIME_TOL_MS:
            _fail(f"elapsed time went backwards at iteration {i}")
        prev_end = s.elapsed_end_ms
        newly_sum += s.newly_visited
    if stats.total_visited != stats.seed_count + newly_sum:
        _fail("total_visited != seed_count + sum(newly_visited)")
    if stats.num_vertices and stats.total_visited > stats.num_vertices:
        _fail(
            f"visited {stats.total_visited} of {stats.num_vertices} vertices"
        )


# ----------------------------------------------------------------------
# Whole-result check (what the engine runs under check_invariants)
# ----------------------------------------------------------------------

def check_traversal_result(result, problem=None) -> None:
    """All invariants of one finished EtaGraph traversal.

    With ``problem`` given, additionally cross-checks the statistics
    against the label vector: the number of vertices the stats claim were
    visited must equal the number of reached labels.
    """
    check_timeline(result.timeline)
    check_stats(result.stats, degree_limit=result.config.degree_limit)
    check_profiler(result.profiler)
    if result.total_ms < 0 or result.kernel_ms < 0 or result.transfer_ms < 0:
        _fail("negative aggregate time")
    if result.d2h_ms <= 0:
        _fail("label read-back took no time")
    if result.timeline.end_ms > result.total_ms + TIME_TOL_MS:
        _fail(
            f"timeline extends past the reported total "
            f"({result.timeline.end_ms:.6f} > {result.total_ms:.6f} ms)"
        )
    if problem is not None:
        reached = int(problem.reached_mask(result.labels, result.source).sum())
        if reached != result.stats.total_visited:
            _fail(
                f"stats report {result.stats.total_visited} visited vertices "
                f"but {reached} labels are reached"
            )
