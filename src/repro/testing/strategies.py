"""Hypothesis strategies for graphs and engine configurations.

Builds on :mod:`repro.graph.generators` so the shrunken counterexamples
Hypothesis reports are reproducible by a single generator call.  The
graph strategy deliberately over-weights the degenerate shapes traversal
code gets wrong: empty edge sets, single vertices, isolated sources,
disconnected components, degree exactly K and degree 0.

Requires the ``hypothesis`` package (part of the ``[test]`` extra); the
rest of :mod:`repro.testing` — including the fuzz CLI — works without it.
"""

from __future__ import annotations

import numpy as np

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - exercised only without extras
    raise ImportError(
        "repro.testing.strategies requires the 'hypothesis' package "
        "(pip install repro[test])"
    ) from exc

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.graph import generators
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.graph.weights import uniform_int_weights

#: Upper bounds keeping any drawn case sub-second on the simulator.
MAX_VERTICES = 64
MAX_EDGES = 256


@st.composite
def csr_graphs(
    draw,
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    weighted: bool = False,
) -> CSRGraph:
    """A small graph drawn from one of several shape families."""
    kind = draw(st.sampled_from(
        ["er", "rmat", "star", "grid", "path", "cycle", "empty",
         "single", "two_islands"]
    ))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    if kind == "er":
        n = draw(st.integers(min_value=2, max_value=max_vertices))
        m = draw(st.integers(min_value=0, max_value=max_edges))
        g = generators.erdos_renyi(n, m, seed=seed)
    elif kind == "rmat":
        scale = draw(st.integers(min_value=1, max_value=6))
        m = draw(st.integers(min_value=1, max_value=max_edges))
        g = generators.rmat(scale, m, seed=seed)
    elif kind == "star":
        leaves = draw(st.integers(min_value=1, max_value=max_vertices - 1))
        g = generators.star_graph(leaves, out=draw(st.booleans()))
    elif kind == "grid":
        rows = draw(st.integers(min_value=1, max_value=8))
        cols = draw(st.integers(min_value=1, max_value=8))
        g = generators.grid_graph(rows, cols)
    elif kind == "path":
        g = generators.path_graph(
            draw(st.integers(min_value=2, max_value=max_vertices))
        )
    elif kind == "cycle":
        g = generators.cycle_graph(
            draw(st.integers(min_value=2, max_value=max_vertices))
        )
    elif kind == "empty":
        n = draw(st.integers(min_value=1, max_value=max_vertices))
        g = build_csr_from_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), num_vertices=n
        )
    elif kind == "single":
        g = build_csr_from_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), num_vertices=1
        )
    else:  # two disconnected ER islands
        n = draw(st.integers(min_value=4, max_value=max_vertices))
        half = n // 2
        m = draw(st.integers(min_value=0, max_value=max_edges // 2))
        rng = np.random.default_rng(seed)
        src_a = rng.integers(0, half, size=m)
        dst_a = rng.integers(0, half, size=m)
        src_b = rng.integers(half, n, size=m)
        dst_b = rng.integers(half, n, size=m)
        src = np.concatenate([src_a, src_b])
        dst = np.concatenate([dst_a, dst_b])
        keep = src != dst
        g = build_csr_from_edges(src[keep], dst[keep], num_vertices=n)
    if weighted:
        g = g.with_weights(
            uniform_int_weights(g.num_edges, seed=seed ^ 0x5EED)
        )
    return g


@st.composite
def graphs_with_sources(
    draw, weighted: bool = False, **kwargs
) -> tuple[CSRGraph, int]:
    """A graph plus a valid source vertex (occasionally an isolated one)."""
    g = draw(csr_graphs(weighted=weighted, **kwargs))
    source = draw(st.integers(min_value=0, max_value=g.num_vertices - 1))
    return g, source


@st.composite
def engine_configs(draw) -> EtaGraphConfig:
    """An engine configuration spanning the paper's ablation axes."""
    return EtaGraphConfig(
        degree_limit=draw(st.sampled_from([1, 2, 3, 4, 8, 32, 1024])),
        smp=draw(st.booleans()),
        memory_mode=draw(st.sampled_from([
            MemoryMode.UM_PREFETCH, MemoryMode.UM_ON_DEMAND,
            MemoryMode.DEVICE, MemoryMode.ZERO_COPY,
        ])),
        udc_mode=draw(st.sampled_from(["in_core", "out_of_core"])),
        check_invariants=True,
    )


@st.composite
def degree_sequences(draw, degree_limit: int | None = None) -> tuple[np.ndarray, int]:
    """``(row_offsets, K)`` with degree-0 and degree-exactly-K vertices
    forced into the mix — the UDC edge cases."""
    k = degree_limit if degree_limit is not None else \
        draw(st.integers(min_value=1, max_value=16))
    degrees = draw(st.lists(
        st.one_of(
            st.integers(min_value=0, max_value=4 * k),
            st.just(0),           # isolated vertex
            st.just(k),           # exactly one full slice
            st.just(k + 1),       # barely overflows into two slices
        ),
        min_size=1, max_size=40,
    ))
    offsets = np.zeros(len(degrees) + 1, dtype=np.int64)
    np.cumsum(np.asarray(degrees, dtype=np.int64), out=offsets[1:])
    return offsets, k
