"""Quick fuzz sweep from the command line.

Usage::

    python -m repro.testing                     # 100 differential cases
    python -m repro.testing --cases 250 --seed 7
    python -m repro.testing --fuzz-seconds 30   # time-budgeted smoke run
    python -m repro.testing --problems bfs cc --baselines gunrock tigr

Exit status 0 when every engine matched the CPU oracle and no invariant
was violated; 1 otherwise, with per-case divergence context printed.
"""

from __future__ import annotations

import argparse
import sys

from repro.testing.differential import ALL_BASELINES, ALL_PROBLEMS
from repro.testing.fuzz import run_fuzz


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Differential/metamorphic fuzz sweep: random graphs "
                    "and configurations through EtaGraph, every baseline "
                    "and the CPU oracle.",
    )
    parser.add_argument("--cases", type=int, default=None,
                        help="number of differential cases (default 100 "
                             "unless --fuzz-seconds is given)")
    parser.add_argument("--fuzz-seconds", type=float, default=None,
                        help="time budget instead of a case count")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed (default 0); failures print the "
                             "case number needed to replay")
    parser.add_argument("--problems", nargs="+", default=list(ALL_PROBLEMS),
                        choices=ALL_PROBLEMS,
                        help="problems to rotate through")
    parser.add_argument("--baselines", nargs="+", default=list(ALL_BASELINES),
                        choices=ALL_BASELINES,
                        help="baseline frameworks to include")
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic checks")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print the final summary")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    log = None if args.quiet else (lambda msg: print(msg, flush=True))
    if log:
        budget = (f"{args.fuzz_seconds:g}s"
                  if args.fuzz_seconds is not None
                  else f"{args.cases or 100} cases")
        log(f"fuzzing {'/'.join(args.problems)} against "
            f"{len(args.baselines)} baselines + oracle ({budget}, "
            f"seed {args.seed})")
    report = run_fuzz(
        max_cases=args.cases,
        max_seconds=args.fuzz_seconds,
        seed=args.seed,
        problems=tuple(args.problems),
        baselines=tuple(args.baselines),
        metamorphic_every=0 if args.no_metamorphic else 4,
        log=log,
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
