"""Quick fuzz sweep from the command line.

Usage::

    python -m repro.testing                     # 100 differential cases
    python -m repro.testing --cases 250 --seed 7
    python -m repro.testing --fuzz-seconds 30   # time-budgeted smoke run
    python -m repro.testing --problems bfs cc --baselines gunrock tigr
    python -m repro.testing --engine etagraph-service --cases 25
    python -m repro.testing --chaos --plans 200 # fault-injection fuzzing
    python -m repro.testing --chaos --duration 30

Exit status 0 when every engine matched the CPU oracle and no invariant
was violated; 1 otherwise, with per-case divergence context printed.

``--chaos`` switches to the resilience sweep
(:mod:`repro.resilience.chaos`): the same random graphs and
configurations, served through a :class:`~repro.resilience.
ResilientSession` under random seeded fault plans.  The pass criterion
becomes the resilience contract — every outcome is a correct result or a
typed ``ReproError``.
"""

from __future__ import annotations

import argparse
import sys

from repro.testing.differential import (
    ALL_BASELINES,
    ALL_PROBLEMS,
    EXTRA_ENGINE_FACTORIES,
)
from repro.testing.fuzz import run_fuzz


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Differential/metamorphic fuzz sweep: random graphs "
                    "and configurations through EtaGraph, every baseline "
                    "and the CPU oracle.  --chaos adds seeded fault "
                    "injection and checks graceful degradation instead.",
    )
    parser.add_argument("--cases", type=int, default=None,
                        help="number of differential cases (default 100 "
                             "unless --fuzz-seconds is given)")
    parser.add_argument("--fuzz-seconds", type=float, default=None,
                        help="time budget instead of a case count")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed (default 0); failures print the "
                             "case number needed to replay")
    parser.add_argument("--problems", nargs="+", default=list(ALL_PROBLEMS),
                        choices=ALL_PROBLEMS,
                        help="problems to rotate through")
    parser.add_argument("--baselines", nargs="+", default=list(ALL_BASELINES),
                        choices=ALL_BASELINES,
                        help="baseline frameworks to include")
    parser.add_argument("--engine", action="append", default=[],
                        dest="engines",
                        choices=sorted(EXTRA_ENGINE_FACTORIES),
                        help="extra serving path to fuzz alongside the "
                             "engine (repeatable): etagraph-session runs "
                             "each case on a warm resident session, "
                             "etagraph-service through the multi-tenant "
                             "serving frontend, etagraph-msbfs through a "
                             "packed multi-source wave")
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic checks")
    parser.add_argument("--chaos", action="store_true",
                        help="fuzz under random seeded fault plans through "
                             "ResilientSession (see docs/resilience.md)")
    parser.add_argument("--plans", type=int, default=None,
                        help="chaos mode: number of fault plans (default "
                             "200 unless --duration is given)")
    parser.add_argument("--duration", type=float, default=None,
                        help="chaos mode: time budget in seconds")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print the final summary")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    log = None if args.quiet else (lambda msg: print(msg, flush=True))

    if args.chaos:
        from repro.resilience.chaos import run_chaos

        if log:
            budget = (f"{args.duration:g}s" if args.duration is not None
                      else f"{args.plans or 200} plans")
            log(f"chaos fuzzing under seeded fault plans ({budget}, "
                f"seed {args.seed})")
        report = run_chaos(
            max_plans=args.plans,
            max_seconds=args.duration,
            seed=args.seed,
            log=log,
        )
        print(report.summary())
        return 0 if report.ok else 1

    if log:
        budget = (f"{args.fuzz_seconds:g}s"
                  if args.fuzz_seconds is not None
                  else f"{args.cases or 100} cases")
        log(f"fuzzing {'/'.join(args.problems)} against "
            f"{len(args.baselines)} baselines + oracle ({budget}, "
            f"seed {args.seed})")
    report = run_fuzz(
        max_cases=args.cases,
        max_seconds=args.fuzz_seconds,
        seed=args.seed,
        problems=tuple(args.problems),
        baselines=tuple(args.baselines),
        engines=tuple(args.engines),
        metamorphic_every=0 if args.no_metamorphic else 4,
        log=log,
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
