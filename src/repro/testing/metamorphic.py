"""Metamorphic correctness relations for graph traversal.

A metamorphic test runs the engine twice — on an input and on a
label-preserving transformation of it — and checks the known relation
between the two outputs, with no oracle in sight.  The transforms here
are the traversal-native ones:

* **vertex relabeling** — traversal is equivariant under vertex
  permutation: ``labels'[perm[v]] == labels[v]`` (for CC, whose labels
  *are* vertex ids, the relation weakens to partition equality);
* **edge-order shuffle** — the CSR builder canonicalizes edge order, so
  any permutation of the input edge list yields identical output;
* **uniform weight scaling** — SSSP distances and SSWP widths scale
  linearly with a uniform positive weight scale (BFS/CC are invariant);
  power-of-two factors keep float32 arithmetic bit-exact;
* **source re-rooting on symmetrized graphs** — distance/width is
  symmetric on an undirected graph, so ``labels_r[s] == labels_s[r]``.

Each transform produces a :class:`MetamorphicCase` carrying the
transformed input plus a checker that compares the two label vectors and
returns a :class:`~repro.testing.differential.LabelDiff` on violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.builder import build_csr_from_edges, symmetrize
from repro.graph.csr import CSRGraph, WEIGHT_DTYPE
from repro.testing.differential import LabelDiff, diff_labels

#: Transform names applicable per problem.
TRANSFORMS_BY_PROBLEM: dict[str, tuple[str, ...]] = {
    "bfs": ("relabel", "shuffle_edges", "reroot"),
    "sssp": ("relabel", "shuffle_edges", "scale_weights", "reroot"),
    "sswp": ("relabel", "shuffle_edges", "scale_weights", "reroot"),
    "cc": ("relabel", "shuffle_edges"),
}


@dataclass
class MetamorphicCase:
    """A transformed input plus the expected output relation."""

    name: str
    graph: CSRGraph
    source: int
    #: ``check(original_labels, transformed_labels) -> LabelDiff | None``.
    check: Callable[[np.ndarray, np.ndarray], LabelDiff | None]


def _edges_with_weights(csr: CSRGraph):
    src = csr.edge_sources().astype(np.int64)
    dst = csr.column_indices.astype(np.int64)
    w = None if csr.edge_weights is None else csr.edge_weights.copy()
    return src, dst, w


def _partition_diff(a: np.ndarray, b: np.ndarray) -> LabelDiff | None:
    """Do two label vectors induce the same partition of the vertices?

    Used for CC under relabeling, where component representatives (the
    minimum member ids) legitimately change but the grouping must not.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    # Canonicalize: map each vertex to the first vertex sharing its label.
    def canon(x):
        if len(x) == 0:
            return np.empty(0, np.int64)
        _, inverse = np.unique(x, return_inverse=True)
        first = np.full(int(inverse.max()) + 1, len(x), np.int64)
        np.minimum.at(first, inverse, np.arange(len(x), dtype=np.int64))
        return first[inverse]

    return diff_labels(canon(a).astype(WEIGHT_DTYPE),
                       canon(b).astype(WEIGHT_DTYPE))


# ----------------------------------------------------------------------
# Transforms
# ----------------------------------------------------------------------

def relabel_vertices(
    csr: CSRGraph, source: int, problem_name: str, seed: int = 0
) -> tuple[MetamorphicCase, CSRGraph]:
    """Permute vertex ids; labels must follow the permutation exactly.

    For CC the comparison weakens to partition equality (labels *are*
    vertex ids, so representatives legitimately change) and the base
    graph is symmetrized first: on a directed graph the min-label flood
    groups vertices by their minimum-id ancestor, a grouping that is
    itself id-dependent — only the undirected (weakly-connected)
    partition is permutation-invariant.
    """
    rng = np.random.default_rng(seed)
    base = csr
    if problem_name == "cc":
        src, dst, _ = _edges_with_weights(csr)
        s2, d2 = symmetrize(src, dst)
        base = build_csr_from_edges(s2, d2, num_vertices=csr.num_vertices)
    n = base.num_vertices
    perm = rng.permutation(n).astype(np.int64)
    src, dst, w = _edges_with_weights(base)
    graph = build_csr_from_edges(
        perm[src], perm[dst], num_vertices=n, weights=w
    )

    if problem_name == "cc":
        def check(orig, new):
            return _partition_diff(orig, new[perm])
    else:
        def check(orig, new):
            return diff_labels(orig, new[perm], base)

    case = MetamorphicCase(
        name="relabel", graph=graph, source=int(perm[source]), check=check
    )
    return case, base


def shuffle_edge_order(
    csr: CSRGraph, source: int, problem_name: str, seed: int = 0
) -> tuple[MetamorphicCase, CSRGraph]:
    """Permute the input edge list; the canonical CSR — and therefore the
    output — must be identical."""
    rng = np.random.default_rng(seed)
    src, dst, w = _edges_with_weights(csr)
    order = rng.permutation(len(src))
    graph = build_csr_from_edges(
        src[order], dst[order], num_vertices=csr.num_vertices,
        weights=None if w is None else w[order],
    )
    case = MetamorphicCase(
        name="shuffle_edges", graph=graph, source=source,
        check=lambda orig, new: diff_labels(orig, new, csr),
    )
    return case, csr


def scale_weights(
    csr: CSRGraph, source: int, problem_name: str, factor: float = 4.0
) -> tuple[MetamorphicCase, CSRGraph]:
    """Scale all weights by a uniform positive factor.

    SSSP distances and SSWP widths scale by the same factor; the checker
    divides them back out.  Power-of-two factors make the float32
    round-trip exact (``inf`` and ``0`` are fixed points of the division,
    so unreached sentinels survive untouched).
    """
    if csr.edge_weights is None:
        raise ValueError("scale_weights needs a weighted graph")
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    graph = csr.with_weights(
        (csr.edge_weights * WEIGHT_DTYPE(factor)).astype(WEIGHT_DTYPE)
    )

    def check(orig, new):
        return diff_labels(
            orig, (new / WEIGHT_DTYPE(factor)).astype(WEIGHT_DTYPE), csr
        )

    case = MetamorphicCase(
        name="scale_weights", graph=graph, source=source, check=check
    )
    return case, csr


def reroot_symmetric(
    csr: CSRGraph, source: int, problem_name: str, seed: int = 0
) -> tuple[MetamorphicCase, CSRGraph]:
    """Symmetrize the graph and re-root at a random vertex.

    On an undirected graph distance (and bottleneck width) is symmetric:
    the new run's label at the *old* source must equal the old run's
    label at the *new* source.  Returns the case plus the symmetrized
    graph the *original* run must use (both runs traverse the same
    undirected topology; only the root moves).
    """
    rng = np.random.default_rng(seed)
    src, dst, w = _edges_with_weights(csr)
    if w is not None:
        # Symmetrize with matching weights on both edge directions; keep
        # the minimum where both directions already exist (dedup keeps
        # the first of the stably sorted pair, so order them explicitly).
        src2 = np.concatenate([src, dst])
        dst2 = np.concatenate([dst, src])
        w2 = np.concatenate([w, w])
        order = np.lexsort((w2, dst2, src2))
        sym = build_csr_from_edges(
            src2[order], dst2[order], num_vertices=csr.num_vertices,
            weights=w2[order],
        )
    else:
        s2, d2 = symmetrize(src, dst)
        sym = build_csr_from_edges(s2, d2, num_vertices=csr.num_vertices)

    new_source = int(rng.integers(0, csr.num_vertices))

    def check(orig, new):
        a = np.asarray([orig[new_source]], dtype=WEIGHT_DTYPE)
        b = np.asarray([new[source]], dtype=WEIGHT_DTYPE)
        return diff_labels(a, b)

    case = MetamorphicCase(
        name="reroot", graph=sym, source=new_source, check=check
    )
    return case, sym


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def make_case(
    transform: str, csr: CSRGraph, source: int, problem_name: str,
    seed: int = 0,
) -> tuple[MetamorphicCase, CSRGraph]:
    """Build a named transform; returns ``(case, graph_for_original_run)``
    (re-rooting and CC relabeling symmetrize the base topology, the
    others leave it untouched)."""
    if transform == "relabel":
        return relabel_vertices(csr, source, problem_name, seed)
    if transform == "shuffle_edges":
        return shuffle_edge_order(csr, source, problem_name, seed)
    if transform == "scale_weights":
        factor = float(2 ** (1 + seed % 4))
        return scale_weights(csr, source, problem_name, factor)
    if transform == "reroot":
        return reroot_symmetric(csr, source, problem_name, seed)
    raise ValueError(f"unknown metamorphic transform {transform!r}")


def run_metamorphic_case(
    csr: CSRGraph,
    problem_name: str,
    source: int,
    transform: str,
    *,
    engine=None,
    seed: int = 0,
) -> LabelDiff | None:
    """Run the engine on the original and transformed inputs and check
    the metamorphic relation; ``None`` means it holds.

    ``engine`` is a ``(graph, problem_name, source) -> labels`` callable,
    defaulting to EtaGraph with its default configuration.
    """
    from repro.testing.differential import etagraph_engine

    if engine is None:
        engine = etagraph_engine()
    case, base = make_case(transform, csr, source, problem_name, seed)
    orig = engine(base, problem_name, source)
    new = engine(case.graph, problem_name, case.source)
    return case.check(orig, new)
