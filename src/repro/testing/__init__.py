"""Differential & metamorphic correctness subsystem.

Turns the repo's correctness story from ad-hoc assertions into reusable
machinery:

* :mod:`repro.testing.differential` — run one problem through EtaGraph,
  every baseline and the CPU oracle; diff labels bit-for-bit with
  first-divergence context,
* :mod:`repro.testing.metamorphic` — label-preserving graph transforms
  (vertex relabeling, edge shuffles, weight scaling, re-rooting) with
  expected-output adjusters,
* :mod:`repro.testing.invariants` — structural sanity checks of a
  traversal run (UDC partitioning, timeline monotonicity, cache counter
  conservation); also wired into the engine hot path via
  ``EtaGraphConfig(check_invariants=True)``,
* :mod:`repro.testing.strategies` — Hypothesis strategies for graphs and
  configurations (requires the ``[test]`` extra),
* :mod:`repro.testing.fixtures` — pytest fixtures re-exporting all of
  the above,
* :mod:`repro.testing.fuzz` / ``python -m repro.testing`` — a
  randomized sweep combining everything for CI smoke runs.
"""

from repro.errors import InvariantViolation
from repro.testing.differential import (
    ALL_BASELINES,
    ALL_PROBLEMS,
    DifferentialReport,
    EngineReport,
    LabelDiff,
    baseline_engine,
    cc_reference,
    diff_labels,
    etagraph_engine,
    oracle_labels,
    run_differential_case,
)
from repro.testing.fuzz import FuzzReport, run_fuzz
from repro.testing.invariants import (
    check_cache,
    check_hierarchy_result,
    check_kernel_counters,
    check_profiler,
    check_stats,
    check_timeline,
    check_traversal_result,
    check_udc_partition,
)
from repro.testing.metamorphic import (
    TRANSFORMS_BY_PROBLEM,
    MetamorphicCase,
    make_case,
    relabel_vertices,
    reroot_symmetric,
    run_metamorphic_case,
    scale_weights,
    shuffle_edge_order,
)

__all__ = [
    "ALL_BASELINES",
    "ALL_PROBLEMS",
    "DifferentialReport",
    "EngineReport",
    "FuzzReport",
    "InvariantViolation",
    "LabelDiff",
    "MetamorphicCase",
    "TRANSFORMS_BY_PROBLEM",
    "baseline_engine",
    "cc_reference",
    "check_cache",
    "check_hierarchy_result",
    "check_kernel_counters",
    "check_profiler",
    "check_stats",
    "check_timeline",
    "check_traversal_result",
    "check_udc_partition",
    "diff_labels",
    "etagraph_engine",
    "make_case",
    "oracle_labels",
    "relabel_vertices",
    "reroot_symmetric",
    "run_differential_case",
    "run_fuzz",
    "run_metamorphic_case",
    "scale_weights",
    "shuffle_edge_order",
]
