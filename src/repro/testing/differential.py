"""Differential correctness runner.

The engine's core claim is functional exactness: EtaGraph labels must
match the CPU oracles *bit-for-bit* across every configuration, and so
must every baseline (all frameworks share the same label-propagation
semantics; only the cost models differ — Section VI-B).  This module
turns that claim into machinery: one call runs a problem through the
EtaGraph engine, every baseline and the CPU oracle, diffs the label
vectors exactly, and reports first-divergence context when they disagree.

Typical use::

    from repro.testing import run_differential_case

    report = run_differential_case(graph, "bfs", source=0)
    assert report.ok, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.algorithms.base import get_problem
from repro.algorithms.cpu_reference import reference_labels
from repro.core.config import EtaGraphConfig
from repro.core.engine import EtaGraphEngine
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.graph.csr import CSRGraph, WEIGHT_DTYPE

#: Baseline frameworks included in a differential case by default
#: (Table III's comparison set plus the motivation baseline).
ALL_BASELINES: tuple[str, ...] = (
    "cusha", "gunrock", "tigr", "simple-vc", "gts", "cpu-ligra",
)

#: Problems a differential case can exercise.
ALL_PROBLEMS: tuple[str, ...] = ("bfs", "sssp", "sswp", "cc")

#: How many mismatching vertices a :class:`LabelDiff` records in detail.
MAX_DIFF_EXAMPLES = 5


def cc_reference(csr: CSRGraph) -> np.ndarray:
    """CPU oracle for connected components: min-label flooding to the
    fixed point, one whole-edge-set relaxation per round.

    The (min, id) fixed point is unique, so any schedule — this serial
    sweep, the engine's frontier-driven one, CuSha's shard passes —
    converges to identical labels.
    """
    labels = np.arange(csr.num_vertices, dtype=WEIGHT_DTYPE)
    src = csr.edge_sources().astype(np.int64)
    dst = csr.column_indices.astype(np.int64)
    for _ in range(max(csr.num_vertices, 1)):
        before = labels.copy()
        np.minimum.at(labels, dst, labels[src])
        if np.array_equal(labels, before):
            break
    return labels


def oracle_labels(csr: CSRGraph, problem_name: str, source: int) -> np.ndarray:
    """Dispatch to the serial CPU oracle for any supported problem."""
    if problem_name == "cc":
        return cc_reference(csr)
    return reference_labels(csr, source, problem_name)


@dataclass(frozen=True)
class LabelDiff:
    """First-divergence context between an engine and the oracle."""

    num_mismatches: int
    num_vertices: int
    #: First few mismatching vertex ids with (expected, actual) labels.
    examples: tuple[tuple[int, float, float], ...]
    #: Out-degree of the first mismatching vertex (degenerate cuts are a
    #: frequent culprit, so this is the first thing to look at).
    first_out_degree: int
    #: Whether the oracle considers the first mismatching vertex reached.
    first_reached: bool

    def __str__(self) -> str:
        v, exp, act = self.examples[0]
        lines = [
            f"{self.num_mismatches}/{self.num_vertices} labels differ; "
            f"first at vertex {v} (out-degree {self.first_out_degree}, "
            f"{'reached' if self.first_reached else 'unreached'} in oracle): "
            f"expected {exp!r}, got {act!r}",
        ]
        for u, e, a in self.examples[1:]:
            lines.append(f"  vertex {u}: expected {e!r}, got {a!r}")
        return "\n".join(lines)


def diff_labels(
    expected: np.ndarray, actual: np.ndarray, csr: CSRGraph | None = None
) -> LabelDiff | None:
    """Exact (bit-for-bit) label comparison; ``None`` when identical."""
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    if expected.shape != actual.shape:
        return LabelDiff(
            num_mismatches=max(len(expected), len(actual)),
            num_vertices=len(expected),
            examples=((-1, float(len(expected)), float(len(actual))),),
            first_out_degree=-1,
            first_reached=False,
        )
    # NaN-safe exact equality: two NaNs count as equal, anything else
    # must match bit-for-bit (inf == inf holds under ==).
    both_nan = np.isnan(expected) & np.isnan(actual)
    mismatch = ~((expected == actual) | both_nan)
    if not mismatch.any():
        return None
    where = np.flatnonzero(mismatch)
    first = int(where[0])
    examples = tuple(
        (int(v), float(expected[v]), float(actual[v]))
        for v in where[:MAX_DIFF_EXAMPLES]
    )
    return LabelDiff(
        num_mismatches=int(mismatch.sum()),
        num_vertices=len(expected),
        examples=examples,
        first_out_degree=csr.out_degree(first) if csr is not None else -1,
        first_reached=bool(np.isfinite(expected[first]) if len(expected) else False),
    )


@dataclass(frozen=True)
class EngineReport:
    """Outcome of one engine within a differential case."""

    engine: str
    ok: bool
    diff: LabelDiff | None = None
    error: str | None = None


@dataclass
class DifferentialReport:
    """Every engine's labels diffed against the CPU oracle."""

    problem: str
    source: int
    num_vertices: int
    num_edges: int
    config: EtaGraphConfig
    engines: list[EngineReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.engines)

    @property
    def failures(self) -> list[EngineReport]:
        return [e for e in self.engines if not e.ok]

    def summary(self) -> str:
        head = (
            f"{self.problem} from {self.source} on |V|={self.num_vertices} "
            f"|E|={self.num_edges} (K={self.config.degree_limit}, "
            f"smp={self.config.smp}, "
            f"memory={self.config.memory_mode.value}, "
            f"udc={self.config.udc_mode})"
        )
        if self.ok:
            return f"OK: {head}: {len(self.engines)} engines agree with oracle"
        lines = [f"FAIL: {head}"]
        for e in self.failures:
            reason = e.error if e.error else str(e.diff)
            lines.append(f"  [{e.engine}] {reason}")
        return "\n".join(lines)


#: Signature of a pluggable engine: ``(graph, problem_name, source) -> labels``.
EngineFn = Callable[[CSRGraph, str, int], np.ndarray]


def etagraph_engine(
    config: EtaGraphConfig | None = None, device: DeviceSpec = GTX_1080TI
) -> EngineFn:
    """EtaGraph as a pluggable differential engine."""

    def run(csr: CSRGraph, problem_name: str, source: int) -> np.ndarray:
        engine = EtaGraphEngine(csr, config, device)
        return engine.run(get_problem(problem_name), source).labels

    return run


def session_engine(
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    *,
    warm_queries: int = 1,
) -> EngineFn:
    """EtaGraph served through a *warm* topology-resident session.

    The session first answers ``warm_queries`` queries from other
    sources, so the differential case exercises reused UM residency,
    warm caches and recycled per-query buffers — the state a serving
    deployment actually runs in — before the labels under test are
    produced.
    """
    from repro.core.session import EngineSession

    def run(csr: CSRGraph, problem_name: str, source: int) -> np.ndarray:
        problem = get_problem(problem_name)
        with EngineSession(csr, config, device) as session:
            if csr.num_vertices > 1:
                for i in range(warm_queries):
                    session.query(
                        problem, (source + 1 + i) % csr.num_vertices
                    )
            return session.query(problem, source).labels

    return run


def service_engine(
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    *,
    pool_size: int = 2,
    warm_queries: int = 1,
) -> EngineFn:
    """EtaGraph behind the full serving frontend (:mod:`repro.serving`).

    Each case stands up a :class:`~repro.serving.TraversalService`,
    warms its lanes with ``warm_queries`` other-source queries, then
    serves the query under test as a ``visit`` request — so admission,
    EDF dispatch and pool routing all sit between the oracle and the
    labels, and any divergence the frontend introduced shows up as a
    differential failure.
    """
    from repro.serving import TraversalService, VisitRequest

    def run(csr: CSRGraph, problem_name: str, source: int) -> np.ndarray:
        requests = []
        if csr.num_vertices > 1:
            requests = [
                VisitRequest(
                    problem=problem_name,
                    source=(source + 1 + i) % csr.num_vertices,
                    tenant="warm",
                )
                for i in range(warm_queries)
            ]
        requests.append(
            VisitRequest(problem=problem_name, source=source, tenant="probe")
        )
        with TraversalService(
            csr, config, device, pool_size=pool_size,
        ) as service:
            response = service.serve(requests)[-1]
        if not response.ok:
            raise AssertionError(
                f"service refused the probe query: {response.error}"
            )
        return response.labels

    return run


def msbfs_engine(
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    *,
    companion_lanes: int = 7,
) -> EngineFn:
    """EtaGraph's MSBFS wave runner as a differential engine.

    BFS cases run as one bit-packed wave: the probe source shares the
    mask word with up to ``companion_lanes`` other sources and its lane
    is extracted from the *last* position, so lane packing, cross-lane
    OR propagation and per-lane level extraction all sit between the
    oracle and the labels.  Non-BFS problems fall back to a sequential
    session query — MSBFS only serves BFS, and a differential engine
    must answer every case the fuzzer deals it.
    """
    from repro.core import msbfs
    from repro.core.session import EngineSession

    def run(csr: CSRGraph, problem_name: str, source: int) -> np.ndarray:
        problem = get_problem(problem_name)
        with EngineSession(csr, config, device) as session:
            if problem.name != "bfs":
                return session.query(problem, source).labels
            n = csr.num_vertices
            companions = [
                (source + 1 + i) % n
                for i in range(min(companion_lanes, n - 1))
            ]
            wave = msbfs.run_wave(
                session, np.asarray(companions + [source], dtype=np.int64)
            )
            return wave.labels_for(wave.width - 1)

    return run


def baseline_engine(name: str, device: DeviceSpec = GTX_1080TI) -> EngineFn:
    """A Table III baseline as a pluggable differential engine."""
    from repro.baselines import get_framework

    def run(csr: CSRGraph, problem_name: str, source: int) -> np.ndarray:
        fw = get_framework(name, device)
        return fw.run(csr, get_problem(problem_name), source).labels

    return run


#: Named extra-engine factories (``config -> EngineFn``) the fuzz CLI
#: enables by name: ``etagraph-session`` serves each case through a warm
#: topology-resident session, ``etagraph-service`` through the full
#: multi-tenant serving frontend, ``etagraph-msbfs`` through a packed
#: multi-source wave (BFS cases) with the probe in the last lane.
EXTRA_ENGINE_FACTORIES: dict = {
    "etagraph-session": session_engine,
    "etagraph-service": service_engine,
    "etagraph-msbfs": msbfs_engine,
}


def run_differential_case(
    csr: CSRGraph,
    problem_name: str,
    source: int,
    *,
    config: EtaGraphConfig | None = None,
    device: DeviceSpec = GTX_1080TI,
    baselines: Sequence[str] = ALL_BASELINES,
    extra_engines: Mapping[str, EngineFn] | None = None,
    check_invariants: bool = True,
) -> DifferentialReport:
    """Run one problem through EtaGraph, the baselines and the oracle.

    Every engine's labels are compared bit-for-bit against the serial CPU
    oracle.  ``extra_engines`` maps names to ``(graph, problem, source) ->
    labels`` callables, which is how tests inject deliberately broken
    engines to prove the runner catches them.  With ``check_invariants``
    (the default) the EtaGraph run also executes the engine's inline
    invariant checks, so an invariant violation surfaces as an errored
    engine in the report rather than silently passing.
    """
    from dataclasses import replace

    config = config or EtaGraphConfig()
    if check_invariants and not config.check_invariants:
        config = replace(config, check_invariants=True)
    expected = oracle_labels(csr, problem_name, source)

    engines: dict[str, EngineFn] = {
        "etagraph": etagraph_engine(config, device),
        # The same engine served through a warm EngineSession: fuzzing
        # and every differential sweep exercise session reuse for free.
        "etagraph-session": session_engine(config, device),
    }
    for name in baselines:
        engines[name] = baseline_engine(name, device)
    if extra_engines:
        engines.update(extra_engines)

    report = DifferentialReport(
        problem=problem_name,
        source=source,
        num_vertices=csr.num_vertices,
        num_edges=csr.num_edges,
        config=config,
    )
    for name, engine in engines.items():
        try:
            actual = engine(csr, problem_name, source)
        except Exception as exc:  # noqa: BLE001 — reported, not swallowed
            report.engines.append(EngineReport(
                engine=name, ok=False,
                error=f"{type(exc).__name__}: {exc}",
            ))
            continue
        diff = diff_labels(expected, actual, csr)
        report.engines.append(EngineReport(engine=name, ok=diff is None, diff=diff))
    return report
