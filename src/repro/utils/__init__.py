"""Shared utilities: byte-size units, validation helpers, table rendering."""

from repro.utils.units import (
    KIB,
    MIB,
    GIB,
    format_bytes,
    format_ms,
    parse_size,
)
from repro.utils.validation import (
    check_dtype,
    check_nonneg_int,
    check_positive,
    check_probability,
    ensure_array,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_ms",
    "parse_size",
    "check_dtype",
    "check_nonneg_int",
    "check_positive",
    "check_probability",
    "ensure_array",
]
