"""Byte-size and time units used throughout the simulator.

All simulator internals keep sizes in **bytes** and time in **milliseconds**;
these helpers exist so call sites never hand-roll ``1024 * 1024`` literals.
"""

from __future__ import annotations

import re

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(B|KB|KIB|MB|MIB|GB|GIB)?\s*$", re.I)

_UNIT_FACTORS = {
    None: 1,
    "B": 1,
    "KB": KIB,
    "KIB": KIB,
    "MB": MIB,
    "MIB": MIB,
    "GB": GIB,
    "GIB": GIB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size (``"2MB"``, ``"11GB"``, ``4096``) into bytes.

    Binary units are used throughout (``KB`` == KiB == 1024 B), matching how
    GPU memory capacities are conventionally quoted.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return int(text)
    m = _SIZE_RE.match(text)
    if m is None:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(m.group(1))
    unit = m.group(2).upper() if m.group(2) else None
    return int(value * _UNIT_FACTORS[unit])


def format_bytes(n: int | float) -> str:
    """Render a byte count with a binary-unit suffix (``1.5 MiB``)."""
    n = float(n)
    for unit, factor in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{n:.0f} B"


def format_ms(ms: float) -> str:
    """Render a simulated duration in the most readable unit."""
    if ms >= 1000.0:
        return f"{ms / 1000.0:.2f} s"
    if ms >= 1.0:
        return f"{ms:.1f} ms"
    return f"{ms * 1000.0:.1f} us"
