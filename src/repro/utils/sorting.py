"""Fast exact replacements for the simulator's sorting hot spots.

Two numpy idioms dominated the simulator's profile:

* ``np.unique`` on int64 keys (the coalescer's transaction dedup) — the
  hash-based implementation in recent numpy is an order of magnitude
  slower than an explicit sort + run-length mask on these workloads;
* ``np.argsort(kind="stable")`` on int64 keys (the reuse-window cache's
  previous-occurrence scan) — a plain quicksort over ``(key << b) | i``
  packed values yields the identical stable permutation several times
  faster, because the tie-break is baked into the sort key.

Both helpers are *exact*: they return bit-identical results to the numpy
expressions they replace, for any int64 input within the documented
range, falling back to the numpy expression when packing would overflow.
"""

from __future__ import annotations

import numpy as np


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Exactly ``np.unique(values)`` for integer arrays, via sort+mask."""
    values = np.asarray(values)
    if len(values) == 0:
        return values[:0].copy()
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def stable_argsort(keys: np.ndarray) -> np.ndarray:
    """Exactly ``np.argsort(keys, kind="stable")`` for non-negative
    int64 keys, via one quicksort over packed ``(key, index)`` values.

    Packing needs ``key < 2**(63 - ceil(log2(n)))``; wider keys fall
    back to numpy's stable argsort.
    """
    keys = np.asarray(keys, dtype=np.int64)
    n = len(keys)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    index_bits = int(n - 1).bit_length() or 1
    max_key = int(keys.max())
    if keys.min() < 0 or max_key >> (63 - index_bits):
        return np.argsort(keys, kind="stable")
    packed = (keys << index_bits) | np.arange(n, dtype=np.int64)
    packed.sort()
    return packed & ((1 << index_bits) - 1)
