"""Argument-validation helpers.

These keep constructor bodies small and make error messages uniform across
the library, which matters for a simulator whose misuse would otherwise
surface as silent nonsense numbers.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import GraphFormatError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_nonneg_int(name: str, value: int) -> int:
    """Require ``value`` to be a non-negative integer (numpy ints accepted)."""
    if isinstance(value, (bool, np.bool_)) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def ensure_array(name: str, value: Any, dtype: np.dtype | type) -> np.ndarray:
    """Convert ``value`` to a 1-D contiguous array of ``dtype``.

    Values already of the right dtype are passed through without copying,
    following the "views, not copies" guidance for numerical code.
    """
    arr = np.asarray(value)
    if arr.ndim != 1:
        raise GraphFormatError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.dtype != np.dtype(dtype):
        arr = arr.astype(dtype)
    return np.ascontiguousarray(arr)


def check_dtype(name: str, arr: np.ndarray, dtype: np.dtype | type) -> np.ndarray:
    """Require ``arr`` to already have ``dtype`` (no silent conversion)."""
    if arr.dtype != np.dtype(dtype):
        raise TypeError(f"{name} must have dtype {np.dtype(dtype)}, got {arr.dtype}")
    return arr
