"""Ragged-array helpers shared by UDC expansion and frontier gathering.

Graph traversal repeatedly needs "for each item i, the values
``base[i] .. base[i] + count[i]``" flattened into one array.  These helpers
express that without Python loops; they are the hot path of the engine.
"""

from __future__ import annotations

import numpy as np


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` — vectorized.

    Output position ``j`` belongs to segment ``s``; its value is ``j``
    minus the output-space start of ``s``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def ragged_gather_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices ``[starts[i], starts[i]+1, ..., starts[i]+counts[i]-1]``.

    This is how the engine turns a set of CSR slices (the shadow vertices'
    edge ranges) into one gather index array.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if len(starts) != len(counts):
        raise ValueError(
            f"starts/counts length mismatch: {len(starts)} vs {len(counts)}"
        )
    return np.repeat(starts, counts) + ragged_arange(counts)


def segment_ids(counts: np.ndarray) -> np.ndarray:
    """``concatenate([full(c, i) for i, c in enumerate(counts)])``."""
    counts = np.asarray(counts, dtype=np.int64)
    return np.repeat(np.arange(len(counts), dtype=np.int64), counts)
