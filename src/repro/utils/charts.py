"""Terminal chart rendering for experiment reports.

The paper's figures are plots; the experiment modules print their data
as tables *and* as quick ASCII charts so a terminal run of
``python -m repro.bench fig2`` conveys the same shape the figure does.
"""

from __future__ import annotations

from typing import Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def bar_chart(
    values: Sequence[float],
    labels: Sequence[object] | None = None,
    *,
    width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal bar chart, one row per value."""
    values = [float(v) for v in values]
    if not values:
        return title or ""
    peak = max(max(values), 1e-12)
    if labels is None:
        labels = [str(i) for i in range(len(values))]
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        bar = "#" * max(1 if v > 0 else 0, round(v / peak * width))
        lines.append(f"{str(label):>{label_w}} | {bar} {v:g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline (8 levels)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * len(values)
    return "".join(
        _BLOCKS[1 + round((v - lo) / span * (len(_BLOCKS) - 2))]
        for v in values
    )


def timeline_chart(
    intervals: Sequence[tuple[str, float, float]],
    *,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Fig. 4-style activity bands: one row per kind, '=' where busy.

    ``intervals`` are ``(kind, start, end)`` tuples in any time unit.
    """
    if not intervals:
        return title or ""
    t0 = min(iv[1] for iv in intervals)
    t1 = max(iv[2] for iv in intervals)
    span = max(t1 - t0, 1e-12)
    kinds = sorted({iv[0] for iv in intervals})
    label_w = max(len(k) for k in kinds)
    lines = [title] if title else []
    for kind in kinds:
        cells = [" "] * width
        for k, start, end in intervals:
            if k != kind:
                continue
            lo = int((start - t0) / span * width)
            hi = max(lo + 1, int((end - t0) / span * width))
            for i in range(lo, min(hi, width)):
                cells[i] = "="
        lines.append(f"{kind:>{label_w}} |{''.join(cells)}|")
    return "\n".join(lines)
