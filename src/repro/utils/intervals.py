"""Interval arithmetic shared by the timeline and the telemetry plane.

One implementation of the disjoint-union / intersection helpers serves
:mod:`repro.gpu.timeline` (Fig. 4 overlap statistics) and
:mod:`repro.observability` (per-track busy time in trace summaries), so
the two layers can never disagree about what "busy" means.
"""

from __future__ import annotations


def union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge possibly-overlapping ``(start, end)`` pairs into a disjoint,
    sorted union."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def intersection_length(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    """Total length of the overlap between two disjoint sorted unions."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def union_length(intervals: list[tuple[float, float]]) -> float:
    """Total covered length of an arbitrary interval collection."""
    return sum(hi - lo for lo, hi in union(intervals))
