"""Minimal fixed-width table renderer for benchmark reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)
