"""Wall-clock performance harness for the simulator itself.

Everything else in this repository measures *simulated* GPU time; this
package measures how fast the **simulator** runs on the host — the
metric the ROADMAP's "as fast as the hardware allows" goal is gated on.
:func:`repro.perf.harness.run_perf` drives a serving-style BFS workload
(one topology-resident :class:`~repro.core.session.EngineSession` per
canonical graph, a batch of repeated sources) and reports

* ``wall_edges_per_sec`` — simulated edges traced per wall second,
* ``wall_launches_per_sec`` — kernel-model launches per wall second,
* ``wall_cache_accesses_per_sec`` — cache-model sector accesses per
  wall second,
* ``wall_ms_per_query`` — end-to-end wall clock per traversal query,

alongside the deterministic workload invariants (edges traced, launches,
iterations, memo hit/miss counts) that pin the workload itself.

``python -m repro.bench perf`` (or ``python -m repro.perf``) runs the
harness and writes ``BENCH_PR3.json``; ``python -m repro.bench compare``
gates the ``wall_*`` metrics with a direction-aware, generous tolerance
(see :mod:`repro.bench.compare`) so CI fails only on gross wall-clock
regressions while the deterministic leaves stay tightly pinned.
"""

from repro.perf.harness import CANONICAL_GRAPHS, PerfSettings, run_perf

__all__ = ["CANONICAL_GRAPHS", "PerfSettings", "run_perf"]
