"""``python -m repro.perf`` — alias for ``python -m repro.bench perf``."""

from repro.perf.harness import main

if __name__ == "__main__":
    raise SystemExit(main())
