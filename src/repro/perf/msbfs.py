"""MSBFS wave-vs-sequential throughput (``python -m repro.bench msbfs``).

The tentpole claim of the wave runner (:mod:`repro.core.msbfs`) is a
wall-clock one: a 64-source wave does one edge expansion, one
``TracePlan`` build and one cache pass per iteration where the
sequential batch does 64 of each, so the *same delivered work* (64
per-source BFS solutions) finishes many times faster.  This harness
measures exactly that, per canonical graph, on one warm session each:

* **sequential leg** — ``sources`` BFS queries through a warm
  :class:`~repro.core.session.EngineSession`, the ``run_batch``
  default;
* **wave leg** — the same sources as MSBFS waves of ``wave_width``
  lanes through an identically warmed session, labels bit-identical
  per source (asserted here on every run — a perf number for a wrong
  answer is worthless).

Both legs report ``wall_edges_per_sec`` over the **delivered** edge
count — the sequential batch's total edges scanned — so the two
throughputs share a numerator and their ratio is precisely the
wall-time ratio.  ``wall_speedup_edges_per_sec`` is that ratio (a
throughput ratio: ``repro.bench compare`` gates it against *falling*).
Deterministic leaves (edge counts, iterations, simulated ms, memo
counters) keep the tight tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.runner import ExperimentReport
from repro.bench.workloads import bench_device
from repro.core.config import EtaGraphConfig
from repro.core.multi import pick_sources
from repro.core.session import EngineSession
from repro.graph import datasets
from repro.perf.harness import CANONICAL_GRAPHS
from repro.utils.tables import render_table


@dataclass(frozen=True)
class MsbfsSettings:
    """Shape of one wave-vs-sequential run."""

    graphs: tuple[str, ...] = CANONICAL_GRAPHS
    #: Distinct BFS sources per graph (= total lanes over all waves).
    sources: int = 64
    #: Lanes per wave; sources chunk into ceil(sources/width) waves.
    wave_width: int = 64
    source_seed: int = 3

    @classmethod
    def quick(cls) -> "MsbfsSettings":
        # CI-sized: the sequential leg dominates the wall cost, so the
        # quick run shrinks the batch, not the wave width.
        return cls(sources=16, wave_width=16)


def measure_graph(name: str, settings: MsbfsSettings, device) -> dict:
    """Both legs on one graph; returns the metric dict."""
    from repro.core import msbfs

    csr, _ = datasets.load(name, weighted=False)
    sources = pick_sources(csr, settings.sources, seed=settings.source_seed)
    config = EtaGraphConfig()

    # --- sequential leg ----------------------------------------------
    with EngineSession(csr, config, device) as session:
        session.query("bfs", int(sources[0]))  # untimed warm-up
        t0 = time.perf_counter()
        seq_results = [session.query("bfs", int(s)) for s in sources]
        wall_sequential_s = max(time.perf_counter() - t0, 1e-9)
    delivered_edges = sum(
        r.stats.total_edges_scanned for r in seq_results
    )
    sequential_simulated_ms = sum(r.total_ms for r in seq_results)

    # --- wave leg -----------------------------------------------------
    with EngineSession(csr, config, device) as session:
        session.query("bfs", int(sources[0]))  # identical warm-up
        t0 = time.perf_counter()
        waves = [
            msbfs.run_wave(session, chunk)
            for chunk in msbfs.wave_chunks(sources, settings.wave_width)
        ]
        wall_wave_s = max(time.perf_counter() - t0, 1e-9)
        memo_hits = session.memo_hits
        memo_misses = session.memo_misses

    # A perf number for a wrong answer is worthless: every lane must be
    # bit-identical to its sequential counterpart.
    lane = 0
    for wave in waves:
        for i in range(wave.width):
            if wave.labels_for(i).tobytes() != \
                    seq_results[lane].labels.tobytes():
                raise AssertionError(
                    f"{name}: wave lane for source {int(sources[lane])} "
                    "diverged from the sequential query"
                )
            lane += 1

    wave_edges = sum(w.stats.total_edges_scanned for w in waves)
    wave_iterations = sum(w.iterations for w in waves)
    wave_simulated_ms = sum(w.total_ms for w in waves)

    return {
        # Deterministic workload invariants (tight compare tolerance).
        "num_vertices": csr.num_vertices,
        "num_edges": csr.num_edges,
        "queries": len(sources),
        "waves": len(waves),
        "wave_width": settings.wave_width,
        "delivered_edges": delivered_edges,
        "wave_edges_scanned": wave_edges,
        "wave_iterations": wave_iterations,
        "sequential_simulated_ms": sequential_simulated_ms,
        "wave_simulated_ms": wave_simulated_ms,
        "memo_hits": memo_hits,
        "memo_misses": memo_misses,
        # Host wall-clock (generous, direction-aware compare tolerance).
        # Both throughputs count *delivered* edges (the sequential
        # batch's total), so their ratio is the wall-time ratio.
        "wall_sequential_s": wall_sequential_s,
        "wall_wave_s": wall_wave_s,
        "wall_edges_per_sec_sequential": delivered_edges / wall_sequential_s,
        "wall_edges_per_sec": delivered_edges / wall_wave_s,
        "wall_speedup_edges_per_sec": wall_sequential_s / wall_wave_s,
    }


def run_msbfs(
    quick: bool = False, settings: MsbfsSettings | None = None
) -> ExperimentReport:
    """Measure wave-vs-sequential throughput; returns a saveable report.

    ``data`` maps each graph to its metric dict plus a ``canonical``
    aggregate; the headline is ``canonical.wall_speedup_edges_per_sec``
    — the whole-grid wall-time ratio of the sequential batch to the
    wave batch at equal delivered work.
    """
    if settings is None:
        settings = MsbfsSettings.quick() if quick else MsbfsSettings()
    device = bench_device()

    data: dict = {}
    total_delivered = 0
    total_seq_wall = 0.0
    total_wave_wall = 0.0
    total_queries = 0
    rows = []
    for name in settings.graphs:
        metrics = measure_graph(name, settings, device)
        data[name] = metrics
        total_delivered += metrics["delivered_edges"]
        total_seq_wall += metrics["wall_sequential_s"]
        total_wave_wall += metrics["wall_wave_s"]
        total_queries += metrics["queries"]
        rows.append([
            name,
            metrics["queries"],
            metrics["waves"],
            f"{metrics['delivered_edges'] / 1e6:.2f} M",
            f"{metrics['wall_edges_per_sec_sequential'] / 1e6:.2f} M/s",
            f"{metrics['wall_edges_per_sec'] / 1e6:.2f} M/s",
            f"{metrics['wall_speedup_edges_per_sec']:.1f}x",
        ])

    total_seq_wall = max(total_seq_wall, 1e-9)
    total_wave_wall = max(total_wave_wall, 1e-9)
    data["canonical"] = {
        "queries": total_queries,
        "delivered_edges": total_delivered,
        "wall_sequential_s": total_seq_wall,
        "wall_wave_s": total_wave_wall,
        "wall_edges_per_sec_sequential": total_delivered / total_seq_wall,
        "wall_edges_per_sec": total_delivered / total_wave_wall,
        "wall_speedup_edges_per_sec": total_seq_wall / total_wave_wall,
    }
    data["settings"] = {
        "quick": bool(quick),
        "sources": settings.sources,
        "wave_width": settings.wave_width,
        "source_seed": settings.source_seed,
    }
    rows.append([
        "canonical",
        total_queries,
        "",
        f"{total_delivered / 1e6:.2f} M",
        f"{total_delivered / total_seq_wall / 1e6:.2f} M/s",
        f"{total_delivered / total_wave_wall / 1e6:.2f} M/s",
        f"{total_seq_wall / total_wave_wall:.1f}x",
    ])

    text = render_table(
        ["graph", "queries", "waves", "edges", "sequential", "wave",
         "speedup"],
        rows,
        title=(
            f"MSBFS wave vs sequential batch: {settings.sources} sources, "
            f"{settings.wave_width}-lane waves, equal delivered work"
        ),
    )
    return ExperimentReport(
        experiment="msbfs",
        title="Multi-source wave traversal wall-clock throughput",
        text=text,
        data=data,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench msbfs",
        description="Measure MSBFS wave vs sequential batch throughput.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer sources and narrower waves (CI-sized run)",
    )
    parser.add_argument(
        "--out", default="BENCH_PR7.json",
        help="write the report here (default BENCH_PR7.json; '-' skips)",
    )
    parser.add_argument(
        "--json-dir", default=None,
        help="also write <dir>/msbfs.json for `repro.bench compare`",
    )
    parser.add_argument(
        "--sources", type=int, default=None,
        help="override distinct sources per graph",
    )
    parser.add_argument(
        "--wave-width", type=int, default=None,
        help="override lanes per wave (1..64)",
    )
    parser.add_argument(
        "--graphs", default=None,
        help="comma-separated graph list (default: canonical three)",
    )
    args = parser.parse_args(argv)

    settings = MsbfsSettings.quick() if args.quick else MsbfsSettings()
    overrides = {}
    if args.sources is not None:
        overrides["sources"] = args.sources
    if args.wave_width is not None:
        overrides["wave_width"] = args.wave_width
    if args.graphs is not None:
        overrides["graphs"] = tuple(
            g.strip() for g in args.graphs.split(",") if g.strip()
        )
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)

    report = run_msbfs(quick=args.quick, settings=settings)
    print(report.text)

    from repro.bench.export import report_to_dict, save_report

    if args.out and args.out != "-":
        Path(args.out).write_text(
            json.dumps(report_to_dict(report), indent=2)
        )
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json_dir:
        out_dir = Path(args.json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        save_report(report, out_dir / "msbfs.json")
        print(f"wrote {out_dir / 'msbfs.json'}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
