"""Simulator-throughput measurement (``python -m repro.bench perf``).

The workload is the serving regime the session layer exists for: per
canonical graph, one topology-resident :class:`EngineSession` answers a
batch of BFS queries — ``sources`` distinct sources, each asked
``repeats`` times (popular sources repeat in a serving mix, which is
exactly what the session's frontier memo amortizes).  One untimed
warm-up query pays topology placement so the timed region measures
steady-state query throughput, not setup.

Metric naming is load-bearing: keys prefixed ``wall_`` are host
wall-clock measurements and are gated generously (and direction-aware)
by ``repro.bench compare``; every other numeric leaf is a deterministic
function of (graph seed, config) and is gated tightly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.runner import ExperimentReport
from repro.bench.workloads import bench_device
from repro.core.config import EtaGraphConfig
from repro.core.multi import pick_sources
from repro.core.session import EngineSession
from repro.graph import datasets
from repro.utils.tables import render_table

#: The three canonical perf graphs: the small-dataset grid every
#: framework and CI machine can run.
CANONICAL_GRAPHS = ("slashdot", "livejournal", "com-orkut")


@dataclass(frozen=True)
class PerfSettings:
    """Shape of one harness run."""

    graphs: tuple[str, ...] = CANONICAL_GRAPHS
    #: Distinct BFS sources per graph.
    sources: int = 8
    #: How many times the source batch is replayed against the warm
    #: session (repeat >= 2 exercises the frontier memo's hit path).
    repeats: int = 3
    algorithm: str = "bfs"
    source_seed: int = 3
    #: Run the timed region with spans enabled.  Off by default so the
    #: headline numbers measure the untraced engine; turning it on is
    #: how the <5% telemetry-overhead budget is measured (run both ways
    #: and compare ``wall_ms_per_query``).
    telemetry: bool = False
    #: Write one Chrome trace-event file per graph (the last timed
    #: query's trace) into this directory.  Implies ``telemetry``.
    trace_dir: str | None = None

    @classmethod
    def quick(cls) -> "PerfSettings":
        return cls(sources=4, repeats=2)


def _cache_accesses(session: EngineSession) -> int:
    """Total sector accesses processed by the session's cache models."""
    return session.caches.unified.accesses + session.caches.l2.accesses


def measure_graph(name: str, settings: PerfSettings, device) -> dict:
    """Run the serving workload on one graph; returns the metric dict."""
    csr, _ = datasets.load(name, weighted=False)
    sources = pick_sources(csr, settings.sources, seed=settings.source_seed)
    telemetry = settings.telemetry or settings.trace_dir is not None
    config = EtaGraphConfig(telemetry=telemetry)

    with EngineSession(csr, config, device) as session:
        # Untimed warm-up: pays topology placement + first-query faults.
        session.query(settings.algorithm, int(sources[0]))

        accesses_before = _cache_accesses(session)
        results = []
        t0 = time.perf_counter()
        for _ in range(settings.repeats):
            for s in sources:
                results.append(session.query(settings.algorithm, int(s)))
        wall_s = time.perf_counter() - t0
        cache_accesses = _cache_accesses(session) - accesses_before
        memo_hits = getattr(session, "memo_hits", 0)
        memo_misses = getattr(session, "memo_misses", 0)

    if settings.trace_dir is not None:
        # Written after the timed region closed, so file I/O never
        # perturbs the wall-clock numbers.
        from repro.observability.export import write_chrome_trace

        trace_dir = Path(settings.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        write_chrome_trace(
            results[-1].trace, trace_dir / f"perf-{name}.json"
        )

    edges = sum(r.stats.total_edges_scanned for r in results)
    launches = sum(r.profiler.kernels.launches for r in results)
    iterations = sum(r.iterations for r in results)
    simulated_ms = sum(r.total_ms for r in results)
    queries = len(results)
    wall_s = max(wall_s, 1e-9)

    return {
        # Deterministic workload invariants (tight compare tolerance).
        "num_vertices": csr.num_vertices,
        "num_edges": csr.num_edges,
        "queries": queries,
        "iterations": iterations,
        "edges_traced": edges,
        "kernel_launches": launches,
        "cache_accesses": cache_accesses,
        "simulated_total_ms": simulated_ms,
        "memo_hits": memo_hits,
        "memo_misses": memo_misses,
        # Host wall-clock (generous, direction-aware compare tolerance).
        "wall_s": wall_s,
        "wall_ms_per_query": wall_s * 1e3 / queries,
        "wall_edges_per_sec": edges / wall_s,
        "wall_launches_per_sec": launches / wall_s,
        "wall_cache_accesses_per_sec": cache_accesses / wall_s,
    }


def run_perf(
    quick: bool = False, settings: PerfSettings | None = None
) -> ExperimentReport:
    """Measure simulator throughput; returns a saveable report.

    ``data`` maps each graph name to its metric dict plus a
    ``canonical`` aggregate over all graphs — the headline
    ``canonical.wall_edges_per_sec`` is the number successive PRs are
    compared on.
    """
    if settings is None:
        settings = PerfSettings.quick() if quick else PerfSettings()
    device = bench_device()

    data: dict = {}
    total_edges = 0
    total_launches = 0
    total_accesses = 0
    total_queries = 0
    total_wall = 0.0
    rows = []
    for name in settings.graphs:
        metrics = measure_graph(name, settings, device)
        data[name] = metrics
        total_edges += metrics["edges_traced"]
        total_launches += metrics["kernel_launches"]
        total_accesses += metrics["cache_accesses"]
        total_queries += metrics["queries"]
        total_wall += metrics["wall_s"]
        rows.append([
            name,
            metrics["queries"],
            f"{metrics['edges_traced'] / 1e6:.2f} M",
            f"{metrics['wall_ms_per_query']:.1f}",
            f"{metrics['wall_edges_per_sec'] / 1e6:.2f} M/s",
            f"{metrics['wall_launches_per_sec']:.0f}/s",
            f"{metrics['wall_cache_accesses_per_sec'] / 1e6:.2f} M/s",
            f"{metrics['memo_hits']}/{metrics['memo_hits'] + metrics['memo_misses']}",
        ])

    total_wall = max(total_wall, 1e-9)
    data["canonical"] = {
        "queries": total_queries,
        "edges_traced": total_edges,
        "kernel_launches": total_launches,
        "cache_accesses": total_accesses,
        "wall_s": total_wall,
        "wall_ms_per_query": total_wall * 1e3 / max(total_queries, 1),
        "wall_edges_per_sec": total_edges / total_wall,
        "wall_launches_per_sec": total_launches / total_wall,
        "wall_cache_accesses_per_sec": total_accesses / total_wall,
    }
    data["settings"] = {
        "quick": bool(quick),
        "sources": settings.sources,
        "repeats": settings.repeats,
        "algorithm": settings.algorithm,
        "telemetry": bool(
            settings.telemetry or settings.trace_dir is not None
        ),
    }
    rows.append([
        "canonical",
        total_queries,
        f"{total_edges / 1e6:.2f} M",
        f"{total_wall * 1e3 / max(total_queries, 1):.1f}",
        f"{total_edges / total_wall / 1e6:.2f} M/s",
        f"{total_launches / total_wall:.0f}/s",
        f"{total_accesses / total_wall / 1e6:.2f} M/s",
        "",
    ])

    text = render_table(
        ["graph", "queries", "edges", "ms/query", "edges/s", "launches/s",
         "cache acc/s", "memo hits"],
        rows,
        title=(
            f"Simulator throughput: {settings.algorithm} x "
            f"{settings.sources} sources x {settings.repeats} repeats "
            f"on a warm session"
        ),
    )
    return ExperimentReport(
        experiment="perf",
        title="Simulator wall-clock throughput",
        text=text,
        data=data,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Measure simulator (host wall-clock) throughput.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer sources/repeats (CI-sized run)",
    )
    parser.add_argument(
        "--out", default="BENCH_PR3.json",
        help="write the report here (default BENCH_PR3.json; '-' skips)",
    )
    parser.add_argument(
        "--json-dir", default=None,
        help="also write <dir>/perf.json for `repro.bench compare`",
    )
    parser.add_argument(
        "--sources", type=int, default=None,
        help="override distinct sources per graph",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="override batch replay count",
    )
    parser.add_argument(
        "--graphs", default=None,
        help="comma-separated graph list (default: canonical three)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="enable spans inside the timed region (overhead measurement)",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="write one Chrome trace per graph here (implies --telemetry)",
    )
    args = parser.parse_args(argv)

    settings = PerfSettings.quick() if args.quick else PerfSettings()
    overrides = {}
    if args.sources is not None:
        overrides["sources"] = args.sources
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.graphs is not None:
        overrides["graphs"] = tuple(
            g.strip() for g in args.graphs.split(",") if g.strip()
        )
    if args.telemetry:
        overrides["telemetry"] = True
    if args.trace_dir is not None:
        overrides["trace_dir"] = args.trace_dir
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)

    report = run_perf(quick=args.quick, settings=settings)
    print(report.text)

    from repro.bench.export import report_to_dict, save_report

    if args.out and args.out != "-":
        Path(args.out).write_text(
            json.dumps(report_to_dict(report), indent=2)
        )
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json_dir:
        out_dir = Path(args.json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        save_report(report, out_dir / "perf.json")
        print(f"wrote {out_dir / 'perf.json'}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
