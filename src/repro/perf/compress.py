"""Compressed-topology density and out-of-core placement throughput
(``python -m repro.bench compress``).

Two sections, one report (``BENCH_PR8.json`` by default):

* **Compression density** — encode each surrogate with
  :class:`~repro.graph.compressed.CompressedCSRGraph` and report measured
  ``bits_per_edge`` / ``bits_per_node`` against dense CSR's
  ``32 * (|E| + |V|) / |E|``.  Web surrogates must land at or below 60%
  of dense (hard-asserted here, gated by ``repro.bench compare``'s
  one-sided ``bits_*`` rule thereafter).
* **Out-of-core placement throughput** — a raised-scale web surrogate
  (:data:`~repro.graph.datasets.RAISED_DATASETS`; dense topology well
  past the scaled device capacity) served by one warm
  :class:`~repro.core.session.EngineSession` per placement x encoding
  combo: UM on-demand (``um_oversubscribed``) vs EMOGI-style
  ``direct_access``, each over dense and compressed topology.  Labels
  are asserted identical across all combos; simulated traversal time is
  asserted strictly better for direct access (the modeled claim);
  host wall throughput is reported with the usual ``wall_`` naming.

Metric naming is load-bearing: ``wall_*`` leaves are host wall-clock
(generous, direction-aware compare gate), ``bits_*`` leaves are
compression density (tight, flagged only when they rise); everything
else is deterministic and gated tightly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.runner import ExperimentReport
from repro.bench.workloads import bench_device
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.multi import pick_sources
from repro.core.session import EngineSession
from repro.errors import InvariantViolation
from repro.graph import datasets
from repro.graph.compressed import CompressedCSRGraph
from repro.utils.tables import render_table

#: Acceptance bound: compressed topology on web surrogates must need at
#: most this fraction of dense CSR's bits.
WEB_RATIO_BOUND = 0.60

#: Density section graphs (full run).  One social graph rides along for
#: contrast; the bound applies to the ``web`` kind only.
DENSITY_GRAPHS = ("livejournal", "uk-2005", "sk-2005", "uk-2006")
DENSITY_GRAPHS_QUICK = ("livejournal", "uk-2005")

#: The placement combos of the throughput section, in report order.
PLACEMENTS = (
    ("um_oversubscribed", MemoryMode.UM_ON_DEMAND),
    ("direct_access", MemoryMode.DIRECT_ACCESS),
)
ENCODINGS = ("dense", "compressed")


@dataclass(frozen=True)
class CompressSettings:
    """Shape of one ``repro.bench compress`` run."""

    density_graphs: tuple[str, ...] = DENSITY_GRAPHS
    #: The oversubscribed graph of the throughput section.
    raised_graph: str = "uk-2005-x8"
    #: Distinct BFS sources per combo (the first is always the dataset's
    #: canonical deep-crawl source).
    sources: int = 3
    #: Batch replays against the warm session (>= 2 exercises the
    #: frontier memo under every placement).
    repeats: int = 2
    source_seed: int = 8

    @classmethod
    def quick(cls) -> "CompressSettings":
        return cls(density_graphs=DENSITY_GRAPHS_QUICK,
                   raised_graph="uk-2005-x4", sources=2, repeats=2)


def dense_bits_per_edge(csr) -> float:
    """Dense CSR topology bits amortized over edges: ``32(|E|+|V|)/|E|``."""
    return 32.0 * (csr.num_edges + csr.num_vertices) / max(csr.num_edges, 1)


def measure_density(name: str) -> dict:
    """Encode one surrogate; returns its density metrics."""
    csr, _ = datasets.load(name, weighted=False)
    compressed = CompressedCSRGraph(csr)
    dense_bits = dense_bits_per_edge(csr)
    ratio = compressed.total_bits_per_edge / dense_bits
    kind = datasets.get_spec(name).kind
    if kind == "web" and ratio > WEB_RATIO_BOUND:
        raise InvariantViolation(
            f"{name}: compressed topology needs {ratio:.1%} of dense CSR "
            f"bits — web surrogates must stay at or below "
            f"{WEB_RATIO_BOUND:.0%}"
        )
    return {
        "num_vertices": csr.num_vertices,
        "num_edges": csr.num_edges,
        "bits_per_edge": compressed.bits_per_edge,
        "bits_per_node": compressed.bits_per_node,
        "bits_per_edge_total": compressed.total_bits_per_edge,
        "dense_bits_per_edge_total": dense_bits,
        "compression_ratio": ratio,
    }


def measure_combo(
    topology, sources, mode: MemoryMode, settings: CompressSettings, device
) -> tuple[dict, np.ndarray]:
    """Serve the BFS batch on one placement x encoding combo.

    Returns ``(metrics, labels-of-first-source)`` — the labels feed the
    cross-combo bit-identity check.
    """
    config = EtaGraphConfig(memory_mode=mode)
    with EngineSession(topology, config, device) as session:
        # Untimed warm-up: pays placement (and, for the compressed
        # encodings, the one-time host-side decode).
        session.query("bfs", int(sources[0]))

        results = []
        t0 = time.perf_counter()
        for _ in range(settings.repeats):
            for s in sources:
                results.append(session.query("bfs", int(s)))
        wall_s = max(time.perf_counter() - t0, 1e-9)

    edges = sum(r.stats.total_edges_scanned for r in results)
    metrics = {
        # Deterministic (tight compare tolerance).
        "queries": len(results),
        "iterations": sum(r.iterations for r in results),
        "edges_traced": edges,
        "simulated_total_ms": sum(r.total_ms for r in results),
        # Host wall-clock (generous, direction-aware).
        "wall_s": wall_s,
        "wall_ms_per_query": wall_s * 1e3 / len(results),
        "wall_edges_per_sec": edges / wall_s,
    }
    return metrics, results[0].labels


def run_compress(
    quick: bool = False, settings: CompressSettings | None = None
) -> ExperimentReport:
    """Run both sections; returns a saveable report."""
    if settings is None:
        settings = CompressSettings.quick() if quick else CompressSettings()
    device = bench_device()

    # --- section 1: compression density -------------------------------
    density: dict = {}
    density_rows = []
    graphs = tuple(settings.density_graphs)
    if settings.raised_graph not in graphs:
        graphs = graphs + (settings.raised_graph,)
    for name in graphs:
        m = measure_density(name)
        density[name] = m
        density_rows.append([
            name, f"{m['num_edges']:,}", f"{m['bits_per_edge']:.2f}",
            f"{m['bits_per_node']:.2f}", f"{m['bits_per_edge_total']:.2f}",
            f"{m['dense_bits_per_edge_total']:.2f}",
            f"{m['compression_ratio']:.1%}",
        ])

    # --- section 2: out-of-core placement throughput -------------------
    name = settings.raised_graph
    csr, canonical = datasets.load(name, weighted=False)
    compressed = CompressedCSRGraph(csr)
    extra = pick_sources(csr, settings.sources - 1,
                         seed=settings.source_seed) \
        if settings.sources > 1 else np.empty(0, dtype=np.int64)
    sources = np.concatenate(([canonical], extra)).astype(np.int64)

    combos: dict = {}
    labels_ref = None
    throughput_rows = []
    for rung, mode in PLACEMENTS:
        for encoding in ENCODINGS:
            topology = compressed if encoding == "compressed" else csr
            metrics, labels = measure_combo(
                topology, sources, mode, settings, device
            )
            if labels_ref is None:
                labels_ref = labels
            elif not np.array_equal(labels, labels_ref):
                raise InvariantViolation(
                    f"{name}: {rung}+{encoding} labels diverge from "
                    f"{PLACEMENTS[0][0]}+{ENCODINGS[0]}"
                )
            combos[f"{rung}+{encoding}"] = metrics
            throughput_rows.append([
                f"{rung}+{encoding}", metrics["queries"],
                f"{metrics['simulated_total_ms']:.2f}",
                f"{metrics['wall_ms_per_query']:.0f}",
                f"{metrics['wall_edges_per_sec'] / 1e6:.2f} M/s",
            ])

    # Direct access must beat UM oversubscription on the modeled clock
    # for both encodings — the EMOGI claim this PR reproduces.
    speedups: dict = {}
    for encoding in ENCODINGS:
        um = combos[f"um_oversubscribed+{encoding}"]
        da = combos[f"direct_access+{encoding}"]
        sim = um["simulated_total_ms"] / max(da["simulated_total_ms"], 1e-12)
        if sim <= 1.0:
            raise InvariantViolation(
                f"{name}/{encoding}: direct access is not faster than UM "
                f"on the simulated clock (speedup {sim:.3f}x)"
            )
        speedups[encoding] = {
            "sim_speedup": sim,
            "wall_edges_per_sec_ratio": (
                da["wall_edges_per_sec"] / max(um["wall_edges_per_sec"],
                                               1e-12)
            ),
        }

    text = "\n\n".join([
        render_table(
            ["graph", "edges", "bits/edge", "bits/node", "total b/edge",
             "dense b/edge", "ratio"],
            density_rows,
            title="Compressed CSR density (delta + varint vs dense CSR)",
        ),
        render_table(
            ["placement", "queries", "sim ms", "wall ms/query", "edges/s"],
            throughput_rows,
            title=(
                f"Out-of-core serving on {name} "
                f"(|E|={csr.num_edges:,}, dense topology "
                f"{csr.nbytes / 2**20:.0f} MiB vs "
                f"{device.memory_capacity / 2**20:.0f} MiB device)"
            ),
        ),
    ])
    return ExperimentReport(
        experiment="compress",
        title="Compressed topology + direct-access placement",
        text=text,
        data={
            "density": density,
            "raised": {
                "combos": combos,
                "speedups": speedups,
                "num_vertices": csr.num_vertices,
                "num_edges": csr.num_edges,
            },
            "settings": {
                "quick": bool(quick),
                "raised_graph": settings.raised_graph,
                "sources": settings.sources,
                "repeats": settings.repeats,
            },
        },
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench compress",
        description="Measure compression density and out-of-core "
                    "placement throughput.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller raised graph and batch (CI-sized run)",
    )
    parser.add_argument(
        "--out", default="BENCH_PR8.json",
        help="write the report here (default BENCH_PR8.json; '-' skips)",
    )
    parser.add_argument(
        "--json-dir", default=None,
        help="also write <dir>/compress.json for `repro.bench compare`",
    )
    parser.add_argument(
        "--raised-graph", default=None,
        help="override the throughput section's graph",
    )
    parser.add_argument(
        "--sources", type=int, default=None,
        help="override distinct sources per combo",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="override batch replay count",
    )
    args = parser.parse_args(argv)

    settings = CompressSettings.quick() if args.quick else CompressSettings()
    overrides = {}
    if args.raised_graph is not None:
        overrides["raised_graph"] = args.raised_graph
    if args.sources is not None:
        overrides["sources"] = args.sources
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)

    report = run_compress(quick=args.quick, settings=settings)
    print(report.text)

    from repro.bench.export import report_to_dict, save_report

    if args.out and args.out != "-":
        Path(args.out).write_text(
            json.dumps(report_to_dict(report), indent=2)
        )
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json_dir:
        out_dir = Path(args.json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        save_report(report, out_dir / "compress.json")
        print(f"wrote {out_dir / 'compress.json'}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
