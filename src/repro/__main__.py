"""Command-line traversal runner.

Usage::

    python -m repro GRAPH --algorithm bfs --source 0
    python -m repro GRAPH -a sssp -s 0 --no-smp --memory um_on_demand
    python -m repro --dataset livejournal -a sswp

Loads a graph (edge list / Galois binary / MatrixMarket / npz, or one of
the built-in surrogate datasets), runs the requested traversal through
EtaGraph on the simulated GPU, validates the result against the
fixed-point checker, and prints labels summary plus the simulated
performance record.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.algorithms.validate import validate_labels
from repro.core.api import EtaGraph
from repro.core.config import EtaGraphConfig, MemoryMode
from repro.gpu.device import GTX_1080TI
from repro.graph import datasets, io
from repro.graph.weights import attach_weights
from repro.utils.units import format_bytes, format_ms, parse_size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a graph traversal through EtaGraph "
                    "(simulated GPU).",
    )
    parser.add_argument("graph", nargs="?",
                        help="graph file (.txt/.gr/.mtx/.npz)")
    parser.add_argument("--dataset", choices=datasets.ALL_DATASETS,
                        help="use a built-in surrogate dataset instead")
    parser.add_argument("-a", "--algorithm", default="bfs",
                        choices=("bfs", "sssp", "sswp"))
    parser.add_argument("-s", "--source", type=int, default=None,
                        help="source vertex (default: highest out-degree)")
    parser.add_argument("-k", "--degree-limit", type=int, default=32,
                        help="UDC degree limit K (default 32)")
    parser.add_argument("--no-smp", action="store_true",
                        help="disable Shared Memory Prefetch")
    parser.add_argument("--memory", default="um_prefetch",
                        choices=[m.value for m in MemoryMode])
    parser.add_argument("--capacity", default=None,
                        help="device memory capacity (e.g. '44MB')")
    parser.add_argument("--weights", default="uniform",
                        choices=("uniform", "degree", "unit"),
                        help="synthesized weight kind for weighted runs")
    parser.add_argument("--validate", action="store_true",
                        help="check the labels against the fixed-point "
                             "validator before reporting")
    parser.add_argument("--framework", default="etagraph",
                        help="engine to run: etagraph (default) or a "
                             "baseline (cusha, gunrock, tigr, simple-vc, "
                             "gts, cpu-ligra)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if (args.graph is None) == (args.dataset is None):
        print("provide exactly one of GRAPH or --dataset", file=sys.stderr)
        return 2

    weighted = args.algorithm in ("sssp", "sswp")
    if args.dataset:
        graph, default_source = datasets.load(args.dataset, weighted=weighted)
    else:
        graph = io.load_any(args.graph, weighted=False)
        if weighted and graph.edge_weights is None:
            graph = attach_weights(graph, kind=args.weights)
        default_source = int(np.argmax(graph.out_degrees()))
    source = args.source if args.source is not None else default_source

    device = GTX_1080TI
    if args.capacity:
        device = device.with_capacity(parse_size(args.capacity))
    config = EtaGraphConfig(
        degree_limit=args.degree_limit,
        smp=not args.no_smp,
        memory_mode=MemoryMode(args.memory),
    )

    print(f"graph: {graph}")
    print(f"framework: {args.framework}, algorithm: {args.algorithm}, "
          f"source: {source}, K={args.degree_limit}, "
          f"smp={'off' if args.no_smp else 'on'}, memory={args.memory}")

    if args.framework == "etagraph":
        result = EtaGraph(graph, config, device).run(args.algorithm, source)
        labels = result.labels
        kernel_ms, total_ms = result.kernel_ms, result.total_ms
        iterations, visited = result.iterations, result.visited
        profiler = result.profiler
    else:
        from repro.baselines import get_framework

        fw = get_framework(args.framework, device)
        r = fw.run(graph, args.algorithm, source)
        labels = r.labels
        kernel_ms, total_ms = r.kernel_ms, r.total_ms
        iterations = r.iterations
        visited = int(np.isfinite(labels).sum())
        profiler = r.profiler
        result = None

    if args.validate:
        report = validate_labels(graph, labels, source, args.algorithm)
        if not report.ok:
            print(f"VALIDATION FAILED: {report}", file=sys.stderr)
            return 1
        print("labels validated: fixed point confirmed")

    finite = labels[np.isfinite(labels) & (labels != 0)]
    print(f"\nvisited {visited}/{graph.num_vertices} vertices in "
          f"{iterations} iterations")
    if len(finite):
        print(f"label range: [{finite.min():g}, {finite.max():g}], "
              f"mean {finite.mean():.2f}")
    print(f"simulated total: {format_ms(total_ms)} "
          f"(kernels {format_ms(kernel_ms)})")
    if result is not None:
        print(f"device memory: {format_bytes(result.device_bytes)} device, "
              f"{format_bytes(result.um_bytes)} unified"
              + (" [oversubscribed]" if result.oversubscribed else ""))
    counters = profiler.kernels
    print(f"counters: {counters.launches} launches, IPC {counters.ipc:.2f}, "
          f"L2 hit {counters.l2_hit_rate:.1%}, "
          f"{counters.global_load_transactions:,} load transactions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
