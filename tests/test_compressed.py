"""Compressed CSR topology + direct-access placement (PR 8).

Four batteries:

* roundtrip — the delta+varint codec reproduces the dense topology
  byte-for-byte on every generator family;
* placement — all memory modes x encodings produce bit-identical labels,
  and the differential harness accepts a compressed graph directly;
* memo key — the frontier-memo key separates placements and encodings
  (the regression the PR's key extension exists to prevent);
* chaos — direct-access PCIe faults retry, then demote down the ladder
  to zero-copy without ever surfacing a wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EtaGraphConfig, MemoryMode
from repro.core.session import EngineSession
from repro.graph import generators
from repro.graph.compressed import CompressedCSRGraph, compress
from repro.graph.csr import CSRGraph
from repro.gpu.transfer import (
    DIRECT_ACCESS_SECTOR_BYTES,
    direct_access_sectors,
)
from repro.resilience.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.resilience.session import (
    LADDER,
    _MODE_RUNGS,
    _RUNG_MODES,
    ResilientSession,
    RetryPolicy,
)
from repro.testing.differential import run_differential_case


def _generator_zoo() -> dict[str, CSRGraph]:
    """One representative per generator family."""
    return {
        "rmat": generators.rmat(8, 2_000, seed=3),
        "social": generators.social_network(500, 4_000, seed=4),
        "web_chain": generators.web_chain(
            600, 5_000, depth=24, leaf_fraction=0.3, seed=5
        ),
        "path": generators.path_graph(200),
        "cycle": generators.cycle_graph(97),
        "star": generators.star_graph(64),
        "complete": generators.complete_graph(24),
        "grid": generators.grid_graph(12, 17),
        "erdos_renyi": generators.erdos_renyi(300, 2_500, seed=6),
    }


# ----------------------------------------------------------------------
# Roundtrip
# ----------------------------------------------------------------------


class TestRoundtrip:
    @pytest.mark.parametrize("name", sorted(_generator_zoo()))
    def test_every_generator_roundtrips_bit_for_bit(self, name):
        dense = _generator_zoo()[name]
        decoded = CompressedCSRGraph(dense).decode()
        assert decoded.row_offsets.dtype == dense.row_offsets.dtype
        assert decoded.column_indices.dtype == dense.column_indices.dtype
        assert np.array_equal(decoded.row_offsets, dense.row_offsets)
        assert np.array_equal(decoded.column_indices, dense.column_indices)

    def test_read_api_matches_dense(self):
        dense = _generator_zoo()["web_chain"]
        c = CompressedCSRGraph(dense)
        assert (c.num_vertices, c.num_edges) == \
            (dense.num_vertices, dense.num_edges)
        assert np.array_equal(c.out_degrees(), dense.out_degrees())
        for v in (0, 1, c.num_vertices - 1):
            assert np.array_equal(c.neighbors(v), dense.neighbors(v))

    def test_weighted_roundtrip_preserves_weights(self):
        dense = _generator_zoo()["erdos_renyi"]
        w = np.arange(dense.num_edges, dtype=np.float32) % 7 + 1
        c = CompressedCSRGraph(dense.with_weights(w))
        assert c.is_weighted
        decoded = c.decode()
        assert np.array_equal(decoded.edge_weights, w)
        assert not c.without_weights().is_weighted

    def test_empty_and_singleton_graphs(self):
        empty = CSRGraph(np.zeros(1, dtype=np.int64),
                         np.empty(0, dtype=np.int32))
        one = generators.star_graph(1)
        for g in (empty, one):
            decoded = CompressedCSRGraph(g).decode()
            assert np.array_equal(decoded.row_offsets, g.row_offsets)
            assert np.array_equal(decoded.column_indices, g.column_indices)

    def test_compress_helper_and_equality(self):
        dense = _generator_zoo()["grid"]
        assert compress(dense) == CompressedCSRGraph(dense)

    def test_web_graphs_are_denser_than_csr(self):
        """The headline claim, at test scale: delta+varint needs fewer
        bits than dense CSR's 32(|E|+|V|)/|E| on crawl-shaped graphs."""
        dense = generators.web_chain(
            5_000, 60_000, depth=60, leaf_fraction=0.3, seed=9
        )
        c = CompressedCSRGraph(dense)
        dense_bits = 32.0 * (dense.num_edges + dense.num_vertices) \
            / dense.num_edges
        assert c.total_bits_per_edge < dense_bits
        assert c.bits_per_edge > 0 and c.bits_per_node > 0
        # topology_words is the Table I accounting unit: ceil(bytes/4).
        assert c.topology_words() < dense.topology_words()


# ----------------------------------------------------------------------
# Placement: every mode x encoding agrees bit-for-bit
# ----------------------------------------------------------------------

ALL_MODES = tuple(MemoryMode)


class TestPlacement:
    @pytest.fixture(scope="class")
    def graph(self):
        return generators.web_chain(
            1_500, 14_000, depth=30, leaf_fraction=0.3, seed=8
        )

    @pytest.fixture(scope="class")
    def reference(self, graph):
        with EngineSession(graph, EtaGraphConfig(
                memory_mode=MemoryMode.DEVICE)) as s:
            return s.query("bfs", 0).labels

    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("encoding", ["dense", "compressed"])
    def test_labels_identical_across_combos(self, graph, reference, mode,
                                            encoding):
        topology = compress(graph) if encoding == "compressed" else graph
        with EngineSession(topology, EtaGraphConfig(memory_mode=mode)) as s:
            labels = s.query("bfs", 0).labels
        assert np.array_equal(labels, reference)

    @pytest.mark.parametrize("problem", ["bfs", "sssp", "cc"])
    def test_differential_over_compressed_topology(self, problem):
        """The differential harness (etagraph + etagraph-session engines
        vs the CPU oracle) accepts a CompressedCSRGraph directly."""
        dense = generators.social_network(400, 3_000, seed=10)
        w = (np.arange(dense.num_edges, dtype=np.float32) % 5) + 1
        topology = CompressedCSRGraph(dense.with_weights(w))
        report = run_differential_case(
            topology, problem, 0,
            config=EtaGraphConfig(memory_mode=MemoryMode.DIRECT_ACCESS),
            baselines=(),
        )
        assert report.ok, report.summary()
        assert {e.engine for e in report.engines} >= \
            {"etagraph", "etagraph-session"}

    def test_direct_access_moves_bytes_over_pcie(self, graph):
        """Direct access streams sector reads every iteration instead of
        staging the topology up-front."""
        with EngineSession(graph, EtaGraphConfig(
                memory_mode=MemoryMode.DIRECT_ACCESS)) as s:
            result = s.query("bfs", 0)
            transfers = [iv for iv in result.timeline.intervals
                         if iv.label.startswith("direct-")]
            assert transfers, "no direct-access transfer intervals recorded"
            total = sum(iv.nbytes for iv in transfers)
            assert total % DIRECT_ACCESS_SECTOR_BYTES == 0
            # Sector-granular reads touch far less than whole-graph
            # staging would.
            assert total < graph.nbytes * result.iterations


# ----------------------------------------------------------------------
# Frontier-memo key
# ----------------------------------------------------------------------


class TestMemoKey:
    def _key_for(self, graph_or_compressed, mode):
        """The memo key a fresh session computes for the same frontier."""
        with EngineSession(
            graph_or_compressed, EtaGraphConfig(memory_mode=mode)
        ) as s:
            s.query("bfs", 0)  # place + allocate label arrays
            active = np.array([0], dtype=np.int32)
            return s._memo_key(
                active.tobytes(), 1, s._labels_arr, s._weights_arr
            )

    def test_key_separates_placement_and_encoding(self):
        """The deterministic bump allocator hands identical addresses to
        two sessions over the same graph, so without the placement facts
        in the key, a dense/device trace plan could serve a
        compressed/direct-access frontier.  This is the test that the
        pre-PR key (digest, n, labels addr, itemsize, weights addr,
        lanes) would fail."""
        graph = generators.web_chain(
            800, 6_000, depth=20, leaf_fraction=0.3, seed=12
        )
        # Same dense topology, both host-resident placements: the bump
        # allocator hands both sessions identical label addresses, so
        # the pre-PR key (digest, n, labels addr, itemsize, weights
        # addr, lanes) is identical across them.  Only the new placement
        # facts keep the entries apart.
        zc_key = self._key_for(graph, MemoryMode.ZERO_COPY)
        da_key = self._key_for(graph, MemoryMode.DIRECT_ACCESS)
        assert zc_key[:-2] == da_key[:-2]
        assert zc_key != da_key
        assert zc_key[-2:] == (MemoryMode.ZERO_COPY.value, False)
        assert da_key[-2:] == (MemoryMode.DIRECT_ACCESS.value, False)
        # Same placement, different encoding: the compression flag (and,
        # here, the payload's different footprint) separates the keys.
        cda_key = self._key_for(compress(graph), MemoryMode.DIRECT_ACCESS)
        assert cda_key != da_key
        assert cda_key[-2:] == (MemoryMode.DIRECT_ACCESS.value, True)

    def test_memo_still_hits_within_a_session(self):
        graph = generators.web_chain(
            800, 6_000, depth=20, leaf_fraction=0.3, seed=12
        )
        with EngineSession(compress(graph), EtaGraphConfig(
                memory_mode=MemoryMode.DIRECT_ACCESS)) as s:
            a = s.query("bfs", 0)
            hits_before = s.memo_hits
            b = s.query("bfs", 0)
            assert s.memo_hits > hits_before
            assert np.array_equal(a.labels, b.labels)


# ----------------------------------------------------------------------
# Sector accounting
# ----------------------------------------------------------------------


class TestSectorCounting:
    @staticmethod
    def _reference(starts, lengths):
        sectors = set()
        for s, n in zip(starts, lengths):
            if n > 0:
                lo = s // DIRECT_ACCESS_SECTOR_BYTES
                hi = (s + n - 1) // DIRECT_ACCESS_SECTOR_BYTES
                sectors.update(range(lo, hi + 1))
        return len(sectors)

    def test_empty_and_zero_length_ranges(self):
        empty = np.empty(0, dtype=np.int64)
        assert direct_access_sectors(empty, empty) == 0
        assert direct_access_sectors(
            np.array([100, 300]), np.array([0, 0])
        ) == 0

    def test_interval_union_matches_reference(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(1, 40))
            starts = rng.integers(0, 5_000, size=n)
            lengths = rng.integers(0, 700, size=n)
            assert direct_access_sectors(starts, lengths) == \
                self._reference(starts, lengths)

    def test_duplicate_sectors_counted_once(self):
        starts = np.array([0, 0, 64, 128], dtype=np.int64)
        lengths = np.array([4, 128, 64, 1], dtype=np.int64)
        # Ranges cover sectors {0}, {0}, {0}, {1} -> 2 distinct.
        assert direct_access_sectors(starts, lengths) == 2


# ----------------------------------------------------------------------
# Ladder + chaos
# ----------------------------------------------------------------------


class TestLadderAndChaos:
    def test_direct_access_rung_sits_between_um_and_zero_copy(self):
        assert LADDER.index("um_oversubscribed") \
            < LADDER.index("direct_access") < LADDER.index("zero_copy")
        assert _RUNG_MODES["direct_access"] is MemoryMode.DIRECT_ACCESS
        assert _MODE_RUNGS[MemoryMode.DIRECT_ACCESS] == "direct_access"
        for rung, mode in _RUNG_MODES.items():
            assert _MODE_RUNGS[mode] == rung
        assert "direct_access_fault" in FAULT_KINDS

    def test_direct_access_faults_retry_then_demote_to_zero_copy(self):
        """A persistent PCIe fault on direct reads exhausts the rung's
        retries, demotes one rung down the ladder (zero-copy), and still
        serves bit-exact labels."""
        graph = generators.web_chain(
            600, 5_000, depth=20, leaf_fraction=0.3, seed=13
        )
        with EngineSession(graph, EtaGraphConfig(
                memory_mode=MemoryMode.DEVICE)) as s:
            expected = s.query("bfs", 0).labels
        plan = FaultPlan(specs=(
            FaultSpec(kind="direct_access_fault", at=0, count=64),
        ))
        with ResilientSession(
            compress(graph),
            EtaGraphConfig(memory_mode=MemoryMode.DIRECT_ACCESS),
            fault_plan=plan,
        ) as rs:
            outcome = rs.run("bfs", 0)
        assert outcome.final_placement == "zero_copy"
        assert outcome.degraded
        assert any(f.startswith("direct_access_fault")
                   for f in outcome.faults_seen)
        assert np.array_equal(outcome.result.labels, expected)

    def test_transient_direct_access_fault_is_retried_in_place(self):
        graph = generators.web_chain(
            600, 5_000, depth=20, leaf_fraction=0.3, seed=13
        )
        plan = FaultPlan(specs=(
            FaultSpec(kind="direct_access_fault", at=0, count=1),
        ))
        with ResilientSession(
            graph, EtaGraphConfig(memory_mode=MemoryMode.DIRECT_ACCESS),
            fault_plan=plan,
        ) as rs:
            outcome = rs.run("bfs", 0)
        assert outcome.final_placement == "direct_access"
        assert not outcome.degraded
        assert len(outcome.faults_seen) == 1
        assert outcome.faults_seen[0].startswith("direct_access_fault")

    def test_cpu_fallback_disallowed_surfaces_typed_error(self):
        """Every host-resident rung faulted + no CPU floor => a typed
        error, never a wrong answer."""
        from repro.errors import ReproError

        graph = generators.web_chain(
            400, 3_000, depth=15, leaf_fraction=0.3, seed=14
        )
        plan = FaultPlan(specs=(
            FaultSpec(kind="direct_access_fault", at=0, count=512),
            FaultSpec(kind="transfer_fault", at=0, count=512),
        ))
        with ResilientSession(
            graph, EtaGraphConfig(memory_mode=MemoryMode.DIRECT_ACCESS),
            fault_plan=plan,
            policy=RetryPolicy(allow_cpu_fallback=False),
        ) as rs:
            with pytest.raises(ReproError):
                rs.run("bfs", 0)
