"""Property-based invariants of the traversal engine.

These check structural truths that must hold for *any* graph, source and
configuration — the Definition/Theorem layer of the paper as hypotheses.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.graph import generators
from repro.graph.builder import build_csr_from_edges
from repro.graph.weights import attach_weights


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    m = draw(st.integers(min_value=0, max_value=300))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    g = build_csr_from_edges(src[keep], dst[keep], num_vertices=n)
    source = draw(st.integers(min_value=0, max_value=n - 1))
    return g, source


class TestBFSInvariants:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_edge_triangle_inequality(self, gs):
        """For every edge (u, v): level[v] <= level[u] + 1."""
        g, source = gs
        labels = EtaGraph(g).bfs(source).labels
        src = g.edge_sources()
        dst = g.column_indices
        ok = labels[dst] <= labels[src] + 1
        assert np.all(ok | np.isinf(labels[src]))

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_source_level_zero_and_reachability(self, gs):
        g, source = gs
        result = EtaGraph(g).bfs(source)
        assert result.labels[source] == 0
        # Finite labels == visited count == activation total.
        finite = int(np.isfinite(result.labels).sum())
        assert finite == result.visited

    @given(small_graphs())
    @settings(max_examples=25, deadline=None)
    def test_deterministic_across_runs(self, gs):
        g, source = gs
        a = EtaGraph(g).bfs(source)
        b = EtaGraph(g).bfs(source)
        assert np.array_equal(a.labels, b.labels)
        assert a.total_ms == pytest.approx(b.total_ms)

    @given(small_graphs())
    @settings(max_examples=25, deadline=None)
    def test_unit_weight_sssp_equals_bfs(self, gs):
        g, source = gs
        gw = attach_weights(g, kind="unit")
        bfs = EtaGraph(g).bfs(source).labels
        sssp = EtaGraph(gw).sssp(source).labels
        assert np.array_equal(bfs, sssp)


class TestConfigInvariance:
    """Theorem 2 writ large: no configuration knob may change labels."""

    @given(
        small_graphs(),
        st.sampled_from([1, 3, 32, 500]),
        st.booleans(),
        st.sampled_from(list(MemoryMode)),
        st.sampled_from(["in_core", "out_of_core"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_labels_invariant_under_config(self, gs, k, smp, mode, udc):
        g, source = gs
        gw = attach_weights(g, seed=1)
        baseline = EtaGraph(gw).sswp(source).labels
        cfg = EtaGraphConfig(
            degree_limit=k, smp=smp, memory_mode=mode, udc_mode=udc
        )
        labels = EtaGraph(gw, cfg).sswp(source).labels
        assert np.array_equal(baseline, labels)


class TestMonotoneConvergence:
    @given(small_graphs())
    @settings(max_examples=25, deadline=None)
    def test_adding_edges_never_hurts_bfs(self, gs):
        """Adding an edge can only decrease (or keep) BFS levels."""
        g, source = gs
        before = EtaGraph(g).bfs(source).labels
        # Add one edge from the source to the last vertex.
        src = np.concatenate([g.edge_sources(), [source]])
        dst = np.concatenate([g.column_indices, [g.num_vertices - 1]])
        g2 = build_csr_from_edges(src, dst, num_vertices=g.num_vertices)
        after = EtaGraph(g2).bfs(source).labels
        assert np.all(after <= before)

    def test_iterations_bounded_by_depth_times_weight_spread(self):
        """SSSP iteration count stays near BFS depth for narrow weights."""
        g = generators.web_chain(4000, 40_000, depth=20, seed=3)
        gw = g.with_weights(
            np.random.default_rng(0).integers(
                1, 3, size=g.num_edges
            ).astype(np.float32)
        )
        bfs_iters = EtaGraph(g).bfs(0).iterations
        sssp_iters = EtaGraph(gw).sssp(0).iterations
        assert sssp_iters <= 3 * bfs_iters
