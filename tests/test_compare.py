"""Tests for the run-comparison tool."""

import json

import pytest

from repro.bench.compare import Drift, compare_dirs, compare_reports, render


def report(name, data):
    return {"experiment": name, "title": name, "data": data}


class TestCompareReports:
    def test_no_drift(self):
        a = report("x", {"v": 1.0, "nested": {"w": [1, 2]}})
        assert compare_reports(a, a) == []

    def test_detects_drift(self):
        a = report("x", {"v": 100.0})
        b = report("x", {"v": 120.0})
        drifts = compare_reports(a, b)
        assert len(drifts) == 1
        assert drifts[0].rel_change == pytest.approx(0.2)

    def test_tolerance_respected(self):
        a = report("x", {"v": 100.0})
        b = report("x", {"v": 103.0})
        assert compare_reports(a, b, rel_tolerance=0.05) == []
        assert len(compare_reports(a, b, rel_tolerance=0.01)) == 1

    def test_nested_paths(self):
        a = report("x", {"grid": {"lj": [1.0, 2.0]}})
        b = report("x", {"grid": {"lj": [1.0, 4.0]}})
        drifts = compare_reports(a, b)
        assert drifts[0].path == "grid.lj[1]"

    def test_missing_keys_ignored(self):
        a = report("x", {"v": 1.0, "only_a": 5.0})
        b = report("x", {"v": 1.0, "only_b": 9.0})
        assert compare_reports(a, b) == []

    def test_booleans_not_numeric(self):
        a = report("x", {"flag": True})
        b = report("x", {"flag": False})
        assert compare_reports(a, b) == []

    def test_zero_baseline(self):
        a = report("x", {"v": 0.0})
        b = report("x", {"v": 1.0})
        drifts = compare_reports(a, b)
        assert len(drifts) == 1
        assert drifts[0].rel_change == float("inf")


class TestCompareDirs:
    def test_directory_comparison(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        dir_a.mkdir()
        dir_b.mkdir()
        (dir_a / "t.json").write_text(json.dumps(report("t", {"v": 1.0})))
        (dir_b / "t.json").write_text(json.dumps(report("t", {"v": 2.0})))
        (dir_a / "only_a.json").write_text(json.dumps(report("o", {"v": 1})))
        drifts = compare_dirs(dir_a, dir_b)
        assert len(drifts) == 1
        assert drifts[0].experiment == "t"


class TestRender:
    def test_no_drift_message(self):
        assert "no drift" in render([])

    def test_table_output(self):
        d = Drift(experiment="x", path="v", before=1.0, after=2.0)
        out = render([d])
        assert "x" in out and "+100.0%" in out

    def test_zero_baseline_rendered_explicitly(self):
        """A 0 → x transition is shown as such, never as a bare inf%."""
        d = Drift(experiment="x", path="v", before=0.0, after=3.5)
        out = render([d])
        assert "0 → 3.5" in out
        assert "inf" not in out

    def test_zero_to_zero_change_text(self):
        d = Drift(experiment="x", path="v", before=0.0, after=0.0)
        assert d.change_text == "unchanged"


class TestCompareCLI:
    """``python -m repro.bench compare`` is the CI bench gate."""

    def write(self, directory, value):
        directory.mkdir(exist_ok=True)
        (directory / "t.json").write_text(
            json.dumps(report("t", {"v": value}))
        )

    def test_exit_zero_without_drift(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        self.write(tmp_path / "a", 1.0)
        self.write(tmp_path / "b", 1.0)
        assert main(["compare", str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_exit_one_on_drift(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        self.write(tmp_path / "a", 1.0)
        self.write(tmp_path / "b", 2.0)
        assert main(["compare", str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        assert "+100.0%" in capsys.readouterr().out

    def test_empty_directory_is_an_error_not_a_pass(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        self.write(tmp_path / "a", 1.0)
        (tmp_path / "b").mkdir()
        assert main(["compare", str(tmp_path / "a"), str(tmp_path / "b")]) == 2
