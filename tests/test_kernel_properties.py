"""Property-based invariants of the kernel cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import GTX_1080TI
from repro.gpu.kernel import simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory


def build_launch(degrees, seed=0):
    degrees = np.asarray(degrees, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(degrees)[:-1]]).astype(np.int64)
    total = int(degrees.sum())
    rng = np.random.default_rng(seed)
    mem = DeviceMemory(GTX_1080TI)
    return dict(
        starts=starts,
        degrees=degrees,
        adj_array=mem.alloc("adj", np.zeros(max(total, 1), dtype=np.int32)),
        neighbor_ids=rng.integers(0, max(len(degrees), 1), size=total),
        label_array=mem.alloc(
            "labels", np.zeros(max(len(degrees), 1), dtype=np.float32)
        ),
    )


def run(**kw):
    return simulate_vertex_kernel(GTX_1080TI, CacheHierarchy(GTX_1080TI), **kw)


@st.composite
def degree_lists(draw):
    return draw(st.lists(st.integers(0, 40), min_size=1, max_size=200))


class TestKernelInvariants:
    @given(degree_lists())
    @settings(max_examples=30, deadline=None)
    def test_time_positive_and_finite(self, degrees):
        t = run(**build_launch(degrees))
        assert np.isfinite(t.time_ms)
        assert t.time_ms > 0

    @given(degree_lists())
    @settings(max_examples=30, deadline=None)
    def test_transactions_bounded_by_accesses(self, degrees):
        """Coalescing can only merge: transactions <= individual accesses
        (edges * 2 streams + metadata), and >= the contiguous minimum."""
        kw = build_launch(degrees)
        t = run(**kw)
        edges = int(np.sum(degrees))
        upper = 2 * edges + len(degrees) * 3 + 64
        assert t.counters.global_load_transactions <= upper

    @given(degree_lists())
    @settings(max_examples=20, deadline=None)
    def test_smp_never_more_transactions(self, degrees):
        """SMP without over-fetch coalesces strictly more aggressively."""
        if sum(degrees) == 0:
            return
        base = run(**build_launch(degrees, seed=1))
        smp = run(smp=True, degree_limit=64, **build_launch(degrees, seed=1))
        assert (smp.counters.global_load_transactions
                <= base.counters.global_load_transactions)

    @given(st.integers(1, 200), st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_more_work_never_faster(self, n_threads, extra):
        """Adding degree to every thread cannot reduce kernel time."""
        small = run(**build_launch([4] * n_threads, seed=2))
        big = run(**build_launch([4 + extra] * n_threads, seed=2))
        assert big.time_ms >= small.time_ms * 0.999

    @given(degree_lists())
    @settings(max_examples=20, deadline=None)
    def test_cycles_consistent_with_time(self, degrees):
        t = run(**build_launch(degrees))
        assert t.counters.cycles == pytest.approx(
            GTX_1080TI.ms_to_cycles(t.time_ms)
        )

    def test_gteps_properties(self):
        from repro import EtaGraph
        from repro.graph import generators
        g = generators.rmat(10, 20000, seed=5)
        src = int(np.argmax(g.out_degrees()))
        r = EtaGraph(g).bfs(src)
        assert r.gteps > 0
        assert r.kernel_gteps >= r.gteps  # kernel-only time is smaller
