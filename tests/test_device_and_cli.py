"""Tests for DeviceSpec helpers and the bench CLI."""

import pytest

from repro.bench.__main__ import main as bench_main
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.utils.units import GIB


class TestDeviceSpec:
    def test_preset_matches_paper_hardware(self):
        spec = GTX_1080TI
        assert spec.memory_capacity == 11 * GIB
        assert spec.num_sms == 28
        assert spec.warp_size == 32
        assert spec.l2_cache_bytes == 2816 * 1024  # "2800 KB" in the paper

    def test_cycles_ms_roundtrip(self):
        spec = GTX_1080TI
        assert spec.ms_to_cycles(spec.cycles_to_ms(12345)) == pytest.approx(12345)

    def test_bytes_time(self):
        spec = GTX_1080TI
        # 484 GB/s: 484e9 bytes in 1000 ms.
        assert spec.dram_time_ms(484e9) == pytest.approx(1000.0)
        assert spec.l2_time_ms(0) == 0.0

    def test_pcie_time_includes_latency(self):
        spec = GTX_1080TI
        assert spec.pcie_time_ms(0) == pytest.approx(
            spec.pcie_latency_us * 1e-3
        )

    def test_with_capacity_preserves_rest(self):
        scaled = GTX_1080TI.with_capacity(1000)
        assert scaled.memory_capacity == 1000
        assert scaled.num_sms == GTX_1080TI.num_sms
        assert scaled.name == GTX_1080TI.name

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            GTX_1080TI.num_sms = 1  # type: ignore[misc]

    def test_total_unified_cache(self):
        assert GTX_1080TI.total_unified_cache_bytes == \
            GTX_1080TI.unified_cache_bytes * 28


class TestBenchCLI:
    def test_list(self, capsys):
        assert bench_main([]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig7" in out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["nope"]) == 2

    def test_run_fig3(self, capsys):
        assert bench_main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "virtual active set" in out

    def test_run_table1_quick(self, capsys):
        assert bench_main(["table1", "--quick"]) == 0
        assert "Table I" in capsys.readouterr().out
