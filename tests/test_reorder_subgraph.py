"""Tests for vertex reordering and subgraph extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.algorithms import cpu_reference
from repro.errors import GraphFormatError
from repro.graph import generators
from repro.graph.reorder import (
    apply_permutation,
    bfs_order,
    degree_order,
    random_order,
    reorder,
)
from repro.graph.subgraph import (
    activatable_subgraph,
    induced_subgraph,
    largest_component_subgraph,
)


@pytest.fixture(scope="module")
def graph():
    return generators.rmat(9, 4000, seed=91)


class TestPermutation:
    def test_identity(self, graph):
        out = apply_permutation(graph, np.arange(graph.num_vertices))
        assert out == graph

    def test_preserves_structure(self, graph):
        perm = random_order(graph, seed=1)
        out = apply_permutation(graph, perm)
        assert out.num_edges == graph.num_edges
        # Degree multiset is permutation-invariant.
        assert sorted(out.out_degrees()) == sorted(graph.out_degrees())

    def test_labels_permute_with_graph(self, graph):
        """Traversal commutes with relabeling."""
        src = int(np.argmax(graph.out_degrees()))
        perm = random_order(graph, seed=2)
        relabeled = apply_permutation(graph, perm)
        ref = cpu_reference.bfs_levels(graph, src)
        out = cpu_reference.bfs_levels(relabeled, int(perm[src]))
        assert np.array_equal(out[perm], ref)

    def test_rejects_non_permutation(self, graph):
        with pytest.raises(GraphFormatError):
            apply_permutation(graph, np.zeros(graph.num_vertices, dtype=int))
        with pytest.raises(GraphFormatError):
            apply_permutation(graph, np.arange(5))

    def test_weights_carried(self):
        from repro.graph.weights import attach_weights
        g = attach_weights(generators.rmat(6, 300, seed=3), seed=4)
        out = apply_permutation(g, random_order(g, seed=5))
        assert out.is_weighted
        assert sorted(out.edge_weights) == sorted(g.edge_weights)


class TestOrderings:
    def test_bfs_order_starts_at_source(self, graph):
        src = int(np.argmax(graph.out_degrees()))
        perm = bfs_order(graph, src)
        assert perm[src] == 0

    def test_bfs_order_frontier_contiguity(self, graph):
        """After BFS ordering, each BFS level occupies a contiguous id
        range — the locality that merges UM faults."""
        src = int(np.argmax(graph.out_degrees()))
        g2, perm = reorder(graph, "bfs", source=src)
        levels = cpu_reference.bfs_levels(g2, int(perm[src]))
        finite = np.flatnonzero(np.isfinite(levels))
        # ids sorted by level must already be sorted numerically.
        assert np.all(np.diff(levels[finite]) >= 0)

    def test_degree_order_hubs_first(self, graph):
        g2, _perm = reorder(graph, "degree")
        deg = g2.out_degrees()
        assert deg[0] == deg.max()
        assert np.all(np.diff(deg) <= 0)

    def test_unknown_strategy(self, graph):
        with pytest.raises(GraphFormatError):
            reorder(graph, "alphabetical")

    @given(seed=st.integers(0, 10))
    @settings(max_examples=8, deadline=None)
    def test_engine_invariant_under_reordering(self, seed):
        g = generators.erdos_renyi(100, 600, seed=seed)
        perm = random_order(g, seed=seed + 1)
        g2 = apply_permutation(g, perm)
        a = EtaGraph(g).bfs(0).labels
        b = EtaGraph(g2).bfs(int(perm[0])).labels
        assert np.array_equal(b[perm], a)

    def test_ordering_changes_migration_pattern(self):
        """BFS (crawl) order produces fewer, larger UM migrations than a
        random order — the Table V mechanism, isolated."""
        base = generators.web_chain(20_000, 200_000, depth=30, seed=6)
        crawl, perm = reorder(base, "bfs", source=0)
        shuffled = apply_permutation(base, random_order(base, seed=7))
        cfg = EtaGraphConfig(memory_mode=MemoryMode.UM_ON_DEMAND)
        r_crawl = EtaGraph(crawl, cfg).bfs(int(perm[0]))
        # Find the shuffled id of vertex 0.
        r_rand = EtaGraph(shuffled, cfg).bfs(
            int(random_order(base, seed=7)[0])
        )
        crawl_n = len(r_crawl.profiler.migration_sizes)
        rand_n = len(r_rand.profiler.migration_sizes)
        assert crawl_n < rand_n
        avg_crawl = np.mean(r_crawl.profiler.migration_sizes)
        avg_rand = np.mean(r_rand.profiler.migration_sizes)
        assert avg_crawl > avg_rand


class TestSubgraph:
    def test_induced_edges_both_endpoints_inside(self, graph):
        verts = np.arange(0, graph.num_vertices, 3)
        sub, old_ids = induced_subgraph(graph, verts)
        assert sub.num_vertices == len(verts)
        for u, v in list(sub.iter_edges())[:50]:
            assert (int(old_ids[u]), int(old_ids[v])) in set(graph.iter_edges())

    def test_out_of_range_rejected(self, graph):
        with pytest.raises(GraphFormatError):
            induced_subgraph(graph, np.array([graph.num_vertices + 1]))

    def test_activatable_subgraph_is_fully_reachable(self, graph):
        src = int(np.argmax(graph.out_degrees()))
        sub, _old, new_src = activatable_subgraph(graph, src)
        levels = cpu_reference.bfs_levels(sub, new_src)
        assert np.isfinite(levels).all()

    def test_activatable_matches_activation_fraction(self, graph):
        from repro.graph.properties import activation_fraction
        src = int(np.argmax(graph.out_degrees()))
        sub, _old, _new = activatable_subgraph(graph, src)
        assert sub.num_vertices == round(
            activation_fraction(graph, src) * graph.num_vertices
        )

    def test_largest_component(self):
        g = generators.path_graph(10)  # one weak component
        sub, old_ids = largest_component_subgraph(g)
        assert sub.num_vertices == 10
        disconnected = generators.star_graph(3, out=False)
        from repro.graph.csr import CSRGraph
        two_parts = CSRGraph.from_edges([0, 2], [1, 3], num_vertices=5)
        sub2, _ = largest_component_subgraph(two_parts)
        assert sub2.num_vertices == 2

    def test_weighted_subgraph(self):
        from repro.graph.weights import attach_weights
        g = attach_weights(generators.rmat(6, 300, seed=8), seed=9)
        sub, _ = induced_subgraph(g, np.arange(30))
        assert sub.edge_weights is not None
