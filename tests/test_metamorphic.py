"""Metamorphic tests: label-preserving transforms leave output invariant."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph import generators
from repro.graph.weights import uniform_int_weights
from repro.testing import (
    TRANSFORMS_BY_PROBLEM,
    make_case,
    run_metamorphic_case,
)
from repro.testing.strategies import graphs_with_sources


def _graph_for(problem: str, seed: int):
    g = generators.rmat(5, 160, seed=seed)
    if problem in ("sssp", "sswp"):
        g = g.with_weights(uniform_int_weights(g.num_edges, seed=seed + 1))
    return g


class TestTransformMatrix:
    @pytest.mark.parametrize("problem", sorted(TRANSFORMS_BY_PROBLEM))
    def test_all_transforms_hold(self, problem):
        g = _graph_for(problem, seed=17)
        for transform in TRANSFORMS_BY_PROBLEM[problem]:
            for seed in range(3):
                diff = run_metamorphic_case(g, problem, 2, transform,
                                            seed=seed)
                assert diff is None, (
                    f"{transform} violated for {problem} "
                    f"(seed {seed}): {diff}"
                )

    def test_transforms_also_hold_for_baselines(self):
        """The relations are engine-agnostic: a baseline satisfies them too."""
        from repro.testing.differential import baseline_engine

        g = _graph_for("bfs", seed=23)
        for transform in TRANSFORMS_BY_PROBLEM["bfs"]:
            diff = run_metamorphic_case(
                g, "bfs", 1, transform,
                engine=baseline_engine("gunrock"), seed=5,
            )
            assert diff is None, f"{transform} via gunrock: {diff}"


class TestTransformMechanics:
    def test_relabel_permutes_topology(self):
        g = _graph_for("bfs", seed=3)
        case, base = make_case("relabel", g, 0, "bfs", seed=1)
        assert base is g
        assert case.graph.num_vertices == g.num_vertices
        assert case.graph.num_edges == g.num_edges
        assert sorted(case.graph.out_degrees()) == sorted(g.out_degrees())

    def test_shuffle_edges_rebuilds_identical_csr(self):
        """The CSR builder canonicalizes edge order, so a shuffled edge
        list reconstructs the *identical* graph object state."""
        g = _graph_for("sssp", seed=4)
        case, base = make_case("shuffle_edges", g, 0, "sssp", seed=2)
        assert case.graph == g

    def test_scale_weights_scales_exactly(self):
        g = _graph_for("sssp", seed=5)
        case, _ = make_case("scale_weights", g, 0, "sssp", seed=0)
        factor = case.graph.edge_weights[0] / g.edge_weights[0]
        assert np.allclose(case.graph.edge_weights, g.edge_weights * factor)

    def test_reroot_symmetrizes_both_runs(self):
        g = _graph_for("bfs", seed=6)
        case, base = make_case("reroot", g, 0, "bfs", seed=3)
        assert base is not g
        # base is symmetric: every edge has its reverse.
        fwd = set(zip(base.edge_sources().tolist(),
                      base.column_indices.tolist()))
        assert all((d, s) in fwd for s, d in fwd)
        assert case.graph is base  # same topology, only the root moves

    def test_violated_relation_is_reported(self):
        """Meta-test: a deliberately wrong engine fails the relation."""
        g = _graph_for("bfs", seed=7)

        def lying_engine(csr, problem_name, source):
            # Sensitive to vertex ids — breaks relabeling equivariance.
            return np.arange(csr.num_vertices, dtype=np.float32)

        diff = run_metamorphic_case(
            g, "bfs", 0, "relabel", engine=lying_engine, seed=1
        )
        assert diff is not None
        assert diff.num_mismatches > 0


class TestMetamorphicProperties:
    """Hypothesis sweep: relabeling equivariance for arbitrary graphs."""

    @given(graphs_with_sources())
    @settings(max_examples=25, deadline=None)
    def test_bfs_relabel_equivariance(self, gs):
        g, source = gs
        diff = run_metamorphic_case(g, "bfs", source, "relabel", seed=11)
        assert diff is None, str(diff)

    @given(graphs_with_sources(weighted=True))
    @settings(max_examples=15, deadline=None)
    def test_sssp_weight_scaling(self, gs):
        g, source = gs
        diff = run_metamorphic_case(g, "sssp", source, "scale_weights",
                                    seed=11)
        assert diff is None, str(diff)
