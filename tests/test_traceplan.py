"""Tests for the fused kernel-trace pipeline: the exact sorting helpers,
single-sort stream fusion, TracePlan reuse, and the warp-sampling counter
fix."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidLaunchError
from repro.gpu import coalescing
from repro.gpu.cache import CacheHierarchy
from repro.gpu.device import GTX_1080TI
from repro.gpu.kernel import TRACE_CAP, simulate_vertex_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.traceplan import (
    build_vertex_trace,
    fuse_packed_streams,
    plan_fingerprint,
)
from repro.utils.sorting import sorted_unique, stable_argsort


def make_launch(n_threads, degree, *, spread=False, weighted=False, seed=0):
    """Synthetic kernel launch over a fake CSR layout (as in
    test_gpu_kernel, plus optional weights)."""
    rng = np.random.default_rng(seed)
    if spread:
        degrees = rng.integers(0, degree * 2 + 1, size=n_threads)
    else:
        degrees = np.full(n_threads, degree, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(degrees)[:-1]]).astype(np.int64)
    total = int(degrees.sum())
    neighbors = rng.integers(0, max(n_threads, 1), size=total)
    mem = DeviceMemory(GTX_1080TI)
    adj = mem.alloc("adj", np.zeros(max(total, 1), dtype=np.int32))
    labels = mem.alloc("labels", np.zeros(max(n_threads, 1), dtype=np.float32))
    vas = mem.alloc("vas", np.zeros(3 * max(n_threads, 1), dtype=np.int32))
    kw = dict(
        starts=starts,
        degrees=degrees,
        adj_array=adj,
        neighbor_ids=neighbors,
        label_array=labels,
        meta_array=vas,
        meta_words_per_thread=3,
    )
    if weighted:
        kw["weight_array"] = mem.alloc(
            "weights", np.zeros(max(total, 1), dtype=np.float32)
        )
    return kw


def run(caches=None, **kw):
    caches = caches or CacheHierarchy(GTX_1080TI)
    return simulate_vertex_kernel(GTX_1080TI, caches, **kw)


# ----------------------------------------------------------------------
# Exact sorting helpers
# ----------------------------------------------------------------------

class TestSortedUnique:
    @given(st.lists(st.integers(-2**62, 2**62), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_np_unique(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(sorted_unique(arr), np.unique(arr))

    def test_empty_preserves_dtype(self):
        out = sorted_unique(np.empty(0, dtype=np.int32))
        assert out.dtype == np.int32 and len(out) == 0

    def test_other_dtypes(self):
        arr = np.array([3, 1, 3, 2], dtype=np.uint16)
        assert np.array_equal(sorted_unique(arr), np.unique(arr))


class TestStableArgsort:
    @given(
        st.lists(st.integers(0, 50), max_size=300),
        st.sampled_from([0, 1 << 40, (1 << 62)]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_stable(self, values, offset):
        # Small keys hit the packed fast path; offset 2**62 forces the
        # numpy fallback — both must agree with np.argsort(stable).
        keys = np.array(values, dtype=np.int64) + offset
        assert np.array_equal(
            stable_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_negative_keys_fall_back(self):
        keys = np.array([3, -1, 3, 0, -1], dtype=np.int64)
        assert np.array_equal(
            stable_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_empty(self):
        assert len(stable_argsort(np.empty(0, dtype=np.int64))) == 0


# ----------------------------------------------------------------------
# Single-sort stream fusion
# ----------------------------------------------------------------------

def _naive_concat(segments):
    return np.concatenate(
        [coalescing.packed_to_sectors(sorted_unique(s)) for s in segments]
    ) if segments else np.empty(0, dtype=np.int64)


def _random_segments(rng, n_segments, max_group):
    segments = []
    for _ in range(n_segments):
        n = int(rng.integers(0, 400))
        groups = rng.integers(0, max_group + 1, size=n)
        addresses = rng.integers(0, 1 << 20, size=n)
        segments.append(
            coalescing.scatter_packed_keys(addresses, groups)
        )
    return segments


class TestFusePackedStreams:
    @pytest.mark.parametrize("seed", range(6))
    def test_equals_per_stream_dedup(self, seed):
        rng = np.random.default_rng(seed)
        segments = _random_segments(rng, int(rng.integers(1, 6)), 500)
        expected = _naive_concat([s for s in segments if len(s)])
        assert np.array_equal(fuse_packed_streams(segments), expected)

    def test_empty_and_single(self):
        assert len(fuse_packed_streams([])) == 0
        seg = coalescing.scatter_packed_keys(
            np.array([64, 0, 64]), np.array([1, 0, 1])
        )
        assert np.array_equal(
            fuse_packed_streams([seg]), _naive_concat([seg])
        )

    def test_overflow_falls_back_to_per_stream(self):
        # Two segments whose lifted group keys would exceed the packed
        # layout: max group ~2**24 each, so the cumulative offset crosses
        # 2**25.  The fallback must still match the naive result.
        big = (1 << 24) + 7
        segs = [
            coalescing.scatter_packed_keys(
                np.array([32, 96, 32]), np.array([big, 0, big])
            ),
            coalescing.scatter_packed_keys(
                np.array([128, 128]), np.array([big, big])
            ),
        ]
        assert np.array_equal(fuse_packed_streams(segs), _naive_concat(segs))


# ----------------------------------------------------------------------
# TracePlan == inline trace, and plan reuse
# ----------------------------------------------------------------------

def _legacy_stream(spec, kw):
    """The pre-fusion trace: per-stream coalesce calls, concatenated —
    the reference simulate_vertex_kernel built before TracePlan."""
    starts = np.asarray(kw["starts"], dtype=np.int64)
    degrees = np.asarray(kw["degrees"], dtype=np.int64)
    n = len(starts)
    thread_ids = np.arange(n, dtype=np.int64)
    streams = []
    meta = kw.get("meta_array")
    mw = kw.get("meta_words_per_thread", 0)
    if meta is not None and mw > 0 and n:
        item = mw * meta.itemsize
        streams.append(coalescing.contiguous_run_sectors(
            meta.base_address + thread_ids * item,
            np.full(n, item, dtype=np.int64),
            coalescing.burst_group_keys(thread_ids),
            spec.sector_bytes,
        ))
    total = int(degrees.sum())
    if total:
        from repro.utils.ragged import ragged_arange

        steps = ragged_arange(degrees)
        edge_thread = np.repeat(thread_ids, degrees)
        keys = coalescing.strided_group_keys(
            edge_thread, steps, spec.warp_size
        )
        if kw.get("smp"):
            planned = kw.get("smp_planned_words")
            burst = (np.asarray(planned, dtype=np.int64)
                     if planned is not None else degrees)
            bkeys = coalescing.burst_group_keys(thread_ids)
            streams.append(coalescing.contiguous_run_sectors(
                kw["adj_array"].addresses_of(starts),
                burst * kw["adj_array"].itemsize, bkeys, spec.sector_bytes,
            ))
            if kw.get("weight_array") is not None:
                streams.append(coalescing.contiguous_run_sectors(
                    kw["weight_array"].addresses_of(starts),
                    burst * kw["weight_array"].itemsize, bkeys,
                    spec.sector_bytes,
                ))
        else:
            edge_idx = np.repeat(starts, degrees) + steps
            streams.append(coalescing.coalesce(
                kw["adj_array"].addresses_of(edge_idx), keys,
                spec.sector_bytes,
            ))
            if kw.get("weight_array") is not None:
                streams.append(coalescing.coalesce(
                    kw["weight_array"].addresses_of(edge_idx), keys,
                    spec.sector_bytes,
                ))
        streams.append(coalescing.coalesce(
            kw["label_array"].addresses_of(
                np.asarray(kw["neighbor_ids"], dtype=np.int64)
            ),
            keys, spec.sector_bytes,
        ))
    idle = kw.get("idle_threads", 0)
    if idle:
        idle_ids = np.arange(idle, dtype=np.int64)
        streams.append(coalescing.contiguous_run_sectors(
            kw["label_array"].base_address + idle_ids * 4,
            np.full(idle, 4, dtype=np.int64),
            coalescing.burst_group_keys(idle_ids) + (1 << 20),
            spec.sector_bytes,
        ))
    return (np.concatenate(streams) if streams
            else np.empty(0, dtype=np.int64))


def _build(kw, **extra):
    plan_kw = {
        k: v for k, v in kw.items()
        if k in (
            "starts", "degrees", "adj_array", "neighbor_ids", "label_array",
            "weight_array", "meta_array", "meta_words_per_thread", "smp",
            "smp_planned_words", "idle_threads",
        )
    }
    plan_kw.update(extra)
    return build_vertex_trace(GTX_1080TI, **plan_kw)


class TestTracePlan:
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("idle", [0, 70])
    def test_stream_matches_legacy_per_stream_trace(self, weighted, idle):
        kw = make_launch(96, 6, spread=True, weighted=weighted, seed=3)
        kw["idle_threads"] = idle
        plan = _build(kw)
        assert np.array_equal(plan.stream, _legacy_stream(GTX_1080TI, kw))

    def test_smp_stream_matches_legacy(self):
        kw = make_launch(96, 8, weighted=True, seed=4)
        kw["smp"] = True
        kw["smp_planned_words"] = np.full(96, 8, dtype=np.int64)
        plan = _build(kw)
        assert np.array_equal(plan.stream, _legacy_stream(GTX_1080TI, kw))

    def test_kernel_with_plan_is_bit_identical(self):
        kw = make_launch(128, 5, spread=True, seed=9)
        t_inline = run(caches=CacheHierarchy(GTX_1080TI), **kw)
        plan = _build(kw)
        t_planned = run(
            caches=CacheHierarchy(GTX_1080TI), plan=plan, **kw
        )
        assert t_planned.time_ms == t_inline.time_ms
        assert t_planned.counters == t_inline.counters

    def test_plan_reusable_across_launches(self):
        kw = make_launch(128, 5, spread=True, seed=10)
        plan = _build(kw)
        t1 = run(caches=CacheHierarchy(GTX_1080TI), plan=plan, **kw)
        t2 = run(caches=CacheHierarchy(GTX_1080TI), plan=plan, **kw)
        assert t1.time_ms == t2.time_ms
        assert t1.counters == t2.counters

    def test_mismatched_plan_rejected(self):
        kw = make_launch(64, 4, seed=11)
        plan = _build(kw)
        with pytest.raises(InvalidLaunchError):
            run(plan=plan, idle_threads=32, **kw)

    def test_fingerprint_captures_placement(self):
        kw = make_launch(64, 4, seed=12)
        fp = plan_fingerprint(
            GTX_1080TI,
            n_threads=64,
            total_edges=int(np.sum(kw["degrees"])),
            adj_array=kw["adj_array"],
            label_array=kw["label_array"],
            meta_array=kw["meta_array"],
            meta_words_per_thread=3,
        )
        assert _build(kw).fingerprint == fp


# ----------------------------------------------------------------------
# Warp sampling: exact launched counts + sampled-trace fidelity
# ----------------------------------------------------------------------

class TestWarpSamplingCounters:
    def _skewed_launch(self, n_threads, seed=21):
        """Per-warp skew: even warps have degree 40, odd warps degree 2 —
        the case where edge-ratio rescaling misreports thread counts."""
        warp = np.arange(n_threads) // 32
        degrees = np.where(warp % 2 == 0, 40, 2).astype(np.int64)
        rng = np.random.default_rng(seed)
        starts = np.concatenate([[0], np.cumsum(degrees)[:-1]]).astype(
            np.int64
        )
        total = int(degrees.sum())
        neighbors = rng.integers(0, n_threads, size=total)
        mem = DeviceMemory(GTX_1080TI)
        return dict(
            starts=starts,
            degrees=degrees,
            adj_array=mem.alloc("adj", np.zeros(total, dtype=np.int32)),
            neighbor_ids=neighbors,
            label_array=mem.alloc(
                "labels", np.zeros(n_threads, dtype=np.float32)
            ),
        )

    def test_sampled_launch_reports_exact_thread_and_warp_counts(self):
        n = 64 * 1024  # ~1.3M edges with the 40/2 skew: well above cap
        kw = self._skewed_launch(n)
        assert int(np.sum(kw["degrees"])) > TRACE_CAP
        t = run(**kw)
        # Exact, not edge-ratio-rescaled: with skewed kept warps the old
        # scaling reported ~2x the true thread count.
        assert t.counters.threads == n
        assert t.counters.warps == -(-n // 32)

    def test_idle_threads_still_added_exactly(self):
        kw = self._skewed_launch(64 * 1024)
        t = run(idle_threads=100, **kw)
        assert t.counters.threads == 64 * 1024 + 100
        assert t.counters.warps == -(-64 * 1024 // 32) + -(-100 // 32)

    def test_sampled_trace_close_to_full_trace(self, monkeypatch):
        """A launch just above TRACE_CAP, traced sampled, stays within
        tolerance of the same launch traced fully."""
        kw = make_launch(4096, 8, spread=True, seed=22)
        total = int(np.sum(kw["degrees"]))
        cap = int(total * 0.8)  # just above the cap -> stride 2
        t_full = run(caches=CacheHierarchy(GTX_1080TI), **kw)
        monkeypatch.setattr("repro.gpu.kernel.TRACE_CAP", cap)
        t_sampled = run(caches=CacheHierarchy(GTX_1080TI), **kw)
        plan = _build(kw, trace_cap=cap)
        assert plan.scale > 1.0  # sampling actually engaged
        c_f, c_s = t_full.counters, t_sampled.counters
        assert c_s.threads == c_f.threads  # exact by construction now
        assert c_s.warps == c_f.warps
        assert c_s.instructions == pytest.approx(
            c_f.instructions, rel=0.05
        )
        assert c_s.global_load_transactions == pytest.approx(
            c_f.global_load_transactions, rel=0.25
        )
        assert t_sampled.time_ms == pytest.approx(t_full.time_ms, rel=0.35)
