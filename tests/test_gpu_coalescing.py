"""Tests for the coalescing model: known access patterns -> known
transaction counts (Section V-A arithmetic)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gpu import coalescing


class TestCoalesce:
    def test_fully_coalesced_warp(self):
        # 32 lanes reading consecutive 4-byte words: 128 B = 4 sectors.
        addrs = np.arange(32) * 4
        keys = np.zeros(32, dtype=np.int64)
        assert len(coalescing.coalesce(addrs, keys)) == 4

    def test_fully_scattered_warp(self):
        # 32 lanes reading addresses one page apart: 32 transactions.
        addrs = np.arange(32) * 4096
        keys = np.zeros(32, dtype=np.int64)
        assert len(coalescing.coalesce(addrs, keys)) == 32

    def test_same_address_merges(self):
        addrs = np.zeros(32, dtype=np.int64)
        keys = np.zeros(32, dtype=np.int64)
        assert len(coalescing.coalesce(addrs, keys)) == 1

    def test_different_groups_do_not_merge(self):
        addrs = np.zeros(4, dtype=np.int64)
        keys = np.arange(4, dtype=np.int64)
        assert len(coalescing.coalesce(addrs, keys)) == 4

    def test_empty(self):
        assert len(coalescing.coalesce(np.empty(0), np.empty(0))) == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coalescing.coalesce(np.zeros(3), np.zeros(2))

    def test_returns_sector_ids(self):
        out = coalescing.coalesce(np.array([64, 65, 96]), np.zeros(3))
        assert sorted(out.tolist()) == [2, 3]

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                 max_size=200),
        st.integers(min_value=0, max_value=5),
    )
    def test_matches_set_semantics(self, addrs, key):
        """Transaction count equals |{(group, sector)}| by definition."""
        addrs = np.array(addrs)
        keys = np.full(len(addrs), key, dtype=np.int64)
        expected = len({(key, a // 32) for a in addrs.tolist()})
        assert len(coalescing.coalesce(addrs, keys)) == expected


class TestGroupKeys:
    def test_warp_ids(self):
        ids = coalescing.warp_ids(70)
        assert ids[0] == 0 and ids[31] == 0 and ids[32] == 1 and ids[69] == 2

    def test_strided_keys_separate_steps(self):
        threads = np.array([0, 1, 0, 1])
        steps = np.array([0, 0, 1, 1])
        keys = coalescing.strided_group_keys(threads, steps)
        assert keys[0] == keys[1]  # same warp, same step
        assert keys[0] != keys[2]  # different step

    def test_strided_keys_separate_warps(self):
        threads = np.array([0, 40])
        steps = np.array([0, 0])
        keys = coalescing.strided_group_keys(threads, steps)
        assert keys[0] != keys[1]

    def test_burst_keys_merge_steps(self):
        threads = np.array([0, 0, 5, 33])
        keys = coalescing.burst_group_keys(threads)
        assert keys[0] == keys[1] == keys[2]
        assert keys[3] != keys[0]


class TestContiguousRuns:
    def test_single_run_sector_count(self):
        # 100 bytes starting at 0: sectors 0..3.
        out = coalescing.contiguous_run_sectors(
            np.array([0]), np.array([100]), np.array([0])
        )
        assert len(out) == 4

    def test_unaligned_run_spans_extra_sector(self):
        out = coalescing.contiguous_run_sectors(
            np.array([30]), np.array([4]), np.array([0])
        )
        assert len(out) == 2  # crosses the 32-byte boundary

    def test_adjacent_runs_merge_within_group(self):
        # Two lanes with contiguous ranges inside one burst group share
        # the boundary sector.
        out = coalescing.contiguous_run_sectors(
            np.array([0, 32]), np.array([32, 32]), np.array([0, 0])
        )
        assert len(out) == 2

    def test_zero_length_runs_skipped(self):
        out = coalescing.contiguous_run_sectors(
            np.array([0, 64]), np.array([0, 4]), np.array([0, 0])
        )
        assert len(out) == 1

    def test_matches_expanded_coalesce(self):
        rng = np.random.default_rng(1)
        starts = rng.integers(0, 1000, size=20) * 4
        lengths = rng.integers(1, 15, size=20) * 4
        groups = rng.integers(0, 3, size=20)
        fast = coalescing.contiguous_run_sectors(starts, lengths, groups)
        # Reference: expand every word access.
        addrs, keys = [], []
        for s, l, g in zip(starts, lengths, groups):
            for b in range(0, l, 4):
                addrs.append(s + b)
                keys.append(g)
        slow = coalescing.coalesce(np.array(addrs), np.array(keys))
        assert sorted(fast.tolist()) == sorted(slow.tolist())

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coalescing.contiguous_run_sectors(
                np.array([0]), np.array([4, 4]), np.array([0])
            )
