"""Tests for timeline overlap accounting (Fig. 4) and transfer model."""

import pytest

from repro.gpu.device import GTX_1080TI
from repro.gpu.profiler import KernelCounters, Profiler
from repro.gpu.timeline import Timeline
from repro.gpu.transfer import d2h_copy, h2d_copy


class TestTimeline:
    def test_no_overlap(self):
        tl = Timeline()
        tl.add("compute", 0, 1)
        tl.add("transfer", 1, 2)
        assert tl.overlap_ms() == 0.0
        assert tl.span_ms == 2.0

    def test_full_overlap(self):
        tl = Timeline()
        tl.add("compute", 0, 2)
        tl.add("transfer", 0.5, 1.5)
        assert tl.overlap_ms() == pytest.approx(1.0)
        assert tl.overlap_fraction() == pytest.approx(0.5)

    def test_union_of_fragments(self):
        tl = Timeline()
        tl.add("compute", 0, 1)
        tl.add("compute", 0.5, 2)  # overlapping compute merges
        tl.add("transfer", 0, 2)
        assert tl.overlap_ms() == pytest.approx(2.0)

    def test_busy_ms(self):
        tl = Timeline()
        tl.add("transfer", 0, 1)
        tl.add("transfer", 3, 4)
        assert tl.busy_ms("transfer") == pytest.approx(2.0)

    def test_invalid_interval_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add("compute", 2, 1)
        with pytest.raises(ValueError):
            tl.add("io", 0, 1)

    def test_cumulative_bytes_series(self):
        tl = Timeline()
        tl.add("transfer", 0, 1, nbytes=100)
        tl.add("transfer", 1, 2, nbytes=50)
        series = tl.cumulative_bytes_series("transfer")
        assert series == [(1, 100), (2, 150)]

    def test_empty_timeline(self):
        tl = Timeline()
        assert tl.span_ms == 0.0
        assert tl.overlap_fraction() == 0.0


class TestTransfer:
    def test_h2d_records_profiler(self):
        prof = Profiler()
        t = h2d_copy(GTX_1080TI, prof, 1_000_000)
        assert t > 0
        assert prof.h2d_bytes == 1_000_000
        assert prof.h2d_time_ms == t

    def test_pinned_faster_than_pageable(self):
        prof = Profiler()
        pageable = h2d_copy(GTX_1080TI, prof, 10_000_000)
        pinned = h2d_copy(GTX_1080TI, prof, 10_000_000, pinned=True)
        assert pinned < pageable

    def test_latency_floor(self):
        prof = Profiler()
        t = h2d_copy(GTX_1080TI, prof, 1)
        assert t >= GTX_1080TI.pcie_latency_us * 1e-3

    def test_d2h(self):
        prof = Profiler()
        d2h_copy(GTX_1080TI, prof, 4096)
        assert prof.d2h_bytes == 4096


class TestProfilerCounters:
    def test_merge_accumulates(self):
        a = KernelCounters(launches=1, instructions=100, cycles=50)
        b = KernelCounters(launches=2, instructions=40, cycles=25)
        a.merge(b)
        assert a.launches == 3
        assert a.instructions == 140
        assert a.ipc == pytest.approx(140 / 75)

    def test_hit_rates_guard_zero(self):
        c = KernelCounters()
        assert c.ipc == 0.0
        assert c.l2_hit_rate == 0.0
        assert c.unified_hit_rate == 0.0
        assert c.dram_read_throughput_gbps == 0.0

    def test_throughputs(self):
        c = KernelCounters(elapsed_ms=1.0, dram_read_bytes=1e9,
                           l2_accesses=1000, unified_cache_accesses=2000)
        assert c.dram_read_throughput_gbps == pytest.approx(1000.0)
        assert c.l2_read_throughput_gbps == pytest.approx(0.032)
        assert c.unified_read_throughput_gbps == pytest.approx(0.064)

    def test_migration_stats_empty(self):
        assert Profiler().migration_size_stats() == (0.0, 0, 0)

    def test_snapshot_is_independent_copy(self):
        p = Profiler()
        p.record_kernel(KernelCounters(launches=1, instructions=10))
        snap = p.snapshot()
        p.record_kernel(KernelCounters(launches=1, instructions=10))
        assert snap.launches == 1
        assert p.kernels.launches == 2
