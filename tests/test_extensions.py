"""Tests for the extension features: Zero-Copy memory and out-of-core UDC
(the paper's Section III-A / IV-B design alternatives)."""

import numpy as np
import pytest

from repro import EtaGraph, EtaGraphConfig, MemoryMode
from repro.algorithms import cpu_reference
from repro.core.udc import ShadowTable, degree_cut
from repro.errors import ConfigError
from repro.graph import generators
from repro.graph.weights import attach_weights


@pytest.fixture(scope="module")
def social():
    g = attach_weights(generators.rmat(10, 12000, seed=31), seed=32)
    src = int(np.argmax(g.out_degrees()))
    return g, src


class TestZeroCopy:
    def test_labels_exact(self, social):
        g, src = social
        cfg = EtaGraphConfig(memory_mode=MemoryMode.ZERO_COPY)
        result = EtaGraph(g, cfg).sssp(src)
        assert np.allclose(result.labels,
                           cpu_reference.sssp_distances(g, src))

    def test_no_device_topology_footprint(self, social):
        g, src = social
        cfg = EtaGraphConfig(memory_mode=MemoryMode.ZERO_COPY)
        zc = EtaGraph(g, cfg).bfs(src)
        dev = EtaGraph(g, EtaGraphConfig(memory_mode=MemoryMode.DEVICE)).bfs(src)
        # Zero-copy keeps topology off the device entirely.
        assert zc.device_bytes < dev.device_bytes

    def test_slower_than_um_for_traversal(self):
        """Section IV-B's conclusion: UM beats Zero-Copy for read-only
        topology because pages migrate once instead of re-crossing PCIe
        every iteration.  Needs a non-trivial graph — on tiny inputs the
        UM allocation overhead dominates and zero-copy can win."""
        g = attach_weights(generators.rmat(13, 300_000, seed=33), seed=34)
        src = int(np.argmax(g.out_degrees()))
        zc = EtaGraph(
            g, EtaGraphConfig(memory_mode=MemoryMode.ZERO_COPY)
        ).sssp(src)
        um = EtaGraph(g).sssp(src)
        assert um.total_ms < zc.total_ms

    def test_no_migrations(self, social):
        g, src = social
        cfg = EtaGraphConfig(memory_mode=MemoryMode.ZERO_COPY)
        result = EtaGraph(g, cfg).bfs(src)
        assert result.profiler.migration_sizes == []

    def test_uses_um_flag(self):
        assert not MemoryMode.ZERO_COPY.uses_um


class TestShadowTable:
    def test_select_matches_in_core(self, social):
        g, _ = social
        table = ShadowTable(g.row_offsets, degree_limit=8)
        rng = np.random.default_rng(1)
        active = np.unique(rng.integers(0, g.num_vertices, size=50))
        expected = degree_cut(active, g.row_offsets, 8)
        got = table.select(active)
        assert np.array_equal(got.ids, expected.ids)
        assert np.array_equal(got.starts, expected.starts)
        assert np.array_equal(got.degrees, expected.degrees)

    def test_covers_all_vertices(self, social):
        g, _ = social
        table = ShadowTable(g.row_offsets, degree_limit=8)
        nonzero = int((g.out_degrees() > 0).sum())
        assert (table.shadow_count > 0).sum() == nonzero
        assert table.select(np.arange(g.num_vertices)).total_edges == g.num_edges

    def test_table_words(self, social):
        g, _ = social
        table = ShadowTable(g.row_offsets, degree_limit=8)
        assert table.table_words() == 3 * len(table) + 2 * g.num_vertices

    def test_empty_selection(self, social):
        g, _ = social
        table = ShadowTable(g.row_offsets, degree_limit=8)
        assert len(table.select(np.empty(0, dtype=np.int64))) == 0


class TestOutOfCoreEngine:
    def test_labels_exact(self, social):
        g, src = social
        cfg = EtaGraphConfig(udc_mode="out_of_core")
        result = EtaGraph(g, cfg).sswp(src)
        assert np.allclose(result.labels, cpu_reference.sswp_widths(g, src))

    def test_extra_device_memory(self, social):
        g, src = social
        ooc = EtaGraph(g, EtaGraphConfig(udc_mode="out_of_core")).bfs(src)
        ic = EtaGraph(g).bfs(src)
        assert ooc.device_bytes > ic.device_bytes

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            EtaGraphConfig(udc_mode="sideways")

    def test_iteration_counts_unchanged(self, social):
        g, src = social
        ooc = EtaGraph(g, EtaGraphConfig(udc_mode="out_of_core")).bfs(src)
        ic = EtaGraph(g).bfs(src)
        assert ooc.iterations == ic.iterations
